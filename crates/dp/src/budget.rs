//! Privacy-budget accounting.
//!
//! Differential privacy composes additively: running several ε-DP queries
//! against the same data spends the sum of their ε values.  DStress
//! maintains a budget both for the *output* releases (§4.5: the banks
//! replenish their budget once per year, allowing ≈3 runs) and for the
//! *edge-privacy* leakage of the transfer protocol (Appendix B).  The
//! [`PrivacyBudget`] ledger records every charge with a label so the
//! harness can print an audit trail.

use core::fmt;

/// Errors raised by the budget ledger.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetError {
    /// The requested charge would exceed the remaining budget.
    Exhausted {
        /// Epsilon requested by the query.
        requested: f64,
        /// Epsilon still available.
        remaining: f64,
    },
    /// A charge with a non-positive ε was requested.
    InvalidCharge {
        /// The offending value.
        epsilon: f64,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::Exhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested ε={requested}, remaining ε={remaining}"
            ),
            BudgetError::InvalidCharge { epsilon } => {
                write!(f, "privacy charges must be positive, got ε={epsilon}")
            }
        }
    }
}

impl std::error::Error for BudgetError {}

/// A single recorded expenditure.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetCharge {
    /// Human-readable description of what consumed the budget.
    pub label: String,
    /// The ε spent.
    pub epsilon: f64,
}

/// An ε-differential-privacy budget ledger.
#[derive(Debug, Clone)]
pub struct PrivacyBudget {
    total: f64,
    charges: Vec<BudgetCharge>,
}

impl PrivacyBudget {
    /// Creates a ledger with the given total ε.
    ///
    /// # Panics
    ///
    /// Panics if the total is not positive.
    pub fn new(total_epsilon: f64) -> Self {
        assert!(total_epsilon > 0.0, "total budget must be positive");
        PrivacyBudget {
            total: total_epsilon,
            charges: Vec::new(),
        }
    }

    /// The budget the paper assumes for the systemic-risk deployment:
    /// ε_max = ln 2, i.e. no adversary may more than double its confidence
    /// in any fact about the inputs (§4.5).
    pub fn paper_annual_budget() -> Self {
        PrivacyBudget::new(2f64.ln())
    }

    /// Total ε available over the budget period.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// ε spent so far.
    pub fn spent(&self) -> f64 {
        self.charges.iter().map(|c| c.epsilon).sum()
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent()).max(0.0)
    }

    /// Attempts to charge `epsilon` against the budget.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError::Exhausted`] if the remaining budget is
    /// insufficient and [`BudgetError::InvalidCharge`] for non-positive ε.
    pub fn charge(&mut self, label: &str, epsilon: f64) -> Result<(), BudgetError> {
        if epsilon <= 0.0 || !epsilon.is_finite() {
            return Err(BudgetError::InvalidCharge { epsilon });
        }
        let remaining = self.remaining();
        // Tolerate floating-point rounding at the boundary.
        if epsilon > remaining + 1e-12 {
            return Err(BudgetError::Exhausted {
                requested: epsilon,
                remaining,
            });
        }
        self.charges.push(BudgetCharge {
            label: label.to_string(),
            epsilon,
        });
        Ok(())
    }

    /// How many identical charges of `epsilon` fit in the *total* budget
    /// (the paper's "≈3 runs per year" computation).
    pub fn max_queries(&self, epsilon: f64) -> u32 {
        assert!(epsilon > 0.0);
        (self.total / epsilon).floor() as u32
    }

    /// The audit trail of recorded charges.
    pub fn charges(&self) -> &[BudgetCharge] {
        &self.charges
    }

    /// Resets the ledger (the paper's annual replenishment, justified by
    /// the banks' mandatory yearly disclosures).
    pub fn replenish(&mut self) {
        self.charges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut budget = PrivacyBudget::new(1.0);
        budget.charge("q1", 0.3).unwrap();
        budget.charge("q2", 0.4).unwrap();
        assert!((budget.spent() - 0.7).abs() < 1e-12);
        assert!((budget.remaining() - 0.3).abs() < 1e-12);
        assert_eq!(budget.charges().len(), 2);
        assert_eq!(budget.charges()[0].label, "q1");
    }

    #[test]
    fn exhaustion_is_detected() {
        let mut budget = PrivacyBudget::new(0.5);
        budget.charge("big", 0.4).unwrap();
        let err = budget.charge("too much", 0.2).unwrap_err();
        assert!(matches!(err, BudgetError::Exhausted { .. }));
        assert!(err.to_string().contains("exhausted"));
        // The failed charge is not recorded.
        assert_eq!(budget.charges().len(), 1);
    }

    #[test]
    fn invalid_charges_rejected() {
        let mut budget = PrivacyBudget::new(1.0);
        assert!(matches!(
            budget.charge("zero", 0.0).unwrap_err(),
            BudgetError::InvalidCharge { .. }
        ));
        assert!(budget.charge("nan", f64::NAN).is_err());
        assert!(budget.charge("neg", -0.1).is_err());
    }

    #[test]
    fn paper_budget_allows_three_egj_runs() {
        // §4.5: ε_max = ln 2, ε_query = 0.23 ⇒ 3 runs per year.
        let budget = PrivacyBudget::paper_annual_budget();
        assert_eq!(budget.max_queries(0.23), 3);
        assert!((budget.total() - std::f64::consts::LN_2).abs() < 1e-3);
    }

    #[test]
    fn replenish_restores_budget() {
        let mut budget = PrivacyBudget::new(1.0);
        budget.charge("q", 0.9).unwrap();
        budget.replenish();
        assert_eq!(budget.spent(), 0.0);
        budget.charge("q2", 0.9).unwrap();
    }

    #[test]
    fn boundary_charge_is_allowed() {
        let mut budget = PrivacyBudget::new(std::f64::consts::LN_2);
        for _ in 0..3 {
            budget.charge("run", 0.23).unwrap();
        }
        assert!(budget.charge("fourth", 0.23).is_err());
    }

    #[test]
    #[should_panic(expected = "total budget must be positive")]
    fn zero_total_panics() {
        let _ = PrivacyBudget::new(0.0);
    }
}
