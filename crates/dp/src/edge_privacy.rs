//! Appendix B: edge-privacy accounting for the message transfer protocol.
//!
//! Every bit-share transfer across an edge `(i, j)` reveals a noised sum of
//! bit shares to the members of the receiving block.  Appendix B treats
//! each such sum as an ε-DP query against the graph with sensitivity
//! `Δ = k + 1`, released through the geometric mechanism with parameter
//! `α`, and tracks three derived quantities:
//!
//! * the decryption-failure probability `P_fail` as a function of the
//!   lookup-table size `N_l` (the geometric noise occasionally exceeds the
//!   recoverable exponent range),
//! * the largest usable `α` (equivalently the smallest ε) given a target
//!   failure rate of at most one failure per `N_q` transfers, and
//! * the per-iteration and per-year edge-privacy budget expenditure,
//!   `k · (k+1) · L · ε` and `R · I` times that respectively.
//!
//! [`EdgePrivacyAccounting`] reproduces the concrete instantiation at the
//! end of Appendix B (ε = 2.34·10⁻⁷, 0.0014 per iteration, 0.0469 per
//! year).

/// Parameters of the deployment whose edge privacy is being accounted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgePrivacyAccounting {
    /// Collusion bound `k` (blocks have `k + 1` members).
    pub collusion_bound: usize,
    /// Bit length `L` of transferred messages.
    pub message_bits: u32,
    /// Number of nodes `N` in the graph.
    pub nodes: usize,
    /// Degree bound `D`.
    pub degree_bound: usize,
    /// Iterations `I` per DStress run.
    pub iterations: u32,
    /// Runs `R` per year.
    pub runs_per_year: u32,
    /// Years `Y` of operation the failure budget must cover.
    pub years: u32,
    /// Number of entries `N_l` in the discrete-log lookup table.
    pub lookup_table_entries: u64,
}

impl EdgePrivacyAccounting {
    /// The concrete instantiation used at the end of Appendix B.
    pub fn paper_example() -> Self {
        EdgePrivacyAccounting {
            collusion_bound: 19,
            message_bits: 16,
            nodes: 1750,
            degree_bound: 100,
            iterations: 11,
            runs_per_year: 3,
            years: 10,
            lookup_table_entries: 230_000_000,
        }
    }

    /// The sensitivity `Δ = k + 1` of a single bit-share-sum query.
    pub fn sensitivity(&self) -> u64 {
        (self.collusion_bound + 1) as u64
    }

    /// Total number of bit-share transfers `N_q = Y·R·I·N·D·L·(k+1)²` the
    /// failure budget must cover.
    pub fn total_transfers(&self) -> f64 {
        let block = (self.collusion_bound + 1) as f64;
        self.years as f64
            * self.runs_per_year as f64
            * self.iterations as f64
            * self.nodes as f64
            * self.degree_bound as f64
            * self.message_bits as f64
            * block
            * block
    }

    /// The per-transfer failure probability for a given `alpha`:
    /// `P_fail = (2·α^{N_l/2} + α − 1) / (1 + α)`.
    ///
    /// The closed form is an upper bound that can go (slightly) negative
    /// when the lookup window is generously oversized; it is clamped at
    /// zero, since a probability cannot be negative.
    pub fn failure_probability(&self, alpha: f64) -> f64 {
        let half_table = self.lookup_table_entries as f64 / 2.0;
        ((2.0 * alpha.powf(half_table) + alpha - 1.0) / (1.0 + alpha)).max(0.0)
    }

    /// Finds the largest `alpha` (most privacy-efficient noise) such that
    /// the failure probability per transfer is at most `1 / N_q`, by
    /// bisection on ε = −ln α.
    pub fn max_alpha(&self) -> f64 {
        let target = 1.0 / self.total_transfers();
        // Bisection over epsilon in (0, 1]; failure probability decreases
        // as epsilon grows (alpha shrinks).
        let mut lo = 1e-12f64;
        let mut hi = 1.0f64;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            let alpha = (-mid).exp();
            if self.failure_probability(alpha) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (-hi).exp()
    }

    /// The ε corresponding to [`Self::max_alpha`].
    pub fn min_epsilon(&self) -> f64 {
        -self.max_alpha().ln()
    }

    /// Edge-privacy ε spent per iteration when each transfer is an
    /// ε-DP release: `k · (k+1) · L · ε` (Appendix B).
    pub fn budget_per_iteration(&self, epsilon: f64) -> f64 {
        self.collusion_bound as f64
            * (self.collusion_bound + 1) as f64
            * self.message_bits as f64
            * epsilon
    }

    /// Edge-privacy ε spent per year: `R · I` iterations.
    pub fn budget_per_year(&self, epsilon: f64) -> f64 {
        self.budget_per_iteration(epsilon) * self.runs_per_year as f64 * self.iterations as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_transfer_count() {
        let acc = EdgePrivacyAccounting::paper_example();
        // ≈370 billion transfers.
        let n_q = acc.total_transfers();
        assert!((3.5e11..3.9e11).contains(&n_q), "N_q = {n_q}");
        assert_eq!(acc.sensitivity(), 20);
    }

    #[test]
    fn paper_epsilon_satisfies_failure_bound() {
        // The paper instantiates ε = 2.34e-7 and notes that it satisfies
        // the P_fail inequality; our accounting must agree.
        let acc = EdgePrivacyAccounting::paper_example();
        let alpha = (-2.34e-7f64).exp();
        let p_fail = acc.failure_probability(alpha);
        assert!(p_fail <= 1.0 / acc.total_transfers(), "P_fail = {p_fail}");
        // And the derived minimum ε is no larger than the paper's choice.
        assert!(acc.min_epsilon() <= 2.34e-7 + 1e-9);
        assert!(acc.min_epsilon() > 0.0);
    }

    #[test]
    fn paper_budget_numbers() {
        let acc = EdgePrivacyAccounting::paper_example();
        let eps = 2.34e-7;
        let per_iter = acc.budget_per_iteration(eps);
        let per_year = acc.budget_per_year(eps);
        // Appendix B: 0.0014 per iteration, 0.0469 per year.
        assert!(
            (per_iter - 0.0014).abs() < 1e-4,
            "per-iteration = {per_iter}"
        );
        assert!((per_year - 0.0469).abs() < 1e-3, "per-year = {per_year}");
    }

    #[test]
    fn failure_probability_is_monotone_in_alpha() {
        let acc = EdgePrivacyAccounting::paper_example();
        let loose = acc.failure_probability((-1e-7f64).exp());
        let tight = acc.failure_probability((-1e-6f64).exp());
        assert!(
            loose > tight,
            "more noise (alpha closer to 1) fails more often"
        );
    }

    #[test]
    fn bigger_table_allows_larger_alpha() {
        let small = EdgePrivacyAccounting {
            lookup_table_entries: 10_000_000,
            ..EdgePrivacyAccounting::paper_example()
        };
        let large = EdgePrivacyAccounting::paper_example();
        assert!(large.max_alpha() > small.max_alpha());
        assert!(large.min_epsilon() < small.min_epsilon());
    }

    #[test]
    fn per_year_budget_stays_well_below_output_budget() {
        // The point of Appendix B: the edge-privacy expenditure (≈0.047 per
        // year) is a small fraction of the ln 2 annual budget.
        let acc = EdgePrivacyAccounting::paper_example();
        assert!(acc.budget_per_year(2.34e-7) < 0.1 * 2f64.ln());
    }
}
