//! Private stream aggregation (PSA) for recurring releases.
//!
//! A full DStress release runs the whole MPC pipeline — block formation,
//! GMW circuit evaluation, the ElGamal transfer protocol — every time.
//! For a *recurring* release of a simple additive statistic (the monthly
//! systemic-risk headline number, a per-round metric), that cost is
//! unnecessary: the Shi et al. private-stream-aggregation scheme
//! (NDSS 2011), analysed for the geometric mechanism by Valovich–Aldà,
//! lets each participant publish **one ciphertext per round** such that
//! the untrusted aggregator learns *only* the noisy sum:
//!
//! ```text
//! c_i = g^{x_i + z_i} · H(t)^{s_i}          (participant i, round t)
//! V   = H(t)^{s_0} · Π_i c_i = g^{Σ_i (x_i + z_i)}    since Σ_{i=0}^n s_i ≡ 0 (mod q)
//! ```
//!
//! The aggregator recovers `Σ(x_i + z_i)` by discrete log over the small
//! plaintext range (the same [`DlogTable`] machinery the transfer
//! protocol uses).  Because the keys cancel only across the *complete*
//! set of ciphertexts for one round, no subset of parties — aggregator
//! included — learns any partial sum.
//!
//! ## Noise and privacy
//!
//! Each participant adds its own two-sided geometric noise
//! `z_i ~ Geo(exp(-ε/Δ))` before encrypting.  The released sum therefore
//! carries the *sum of n* geometric variables: the release is ε-DP even
//! if every participant but one colludes with the aggregator (the honest
//! participant's own noise suffices), at the cost of `n×` the variance
//! of a single geometric draw.  This is the conservative end of the
//! Valovich–Aldà spectrum, which distributes fractional noise when more
//! participants are assumed honest.
//!
//! ## Simulation-grade hash
//!
//! `H(t)` must be a random oracle into the group.  This reproduction
//! derives it as `g^{splitmix64(t)}`, which is perfectly adequate for
//! benchmarking and for the DP accounting (the noise, budget and
//! plaintext pipelines are exactly the real ones) but **not**
//! cryptographically sound — knowing `dlog_g H(t)` lets the aggregator
//! strip individual masks.  A deployment would substitute a hash onto
//! the curve/group with unknown discrete log.

use crate::geometric::TwoSidedGeometric;
use core::fmt;
use dstress_crypto::dlog::DlogTable;
use dstress_crypto::group::{Group, GroupElem};
use dstress_math::rng::{splitmix64_finalize, DetRng};
use dstress_math::U256;

/// Errors raised by the PSA pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PsaError {
    /// A participant index outside `0..participants`.
    UnknownParticipant {
        /// The offending index.
        index: usize,
    },
    /// A per-round value larger than the bound the system was sized for.
    ValueOutOfRange {
        /// The offending value.
        value: u64,
        /// The per-participant bound given at setup.
        bound: u64,
    },
    /// Aggregation was given the wrong number of ciphertexts (the masks
    /// only cancel across the complete round).
    CiphertextCount {
        /// Number expected (one per participant).
        expected: usize,
        /// Number given.
        got: usize,
    },
    /// The noisy sum fell outside the discrete-log recovery range (the
    /// PSA analogue of the transfer protocol's `P_fail`).
    DecryptionFailed,
}

impl fmt::Display for PsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsaError::UnknownParticipant { index } => {
                write!(f, "unknown PSA participant index {index}")
            }
            PsaError::ValueOutOfRange { value, bound } => {
                write!(
                    f,
                    "PSA value {value} exceeds the per-participant bound {bound}"
                )
            }
            PsaError::CiphertextCount { expected, got } => {
                write!(f, "PSA aggregation needs {expected} ciphertexts, got {got}")
            }
            PsaError::DecryptionFailed => {
                write!(
                    f,
                    "PSA noisy sum fell outside the discrete-log recovery range"
                )
            }
        }
    }
}

impl std::error::Error for PsaError {}

/// One round's worth of PSA ciphertexts, ready for aggregation.
pub type PsaCiphertext = GroupElem;

/// A private-stream-aggregation system over `n` participants and one
/// untrusted aggregator.
///
/// Constructed by a trusted dealer ([`PsaSystem::setup`]) that samples
/// participant keys summing to zero; the paper setting would replace the
/// dealer with a one-time key-generation MPC — the per-round protocol is
/// unchanged.
#[derive(Clone, Debug)]
pub struct PsaSystem {
    group: Group,
    /// `s_1 … s_n`.
    participant_keys: Vec<U256>,
    /// `s_0 = −Σ s_i (mod q)`, held by the aggregator.
    aggregator_key: U256,
    noise: TwoSidedGeometric,
    dlog: DlogTable,
    max_value: u64,
    epsilon: f64,
}

impl PsaSystem {
    /// Sets up keys and noise for `participants` parties whose per-round
    /// values lie in `[0, max_value]`, releasing each round's sum with
    /// `epsilon`-DP at the given query sensitivity.
    ///
    /// The discrete-log table is sized for the worst-case plaintext sum
    /// plus a noise margin chosen so the per-round decryption-failure
    /// probability is below 10⁻⁹, with a BSGS fallback beyond that.
    pub fn setup(
        group: Group,
        participants: usize,
        epsilon: f64,
        sensitivity: f64,
        max_value: u64,
        rng: &mut dyn DetRng,
    ) -> Self {
        assert!(participants >= 2, "PSA needs at least two participants");
        let noise = TwoSidedGeometric::for_epsilon(epsilon, sensitivity);

        let mut participant_keys = Vec::with_capacity(participants);
        let mut key_sum = U256::ZERO;
        for _ in 0..participants {
            let s = group.random_exponent(rng);
            key_sum = group.add_exponents(&key_sum, &s);
            participant_keys.push(s);
        }
        // s_0 = q − Σ s_i (mod q): the one key that makes the masks cancel.
        let aggregator_key = if key_sum.is_zero() {
            U256::ZERO
        } else {
            group.q().wrapping_sub(&key_sum)
        };

        // Noise margin: n draws each exceed b with probability
        // tail(b) = 2α^{b+1}/(1+α); a union bound over n participants at
        // δ = 10⁻⁹ gives b = ln(δ/n · (1+α)/2) / ln α.
        let delta = 1e-9f64;
        let alpha = noise.alpha();
        let per_draw = delta / participants as f64;
        let margin = if alpha <= f64::MIN_POSITIVE {
            0.0
        } else {
            (per_draw * (1.0 + alpha) / 2.0).ln() / alpha.ln()
        };
        let margin = margin.max(0.0).ceil() as u64;
        let table_max = participants as u64 * max_value + participants as u64 * margin.min(1 << 20);
        let dlog = DlogTable::new_signed(&group, table_max).with_search_range(4 * table_max.max(1));

        PsaSystem {
            group,
            participant_keys,
            aggregator_key,
            noise,
            dlog,
            max_value,
            epsilon,
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.participant_keys.len()
    }

    /// The ε-DP guarantee each round's release carries.
    pub fn epsilon_per_round(&self) -> f64 {
        self.epsilon
    }

    /// The noise distribution each participant samples from.
    pub fn noise(&self) -> &TwoSidedGeometric {
        &self.noise
    }

    /// Encodes a (possibly negative) exponent as `g^v`, mapping negatives
    /// to `g^{q − |v|}` — the same encoding the transfer protocol uses.
    fn encode_signed(&self, v: i64) -> GroupElem {
        let magnitude = U256::from_u64(v.unsigned_abs()).rem(&self.group.q());
        let exponent = if v >= 0 {
            magnitude
        } else if magnitude.is_zero() {
            U256::ZERO
        } else {
            self.group.q().wrapping_sub(&magnitude)
        };
        self.group.generator_pow(&exponent)
    }

    /// `H(t)`: the simulation-grade round hash (see the module docs).
    fn round_point(&self, round: u64) -> GroupElem {
        let h = splitmix64_finalize(round ^ 0x5053_415f_726e_6400); // "PSA_rnd"
        self.group.generator_pow(&U256::from_u64(h))
    }

    /// Produces participant `index`'s ciphertext for `round`:
    /// `c_i = g^{x_i + z_i} · H(t)^{s_i}` with fresh geometric noise `z_i`.
    ///
    /// # Errors
    ///
    /// Returns [`PsaError::UnknownParticipant`] or
    /// [`PsaError::ValueOutOfRange`].
    pub fn encrypt(
        &self,
        index: usize,
        round: u64,
        value: u64,
        rng: &mut dyn DetRng,
    ) -> Result<PsaCiphertext, PsaError> {
        let key = self
            .participant_keys
            .get(index)
            .ok_or(PsaError::UnknownParticipant { index })?;
        if value > self.max_value {
            return Err(PsaError::ValueOutOfRange {
                value,
                bound: self.max_value,
            });
        }
        let z = self.noise.sample(rng);
        let plaintext = self.encode_signed(value as i64 + z);
        let mask = self.group.pow(self.round_point(round), key);
        Ok(self.group.mul(plaintext, mask))
    }

    /// Aggregates one complete round of ciphertexts into the noisy sum
    /// `Σ_i (x_i + z_i)`.
    ///
    /// # Errors
    ///
    /// Returns [`PsaError::CiphertextCount`] for an incomplete round and
    /// [`PsaError::DecryptionFailed`] if the noisy sum escapes the
    /// discrete-log recovery range.
    pub fn aggregate(&self, round: u64, ciphertexts: &[PsaCiphertext]) -> Result<i64, PsaError> {
        if ciphertexts.len() != self.participants() {
            return Err(PsaError::CiphertextCount {
                expected: self.participants(),
                got: ciphertexts.len(),
            });
        }
        let mut acc = self
            .group
            .pow(self.round_point(round), &self.aggregator_key);
        for &c in ciphertexts {
            acc = self.group.mul(acc, c);
        }
        self.dlog
            .lookup_signed(&self.group, acc)
            .map_err(|_| PsaError::DecryptionFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_math::rng::Xoshiro256;

    fn run_round(
        psa: &PsaSystem,
        round: u64,
        values: &[u64],
        rng: &mut Xoshiro256,
    ) -> Result<i64, PsaError> {
        let cts: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| psa.encrypt(i, round, v, rng).unwrap())
            .collect();
        psa.aggregate(round, &cts)
    }

    #[test]
    fn aggregate_recovers_noisy_sum_within_margin() {
        let mut rng = Xoshiro256::new(42);
        let psa = PsaSystem::setup(Group::sim64(), 5, 1.0, 1.0, 100, &mut rng);
        let values = [10u64, 20, 30, 0, 40];
        let exact: i64 = values.iter().map(|&v| v as i64).sum();
        for round in 0..20 {
            let noisy = run_round(&psa, round, &values, &mut rng).unwrap();
            // 5 participants, α = e⁻¹: a |noisy − exact| beyond 200 has
            // probability far below 10⁻¹⁵.
            assert!(
                (noisy - exact).abs() < 200,
                "round {round}: {noisy} vs {exact}"
            );
        }
    }

    #[test]
    fn noise_free_limit_is_exact() {
        // ε/Δ = 10⁴ clamps α to the noise ≡ 0 limit, so recovery is exact —
        // also exercises the geometric-underflow fix end to end.
        let mut rng = Xoshiro256::new(7);
        let psa = PsaSystem::setup(Group::sim64(), 3, 1e4, 1.0, 50, &mut rng);
        let noisy = run_round(&psa, 1, &[5, 7, 11], &mut rng).unwrap();
        assert_eq!(noisy, 23);
    }

    #[test]
    fn masks_cancel_only_across_the_complete_round() {
        let mut rng = Xoshiro256::new(3);
        let psa = PsaSystem::setup(Group::sim64(), 4, 1e4, 1.0, 10, &mut rng);
        let cts: Vec<_> = (0..4)
            .map(|i| psa.encrypt(i, 9, 2, &mut rng).unwrap())
            .collect();
        // Dropping one ciphertext leaves a random mask in place: either the
        // count check fires or (with the right count but wrong set) the
        // decryption lands nowhere near the true partial sum.
        assert!(matches!(
            psa.aggregate(9, &cts[..3]),
            Err(PsaError::CiphertextCount {
                expected: 4,
                got: 3
            })
        ));
        let mut wrong = cts.clone();
        wrong[0] = wrong[1];
        match psa.aggregate(9, &wrong) {
            Err(PsaError::DecryptionFailed) => {}
            Ok(v) => assert_ne!(
                v, 8,
                "duplicate ciphertext must not decrypt to the true sum"
            ),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn ciphertexts_differ_across_rounds_for_identical_values() {
        let mut rng = Xoshiro256::new(5);
        let psa = PsaSystem::setup(Group::sim64(), 2, 1e4, 1.0, 10, &mut rng);
        let a = psa.encrypt(0, 1, 4, &mut rng).unwrap();
        let b = psa.encrypt(0, 2, 4, &mut rng).unwrap();
        assert_ne!(a, b, "the round hash must re-mask identical plaintexts");
    }

    #[test]
    fn input_validation() {
        let mut rng = Xoshiro256::new(1);
        let psa = PsaSystem::setup(Group::sim64(), 2, 1.0, 1.0, 10, &mut rng);
        assert!(matches!(
            psa.encrypt(5, 0, 1, &mut rng),
            Err(PsaError::UnknownParticipant { index: 5 })
        ));
        assert!(matches!(
            psa.encrypt(0, 0, 11, &mut rng),
            Err(PsaError::ValueOutOfRange {
                value: 11,
                bound: 10
            })
        ));
    }

    #[test]
    fn empirical_mean_tracks_exact_sum() {
        // The per-round noise is zero-mean: averaging releases over many
        // rounds converges on the exact sum (the recurring-release utility
        // story).
        let mut rng = Xoshiro256::new(99);
        let psa = PsaSystem::setup(Group::sim64(), 3, 0.5, 1.0, 100, &mut rng);
        let values = [40u64, 25, 35];
        let exact = 100i64;
        let rounds = 400;
        let total: i64 = (0..rounds)
            .map(|r| run_round(&psa, r, &values, &mut rng).unwrap())
            .sum();
        let mean = total as f64 / rounds as f64;
        assert!(
            (mean - exact as f64).abs() < 2.0,
            "mean over {rounds} rounds = {mean}, exact = {exact}"
        );
    }
}
