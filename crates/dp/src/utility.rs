//! The §4.5 utility analysis for dollar-differential privacy.
//!
//! The paper walks through the policy arithmetic for the systemic-risk
//! deployment: choose the annual privacy budget `ε_max`, the dollar
//! granularity `T` that defines similar data sets, the leverage bound `r`
//! that determines the algorithm sensitivity, and the output precision the
//! regulator needs; out come the per-query `ε_query` and the number of
//! stress tests that can be run per year.  [`UtilityAnalysis`] reproduces
//! that chain so the harness can print the paper's numbers (ε_query ≥
//! 0.23, ≈3 runs/year) and explore alternatives.

/// Inputs and derived quantities of the §4.5 analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UtilityAnalysis {
    /// Annual privacy budget ε_max (the paper uses ln 2).
    pub epsilon_max: f64,
    /// Dollar granularity `T` protected by similarity, in dollars
    /// (the paper uses $1 billion).
    pub granularity_dollars: f64,
    /// Algorithm sensitivity in multiples of `T` (2/r for EGJ, 1/r for EN).
    pub sensitivity: f64,
    /// Required output precision in dollars (the paper uses ±$200 billion).
    pub precision_dollars: f64,
    /// Required confidence that the noise stays within the precision
    /// (the paper uses 95%).
    pub confidence: f64,
}

impl UtilityAnalysis {
    /// The exact configuration of §4.5 (Elliott–Golub–Jackson with the
    /// Basel III leverage bound r = 0.1).
    pub fn paper_egj() -> Self {
        UtilityAnalysis {
            epsilon_max: 2f64.ln(),
            granularity_dollars: 1.0e9,
            sensitivity: 2.0 / 0.1,
            precision_dollars: 200.0e9,
            confidence: 0.95,
        }
    }

    /// The same analysis for Eisenberg–Noe (sensitivity 1/r).
    pub fn paper_en() -> Self {
        UtilityAnalysis {
            sensitivity: 1.0 / 0.1,
            ..UtilityAnalysis::paper_egj()
        }
    }

    /// The Laplace scale of the released value, in dollars:
    /// `T · sensitivity / ε_query`.
    pub fn noise_scale_dollars(&self, epsilon_query: f64) -> f64 {
        self.granularity_dollars * self.sensitivity / epsilon_query
    }

    /// The smallest ε_query such that the (one-sided) probability of the
    /// noise exceeding the precision target is at most `1 - confidence`.
    ///
    /// For Laplace noise with scale `b`, `P(noise > t) = exp(-t/b)/2`, so
    /// the requirement `exp(-t/b)/2 ≤ 1 - confidence` yields
    /// `ε_query ≥ ln(1 / (2(1-confidence))) · T·s / t`.
    pub fn required_epsilon_query(&self) -> f64 {
        let tail = 1.0 - self.confidence;
        let t_over_ts = self.precision_dollars / (self.granularity_dollars * self.sensitivity);
        (1.0 / (2.0 * tail)).ln() / t_over_ts
    }

    /// Number of queries of [`Self::required_epsilon_query`] that fit in
    /// the annual budget.
    pub fn runs_per_year(&self) -> u32 {
        (self.epsilon_max / self.required_epsilon_query()).floor() as u32
    }

    /// The probability that the released value is within
    /// `± precision_dollars` of the true value when using `epsilon_query`.
    pub fn accuracy_probability(&self, epsilon_query: f64) -> f64 {
        let b = self.noise_scale_dollars(epsilon_query);
        1.0 - (-self.precision_dollars / b).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_are_reproduced() {
        let a = UtilityAnalysis::paper_egj();
        // Sensitivity 2/r with r = 0.1 is 20.
        assert_eq!(a.sensitivity, 20.0);
        // ε_query ≥ 0.23 (the paper rounds to two decimals).
        let eps = a.required_epsilon_query();
        assert!((eps - 0.2303).abs() < 0.001, "epsilon_query = {eps}");
        // Roughly three runs per year.
        assert_eq!(a.runs_per_year(), 3);
    }

    #[test]
    fn en_needs_less_noise_than_egj() {
        let egj = UtilityAnalysis::paper_egj();
        let en = UtilityAnalysis::paper_en();
        assert!(en.required_epsilon_query() < egj.required_epsilon_query());
        assert!(en.runs_per_year() >= egj.runs_per_year());
        assert_eq!(en.runs_per_year(), 6);
    }

    #[test]
    fn noise_scale_matches_formula() {
        let a = UtilityAnalysis::paper_egj();
        // T·Lap(20/ε): at ε = 0.23 the scale is about $87 billion.
        let scale = a.noise_scale_dollars(0.23);
        assert!((scale - 86.96e9).abs() < 0.1e9, "scale = {scale}");
    }

    #[test]
    fn accuracy_improves_with_epsilon() {
        let a = UtilityAnalysis::paper_egj();
        let low = a.accuracy_probability(0.1);
        let high = a.accuracy_probability(1.0);
        assert!(high > low);
        assert!(high > 0.99);
        // At the derived ε_query, accuracy meets the one-sided 95% target
        // (the two-sided probability is slightly above 90%).
        let at_required = a.accuracy_probability(a.required_epsilon_query());
        assert!(at_required > 0.89, "accuracy = {at_required}");
    }

    #[test]
    fn tighter_precision_costs_more_budget() {
        let loose = UtilityAnalysis::paper_egj();
        let tight = UtilityAnalysis {
            precision_dollars: 50.0e9,
            ..loose
        };
        assert!(tight.required_epsilon_query() > loose.required_epsilon_query());
        assert!(tight.runs_per_year() <= loose.runs_per_year());
    }
}
