//! The Laplace mechanism.
//!
//! A deterministic query `q̄` with sensitivity `s` is made ε-differentially
//! private by releasing `q̄ + Lap(s/ε)` (§3 of the paper).  DStress draws
//! the noise inside the aggregation MPC from a jointly-contributed seed;
//! in the reproduction the same sampling code runs either in plaintext (in
//! the reference executor) or on the seed reconstructed by the aggregation
//! block (in the DStress runtime), so the two paths produce identical
//! noise for identical seeds.

use dstress_math::rng::DetRng;

/// The Laplace mechanism with a fixed sensitivity and privacy parameter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaplaceMechanism {
    sensitivity: f64,
    epsilon: f64,
}

impl LaplaceMechanism {
    /// Creates a mechanism for a query with the given sensitivity and the
    /// desired ε.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive (a programming
    /// error: the paper requires a known finite sensitivity bound, §3.7).
    pub fn new(sensitivity: f64, epsilon: f64) -> Self {
        assert!(sensitivity > 0.0, "sensitivity must be positive");
        assert!(epsilon > 0.0, "epsilon must be positive");
        LaplaceMechanism {
            sensitivity,
            epsilon,
        }
    }

    /// The scale parameter `b = s / ε` of the Laplace distribution.
    pub fn scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// The configured sensitivity.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The configured ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Draws one Laplace noise sample via inverse-CDF sampling.
    pub fn sample_noise(&self, rng: &mut dyn DetRng) -> f64 {
        // u uniform in (-0.5, 0.5]; noise = -b * sign(u) * ln(1 - 2|u|).
        let u = rng.next_f64() - 0.5;
        let b = self.scale();
        let magnitude = -b * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln();
        if u < 0.0 {
            -magnitude
        } else {
            magnitude
        }
    }

    /// Releases a noised value.
    pub fn release(&self, true_value: f64, rng: &mut dyn DetRng) -> f64 {
        true_value + self.sample_noise(rng)
    }

    /// The symmetric interval half-width within which the noise stays with
    /// the given (two-sided) confidence: `P(|noise| <= w) = confidence`.
    pub fn noise_bound(&self, confidence: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&confidence),
            "confidence must be in [0, 1)"
        );
        -self.scale() * (1.0 - confidence).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_math::rng::Xoshiro256;

    #[test]
    fn scale_is_sensitivity_over_epsilon() {
        let m = LaplaceMechanism::new(20.0, 0.23);
        assert!((m.scale() - 86.9565).abs() < 1e-3);
        assert_eq!(m.sensitivity(), 20.0);
        assert_eq!(m.epsilon(), 0.23);
    }

    #[test]
    #[should_panic(expected = "sensitivity must be positive")]
    fn zero_sensitivity_panics() {
        let _ = LaplaceMechanism::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_panics() {
        let _ = LaplaceMechanism::new(1.0, 0.0);
    }

    #[test]
    fn samples_have_laplace_statistics() {
        let m = LaplaceMechanism::new(1.0, 1.0); // scale 1
        let mut rng = Xoshiro256::new(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample_noise(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        // Lap(1) has mean 0 and variance 2.
        assert!(mean.abs() < 0.05, "mean was {mean}");
        assert!((var - 2.0).abs() < 0.2, "variance was {var}");
    }

    #[test]
    fn noise_scales_with_epsilon() {
        let mut rng_a = Xoshiro256::new(7);
        let mut rng_b = Xoshiro256::new(7);
        let strong = LaplaceMechanism::new(1.0, 0.1); // more noise
        let weak = LaplaceMechanism::new(1.0, 10.0); // less noise
        let spread = |m: &LaplaceMechanism, rng: &mut Xoshiro256| {
            (0..2000).map(|_| m.sample_noise(rng).abs()).sum::<f64>() / 2000.0
        };
        assert!(spread(&strong, &mut rng_a) > 10.0 * spread(&weak, &mut rng_b));
    }

    #[test]
    fn release_is_reproducible_from_seed() {
        let m = LaplaceMechanism::new(5.0, 0.5);
        let a = m.release(100.0, &mut Xoshiro256::new(3));
        let b = m.release(100.0, &mut Xoshiro256::new(3));
        assert_eq!(a, b);
        assert_ne!(a, 100.0);
    }

    #[test]
    fn noise_bound_matches_tail() {
        let m = LaplaceMechanism::new(1.0, 1.0);
        let bound = m.noise_bound(0.95);
        // For Lap(1): P(|X| <= w) = 1 - exp(-w), so w = ln 20 ≈ 3.0.
        assert!((bound - 20f64.ln()).abs() < 1e-9);
        // Empirically ~95% of samples are inside the bound.
        let mut rng = Xoshiro256::new(11);
        let inside = (0..10_000)
            .filter(|_| m.sample_noise(&mut rng).abs() <= bound)
            .count();
        assert!((9300..9700).contains(&inside), "inside = {inside}");
    }
}
