//! The two-sided geometric mechanism.
//!
//! The message transfer protocol (§3.5, final version) homomorphically
//! adds an *even* random number drawn from `2 · Geo(α^{2/(k+1)})` to every
//! forwarded bit-sum, where `Geo(α)` is the discretised Laplace
//! distribution of Ghosh, Roughgarden and Sundararajan \[33\]:
//!
//! ```text
//! Pr[Y = d] = (1 - α) / (1 + α) · α^{|d|},   d ∈ ℤ, α ∈ (0, 1)
//! ```
//!
//! Adding `Geo(α^{1/Δ})` noise to a query with sensitivity `Δ` gives
//! ε-differential privacy with `ε = −ln α` (Appendix B).  The protocol
//! uses sensitivity `Δ = k + 1` (all block members could flip their bit
//! shares) and doubles the sample so that parity — the information the
//! receiving block actually consumes — is preserved.

use dstress_math::rng::DetRng;

/// A two-sided geometric distribution with parameter `alpha ∈ (0, 1)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TwoSidedGeometric {
    alpha: f64,
}

impl TwoSidedGeometric {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in the open interval (0, 1).
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0, 1), got {alpha}"
        );
        TwoSidedGeometric { alpha }
    }

    /// Builds the distribution that gives `epsilon`-DP for a query of the
    /// given sensitivity: `alpha = exp(-epsilon / sensitivity)`.
    ///
    /// For extreme `epsilon / sensitivity` ratios (≳ 745) the exponential
    /// underflows to 0.0, which is outside the valid α range; α is clamped
    /// to the smallest positive `f64` instead.  The limit is correct: as
    /// α → 0 the distribution converges to a point mass at 0, i.e. a
    /// noise-free release — exactly what an astronomically large ε
    /// permits.
    pub fn for_epsilon(epsilon: f64, sensitivity: f64) -> Self {
        assert!(epsilon > 0.0 && sensitivity > 0.0);
        let alpha = (-epsilon / sensitivity).exp().max(f64::MIN_POSITIVE);
        TwoSidedGeometric::new(alpha)
    }

    /// The distribution parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The ε this distribution provides for a sensitivity-1 query
    /// (`ε = −ln α`).
    pub fn epsilon(&self) -> f64 {
        -self.alpha.ln()
    }

    /// Probability mass at `d`.
    pub fn pmf(&self, d: i64) -> f64 {
        (1.0 - self.alpha) / (1.0 + self.alpha) * self.alpha.powi(d.unsigned_abs() as i32)
    }

    /// Probability that a sample falls outside `[-bound, bound]`.
    ///
    /// This is the per-transfer decryption-failure probability when the
    /// discrete-log lookup table covers `2·bound + 1` values (Appendix B's
    /// `P_fail` before scaling by the number of transfers).
    pub fn tail_probability(&self, bound: u64) -> f64 {
        // P(|Y| > bound) = 2 * sum_{d > bound} pmf(d) = 2 * pmf(bound+1) / (1 - alpha) * ... ;
        // using the geometric series: P = (2 α^{bound+1}) / (1 + α).
        2.0 * self.alpha.powf(bound as f64 + 1.0) / (1.0 + self.alpha)
    }

    /// Draws one sample by inverse-CDF sampling.
    pub fn sample(&self, rng: &mut dyn DetRng) -> i64 {
        // Sample magnitude ~ geometric, then sign; mass at 0 handled first.
        let p0 = (1.0 - self.alpha) / (1.0 + self.alpha);
        let u = rng.next_f64();
        if u < p0 {
            return 0;
        }
        // Remaining mass is split evenly between the two signs; magnitude m
        // (m >= 1) has probability proportional to alpha^m.
        let sign = if rng.next_bool() { 1i64 } else { -1i64 };
        // Inverse CDF of the (shifted) geometric distribution.
        let v = rng.next_f64().max(f64::MIN_POSITIVE);
        let magnitude = (v.ln() / self.alpha.ln()).floor() as i64 + 1;
        sign * magnitude
    }

    /// Draws the *even* noise used by the transfer protocol:
    /// `2 · Geo(α)` (always an even integer, possibly negative).
    pub fn sample_even(&self, rng: &mut dyn DetRng) -> i64 {
        2 * self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_math::rng::Xoshiro256;

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1)")]
    fn invalid_alpha_panics() {
        let _ = TwoSidedGeometric::new(1.0);
    }

    #[test]
    fn epsilon_alpha_roundtrip() {
        let g = TwoSidedGeometric::for_epsilon(0.5, 1.0);
        assert!((g.epsilon() - 0.5).abs() < 1e-12);
        let g = TwoSidedGeometric::for_epsilon(0.5, 20.0);
        assert!((g.alpha() - (-0.025f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn pmf_sums_to_one() {
        let g = TwoSidedGeometric::new(0.7);
        let total: f64 = (-200i64..=200).map(|d| g.pmf(d)).sum();
        assert!((total - 1.0).abs() < 1e-9, "pmf sums to {total}");
    }

    #[test]
    fn pmf_is_symmetric_and_decaying() {
        let g = TwoSidedGeometric::new(0.5);
        assert_eq!(g.pmf(3), g.pmf(-3));
        assert!(g.pmf(0) > g.pmf(1));
        assert!(g.pmf(1) > g.pmf(5));
    }

    #[test]
    fn dp_ratio_bound_holds() {
        // For neighbouring outputs differing by 1, the pmf ratio must stay
        // within [alpha, 1/alpha] — the defining DP property (Appendix B).
        let g = TwoSidedGeometric::new(0.8);
        for d in -20i64..20 {
            let ratio = g.pmf(d) / g.pmf(d + 1);
            assert!(ratio >= g.alpha() - 1e-12 && ratio <= 1.0 / g.alpha() + 1e-12);
        }
    }

    #[test]
    fn samples_match_distribution() {
        let g = TwoSidedGeometric::new(0.6);
        let mut rng = Xoshiro256::new(5);
        let n = 50_000;
        let mut zero_count = 0usize;
        let mut sum = 0i64;
        for _ in 0..n {
            let s = g.sample(&mut rng);
            if s == 0 {
                zero_count += 1;
            }
            sum += s;
        }
        let p0_expected = (1.0 - 0.6) / (1.0 + 0.6);
        let p0_observed = zero_count as f64 / n as f64;
        assert!(
            (p0_observed - p0_expected).abs() < 0.01,
            "p0 = {p0_observed}"
        );
        assert!(
            (sum as f64 / n as f64).abs() < 0.05,
            "mean = {}",
            sum as f64 / n as f64
        );
    }

    #[test]
    fn even_samples_are_even() {
        let g = TwoSidedGeometric::new(0.9);
        let mut rng = Xoshiro256::new(9);
        for _ in 0..1000 {
            assert_eq!(g.sample_even(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn tail_probability_matches_empirical() {
        let g = TwoSidedGeometric::new(0.8);
        let bound = 10u64;
        let analytic = g.tail_probability(bound);
        let mut rng = Xoshiro256::new(3);
        let n = 200_000;
        let outside = (0..n)
            .filter(|_| g.sample(&mut rng).unsigned_abs() > bound)
            .count();
        let empirical = outside as f64 / n as f64;
        assert!(
            (analytic - empirical).abs() < 0.005,
            "analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    fn extreme_epsilon_ratio_clamps_instead_of_panicking() {
        // The satellite regression: exp(-10^4) underflows to 0.0, which
        // used to trip the alpha ∈ (0, 1) assert.  The clamped
        // distribution is the noise ≡ 0 limit.
        let g = TwoSidedGeometric::for_epsilon(1e4, 1.0);
        assert!(g.alpha() > 0.0 && g.alpha() < 1.0);
        assert!((g.pmf(0) - 1.0).abs() < 1e-12);
        let mut rng = Xoshiro256::new(11);
        for _ in 0..1000 {
            assert_eq!(g.sample(&mut rng), 0);
        }
        // Just below the underflow threshold the exact α is still used.
        let g = TwoSidedGeometric::for_epsilon(700.0, 1.0);
        assert!((g.alpha() - (-700.0f64).exp()).abs() < 1e-300);
    }

    #[test]
    fn tail_probability_decreases_with_bound() {
        let g = TwoSidedGeometric::new(0.999);
        assert!(g.tail_probability(10) > g.tail_probability(100));
        assert!(g.tail_probability(100) > g.tail_probability(10_000));
    }
}
