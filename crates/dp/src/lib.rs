//! Differential privacy for the DStress reproduction.
//!
//! DStress uses differential privacy in two places:
//!
//! 1. **Output privacy** — the final aggregate (the Total Dollar Shortfall
//!    in the systemic-risk case study) is released through the Laplace
//!    mechanism; the guarantee is *dollar-differential privacy* (§4.1):
//!    two input data sets are similar if one can be obtained from the
//!    other by re-allocating at most `T` dollars in a single portfolio.
//! 2. **Edge privacy** — the bit-share sums revealed by the message
//!    transfer protocol are noised with an even two-sided geometric random
//!    variable, and Appendix B accounts the resulting ε-expenditure
//!    against a privacy budget.
//!
//! The crate provides the mechanisms ([`laplace`], [`geometric`]), the
//! budget ledger ([`budget`]), the §4.5 utility analysis ([`utility`]) and
//! the Appendix B edge-privacy accounting ([`edge_privacy`]).
//!
//! ## Example
//!
//! ```
//! use dstress_dp::LaplaceMechanism;
//! use dstress_math::rng::Xoshiro256;
//!
//! // The paper's running example: sensitivity 20, ε = 0.23.
//! let mechanism = LaplaceMechanism::new(20.0, 0.23);
//! assert!((mechanism.scale() - 20.0 / 0.23).abs() < 1e-9);
//!
//! let mut rng = Xoshiro256::new(9);
//! let noised = 1000.0 + mechanism.sample_noise(&mut rng);
//! assert!(noised.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod edge_privacy;
pub mod geometric;
pub mod laplace;
pub mod psa;
pub mod utility;

pub use budget::{BudgetError, PrivacyBudget};
pub use edge_privacy::EdgePrivacyAccounting;
pub use geometric::TwoSidedGeometric;
pub use laplace::LaplaceMechanism;
pub use psa::{PsaError, PsaSystem};
pub use utility::UtilityAnalysis;

/// The budget ledger under the name the recurring-release scheduler and
/// the paper's accounting discussion use for it.
pub use budget::PrivacyBudget as BudgetAccountant;
