//! The distributed noise-generation circuit.
//!
//! In the paper, the aggregation block draws the Laplace noise *inside*
//! MPC, using the circuit construction of Dwork et al. \[23\], so that no
//! single node ever learns the noise value.  Our runtime accounts for that
//! circuit's cost (it is one of the five MPC microbenchmarks in Figures 3
//! and 4) by building a concrete noising circuit and, in the engine,
//! executing it under GMW alongside the aggregation circuit.
//!
//! The construction used here converts jointly-contributed uniform random
//! bits into a *discrete two-sided geometric* sample — the discretised
//! Laplace distribution that DStress's own transfer protocol uses — by
//! computing the difference of two "count the leading ones" geometric
//! samples at a configurable resolution, scaling the result, and adding it
//! to the aggregate.  The statistical fine-structure differs slightly from
//! Dwork et al.'s original construction (documented in `DESIGN.md`), but
//! the circuit size, depth and input layout — which is what the cost
//! reproduction needs — have the same shape: linear in the number of
//! random input bits and in the output width.

use dstress_circuit::builder::CircuitBuilder;
use dstress_circuit::Circuit;

/// Builds a noising circuit.
///
/// Inputs: `aggregate_bits` wires carrying the (shared) aggregate value,
/// followed by `2 · random_bits` wires of jointly-contributed uniform
/// randomness.  Output: `aggregate_bits` wires carrying the noised
/// aggregate (wrapping addition).
///
/// The noise magnitude is `(G1 − G2) · 2^scale_shift`, where `G1` and `G2`
/// are the run lengths of leading ones in each half of the random input —
/// geometrically distributed with parameter ½.
pub fn noising_circuit(aggregate_bits: u32, random_bits: u32, scale_shift: u32) -> Circuit {
    let mut b = CircuitBuilder::new();
    let aggregate = b.input_word(aggregate_bits);
    let r1 = b.input_word(random_bits);
    let r2 = b.input_word(random_bits);

    // Count the leading ones of a random word as a geometric sample:
    // count = sum over positions of (all bits up to this position are 1).
    let count_leading_ones = |b: &mut CircuitBuilder, word: &[usize]| -> Vec<usize> {
        let mut prefix = b.const_bit(true);
        let mut indicators = Vec::with_capacity(word.len());
        for &bit in word {
            prefix = b.and(prefix, bit);
            indicators.push(prefix);
        }
        // Sum the indicator bits into a word wide enough to hold the count.
        let count_width = (usize::BITS - word.len().leading_zeros()).max(1);
        let mut acc = b.const_word(0, count_width);
        for ind in indicators {
            let mut ind_word = vec![ind];
            while ind_word.len() < count_width as usize {
                ind_word.push(b.const_bit(false));
            }
            acc = b.add(&acc, &ind_word);
        }
        acc
    };

    let g1 = count_leading_ones(&mut b, &r1);
    let g2 = count_leading_ones(&mut b, &r2);

    // Sign-extend the difference into the aggregate width, scale and add.
    let g1_wide = b.zero_extend(&g1, aggregate_bits);
    let g2_wide = b.zero_extend(&g2, aggregate_bits);
    let diff = b.sub(&g1_wide, &g2_wide);
    let scaled = b.shl_const(&diff, scale_shift);
    let noised = b.add(&aggregate, &scaled);
    b.output_word(&noised);
    b.build().expect("builder circuits are well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_circuit::builder::{decode_word, decode_word_signed, encode_word};
    use dstress_circuit::{evaluate, CircuitStats};

    fn run(aggregate: u64, r1: u64, r2: u64, agg_bits: u32, rand_bits: u32, shift: u32) -> u64 {
        let c = noising_circuit(agg_bits, rand_bits, shift);
        let mut inputs = encode_word(aggregate, agg_bits);
        inputs.extend(encode_word(r1, rand_bits));
        inputs.extend(encode_word(r2, rand_bits));
        decode_word(&evaluate(&c, &inputs).unwrap())
    }

    #[test]
    fn zero_noise_when_runs_are_equal() {
        // Both random words start with the same number of leading ones
        // (counted from the LSB end of the word as laid out), so the noise
        // cancels.
        assert_eq!(run(1000, 0b0111, 0b0111, 16, 4, 0), 1000);
        assert_eq!(run(1000, 0, 0, 16, 4, 3), 1000);
    }

    #[test]
    fn noise_is_signed_difference_of_runs() {
        // r1 has 3 leading ones, r2 has 1: noise = +2.
        assert_eq!(run(500, 0b0111, 0b0001, 16, 4, 0), 502);
        // Reversed: noise = -2 (wrapping at 16 bits).
        assert_eq!(run(500, 0b0001, 0b0111, 16, 4, 0), 498);
        // Scaling multiplies the noise by 2^shift.
        assert_eq!(run(500, 0b0111, 0b0001, 16, 4, 3), 516);
    }

    #[test]
    fn noise_sign_handles_wraparound() {
        let c = noising_circuit(8, 4, 0);
        let mut inputs = encode_word(0, 8);
        inputs.extend(encode_word(0b0001, 4));
        inputs.extend(encode_word(0b1111, 4));
        let out = evaluate(&c, &inputs).unwrap();
        assert_eq!(decode_word_signed(&out), -3);
    }

    #[test]
    fn circuit_size_scales_with_random_bits() {
        let small = CircuitStats::of(&noising_circuit(32, 16, 0));
        let large = CircuitStats::of(&noising_circuit(32, 64, 0));
        assert!(large.and_gates > 2 * small.and_gates);
        assert!(small.and_gates > 0);
        assert_eq!(small.outputs, 32);
        assert_eq!(small.inputs, 32 + 2 * 16);
    }
}
