//! Circuit encodings of the DP graph-analytics suite.
//!
//! Four classic graph analytics as [`SecureVertexProgram`]s — the
//! ROADMAP's "scenario diversity" workloads.  Each mirrors, bit for bit,
//! the timeline of its plaintext reference in
//! [`dstress_graph::analytics`]: the same update/message semantics under
//! the engine's `I` rounds + final update schedule, so a secure run's
//! pre-noise `ideal_output` equals the reference aggregate exactly
//! (integer programs) or up to fixed-point quantisation (PageRank).
//!
//! Every program releases a single scalar and carries the edge-DP
//! sensitivity of that scalar (documented per type in the reference
//! module), which the engine feeds to the Laplace mechanism — the same
//! plumbing the finance case studies use.
//!
//! The no-op message `⊥` is all-zero bits throughout, which is why the
//! value-carrying encodings below reserve 0: SSSP messages carry
//! `distance + 1`, WCC labels are `vertex id + 1`.

use crate::program::SecureVertexProgram;
use dstress_circuit::builder::{decode_word, encode_word, CircuitBuilder, Word};
use dstress_circuit::spec::{Interval, ProgramSpec, SensitivityModel, WordSpec};
use dstress_circuit::Circuit;
use dstress_graph::analytics::PAGERANK_DAMPING;
use dstress_graph::{Graph, VertexId};

/// Folds `state` with the minimum of the non-⊥ (non-zero) incoming
/// message slots — the shared core of the SSSP and WCC update circuits.
fn min_over_nonzero_messages(
    b: &mut CircuitBuilder,
    state: &Word,
    incoming: &[Word],
    width: u32,
) -> Word {
    let zero = b.const_word(0, width);
    let mut acc = state.clone();
    for msg in incoming {
        let is_noop = b.eq_word(msg, &zero);
        let carries_value = b.not(is_noop);
        let candidate = b.min_unsigned(&acc, msg);
        acc = b.mux_word(carries_value, &candidate, &acc);
    }
    acc
}

/// One bin of the private degree histogram: releases how many vertices
/// have out-degree in `[lo, hi]`.
///
/// Communication-free (one round of all-⊥ messages keeps the traffic
/// pattern uniform); a full histogram is a sequence of single-bin
/// releases composed by the budget accountant.  Sensitivity 1 (edge-DP):
/// one edge moves at most one vertex across a bin boundary.
pub struct DegreeHistogramProgram {
    /// Word width of the per-vertex degree state.
    pub width: u32,
    /// Inclusive lower bin edge.
    pub lo: u64,
    /// Inclusive upper bin edge.
    pub hi: u64,
}

impl SecureVertexProgram for DegreeHistogramProgram {
    fn state_bits(&self) -> u32 {
        self.width
    }

    fn message_bits(&self) -> u32 {
        self.width
    }

    fn aggregate_bits(&self) -> u32 {
        32
    }

    fn iterations(&self) -> u32 {
        1
    }

    fn sensitivity(&self) -> f64 {
        1.0
    }

    fn encode_initial_state(&self, graph: &Graph, v: VertexId) -> Vec<bool> {
        let degree = graph.out_degree(v) as u64;
        assert!(
            degree < (1u64 << self.width),
            "degree {degree} does not fit in {} bits",
            self.width
        );
        encode_word(degree, self.width)
    }

    fn update_circuit(&self, degree_bound: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let state = b.input_word(self.width);
        for _ in 0..degree_bound {
            b.input_word(self.width);
        }
        b.output_word(&state); // Degree is static: pass it through.
        let noop = b.const_word(0, self.width);
        for _ in 0..degree_bound {
            b.output_word(&noop);
        }
        b.build().expect("builder circuits are well formed")
    }

    fn aggregation_circuit(&self, vertices: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let states: Vec<_> = (0..vertices).map(|_| b.input_word(self.width)).collect();
        let lo = b.const_word(self.lo, self.width);
        let hi = b.const_word(self.hi, self.width);
        let indicators: Vec<Word> = states
            .iter()
            .map(|s| {
                let below = b.lt_unsigned(s, &lo);
                let above = b.lt_unsigned(&hi, s);
                let outside = b.or(below, above);
                let inside = b.not(outside);
                b.zero_extend(&vec![inside], 32)
            })
            .collect();
        let count = b.sum(&indicators);
        b.output_word(&count);
        b.build().expect("builder circuits are well formed")
    }

    fn decode_aggregate(&self, bits: &[bool]) -> f64 {
        decode_word(bits) as f64
    }

    fn analysis_spec(&self, _degree_bound: usize) -> ProgramSpec {
        ProgramSpec {
            name: "degree-histogram".to_string(),
            state_words: vec![WordSpec::private(
                "degree",
                self.width,
                Interval::unsigned(self.width),
            )],
            // Communication-free: every message is the no-op ⊥ = 0.
            message_words: vec![WordSpec::private("noop", self.width, Interval::point(0))],
            sensitivity_model: SensitivityModel::LocalizedDelta {
                changed_state_words: 1,
            },
            modular: false,
            dominance: Vec::new(),
            message_sum_cap: None,
        }
    }
}

/// Secure WCC by min-label propagation: releases the number of
/// component roots (vertices still holding their own label).
///
/// Exact component count on symmetric graphs when `rounds ≥ diameter`;
/// sensitivity 1 (edge-DP).
pub struct WccProgram {
    /// Word width of labels (must hold `vertex count`, since labels are
    /// `v + 1`).
    pub width: u32,
    /// Propagation rounds.
    pub rounds: u32,
}

impl SecureVertexProgram for WccProgram {
    fn state_bits(&self) -> u32 {
        self.width
    }

    fn message_bits(&self) -> u32 {
        self.width
    }

    fn aggregate_bits(&self) -> u32 {
        32
    }

    fn iterations(&self) -> u32 {
        self.rounds
    }

    fn sensitivity(&self) -> f64 {
        1.0
    }

    fn encode_initial_state(&self, graph: &Graph, v: VertexId) -> Vec<bool> {
        let label = v.0 as u64 + 1;
        assert!(
            graph.vertex_count() < (1usize << self.width),
            "labels up to {} do not fit in {} bits",
            graph.vertex_count(),
            self.width
        );
        encode_word(label, self.width)
    }

    fn update_circuit(&self, degree_bound: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let state = b.input_word(self.width);
        let incoming: Vec<_> = (0..degree_bound)
            .map(|_| b.input_word(self.width))
            .collect();
        let new_label = min_over_nonzero_messages(&mut b, &state, &incoming, self.width);
        b.output_word(&new_label);
        for _ in 0..degree_bound {
            b.output_word(&new_label); // Broadcast the adopted label.
        }
        b.build().expect("builder circuits are well formed")
    }

    fn aggregation_circuit(&self, vertices: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let states: Vec<_> = (0..vertices).map(|_| b.input_word(self.width)).collect();
        let indicators: Vec<Word> = states
            .iter()
            .enumerate()
            .map(|(v, s)| {
                let own = b.const_word(v as u64 + 1, self.width);
                let is_root = b.eq_word(s, &own);
                b.zero_extend(&vec![is_root], 32)
            })
            .collect();
        let count = b.sum(&indicators);
        b.output_word(&count);
        b.build().expect("builder circuits are well formed")
    }

    fn decode_aggregate(&self, bits: &[bool]) -> f64 {
        decode_word(bits) as f64
    }

    fn analysis_spec(&self, _degree_bound: usize) -> ProgramSpec {
        ProgramSpec {
            name: "wcc".to_string(),
            state_words: vec![WordSpec::private(
                "label",
                self.width,
                Interval::unsigned(self.width),
            )],
            message_words: vec![WordSpec::private(
                "label",
                self.width,
                Interval::unsigned(self.width),
            )],
            sensitivity_model: SensitivityModel::DecomposedCounting {
                max_changed_terms: 1,
                lemma: "min-label propagation: one changed edge can merge or split at most \
                        one component pair, flipping the root indicator of at most one \
                        vertex (the larger-labelled root)"
                    .to_string(),
            },
            modular: false,
            dominance: Vec::new(),
            message_sum_cap: None,
        }
    }
}

/// Secure SSSP hop counts: releases the distance from `source` to
/// `target`, truncated at `rounds + 1` ("farther than observable").
///
/// Messages carry `distance + 1` with ⊥ = 0.  Sensitivity `rounds + 1`
/// (edge-DP: one edge can swing the release across its whole range).
pub struct SsspProgram {
    /// Word width of distances (must hold the cap `rounds + 1`).
    pub width: u32,
    /// Source vertex (distance 0).
    pub source: VertexId,
    /// Vertex whose truncated distance is released.
    pub target: VertexId,
    /// Propagation rounds.
    pub rounds: u32,
}

impl SsspProgram {
    /// The truncation cap `rounds + 1`.
    pub fn cap(&self) -> u64 {
        self.rounds as u64 + 1
    }
}

impl SecureVertexProgram for SsspProgram {
    fn state_bits(&self) -> u32 {
        self.width
    }

    fn message_bits(&self) -> u32 {
        self.width
    }

    fn aggregate_bits(&self) -> u32 {
        self.width
    }

    fn iterations(&self) -> u32 {
        self.rounds
    }

    fn sensitivity(&self) -> f64 {
        self.cap() as f64
    }

    fn encode_initial_state(&self, _graph: &Graph, v: VertexId) -> Vec<bool> {
        assert!(
            self.cap() + 1 < (1u64 << self.width),
            "cap {} does not fit in {} bits",
            self.cap(),
            self.width
        );
        let initial = if v == self.source { 0 } else { self.cap() };
        encode_word(initial, self.width)
    }

    fn update_circuit(&self, degree_bound: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let state = b.input_word(self.width);
        let incoming: Vec<_> = (0..degree_bound)
            .map(|_| b.input_word(self.width))
            .collect();
        // A message m ≠ 0 offers distance m through the sending edge.
        let new_dist = min_over_nonzero_messages(&mut b, &state, &incoming, self.width);
        b.output_word(&new_dist);
        // Outgoing: dist + 1 when within the horizon, ⊥ otherwise.
        let cap = b.const_word(self.cap(), self.width);
        let one = b.const_word(1, self.width);
        let zero = b.const_word(0, self.width);
        let reached = b.lt_unsigned(&new_dist, &cap);
        let offer = b.add(&new_dist, &one);
        let outgoing = b.mux_word(reached, &offer, &zero);
        for _ in 0..degree_bound {
            b.output_word(&outgoing);
        }
        b.build().expect("builder circuits are well formed")
    }

    fn aggregation_circuit(&self, vertices: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let states: Vec<_> = (0..vertices).map(|_| b.input_word(self.width)).collect();
        b.output_word(&states[self.target.0]);
        b.build().expect("builder circuits are well formed")
    }

    fn decode_aggregate(&self, bits: &[bool]) -> f64 {
        decode_word(bits) as f64
    }

    fn analysis_spec(&self, _degree_bound: usize) -> ProgramSpec {
        let cap = self.cap() as i128;
        ProgramSpec {
            name: "sssp".to_string(),
            // Distances are 0 or truncated at the cap; offers carry
            // distance + 1 with ⊥ = 0.
            state_words: vec![WordSpec::private("dist", self.width, Interval::new(0, cap))],
            message_words: vec![WordSpec::private(
                "offer",
                self.width,
                Interval::new(0, cap + 1),
            )],
            sensitivity_model: SensitivityModel::OutputRange,
            modular: false,
            dominance: Vec::new(),
            message_sum_cap: None,
        }
    }
}

/// Secure PageRank in fixed point: releases the rank of `target` after
/// `rounds` power iterations with damping `d = 1/4` (dyadic, applied as
/// an exact right shift — see [`PAGERANK_DAMPING`]).
///
/// State is `[rank, 1/outdeg]`, both `frac_bits + 4`-bit fixed-point
/// words; the private per-vertex `1/outdeg` rides in the state so the
/// message circuit can divide without a division gate.  Sensitivity
/// `2d/(1 − d) = 2/3` in rank units (edge-DP).
pub struct PageRankProgram {
    /// Fractional bits of the fixed-point encoding.
    pub frac_bits: u32,
    /// Vertex whose rank is released.
    pub target: VertexId,
    /// Power-iteration rounds.
    pub rounds: u32,
    /// Vertex count `N` (baked into the `(1 − d)/N` circuit constant).
    pub vertices: usize,
}

impl PageRankProgram {
    /// Word width: `frac_bits` plus headroom for message sums.
    fn width(&self) -> u32 {
        self.frac_bits + 4
    }

    /// The circuit constant `(1 − d)/N` in fixed point.
    fn base_units(&self) -> u64 {
        let scale = (1u64 << self.frac_bits) as f64;
        ((1.0 - PAGERANK_DAMPING) / self.vertices as f64 * scale).round() as u64
    }

    /// Worst-case absolute error of the released rank versus the
    /// real-valued reference, in rank units: every round each of the
    /// `degree_bound` incoming messages carries one `mul_fixed`
    /// truncation plus the `1/outdeg` quantisation, damped by `d`.
    pub fn quantisation_bound(&self, degree_bound: usize) -> f64 {
        let ulp = 1.0 / (1u64 << self.frac_bits) as f64;
        // Per round: d · D · (truncation + inv quantisation) + base rounding,
        // summed over the geometric propagation (bounded by rounds + 1).
        (self.rounds as f64 + 1.0) * (degree_bound as f64 * 2.0 * PAGERANK_DAMPING + 1.0) * ulp
    }
}

impl SecureVertexProgram for PageRankProgram {
    fn state_bits(&self) -> u32 {
        2 * self.width()
    }

    fn message_bits(&self) -> u32 {
        self.width()
    }

    fn aggregate_bits(&self) -> u32 {
        self.width()
    }

    fn iterations(&self) -> u32 {
        self.rounds
    }

    fn sensitivity(&self) -> f64 {
        (2.0 * PAGERANK_DAMPING / (1.0 - PAGERANK_DAMPING)).min(1.0)
    }

    fn encode_initial_state(&self, graph: &Graph, v: VertexId) -> Vec<bool> {
        assert_eq!(
            graph.vertex_count(),
            self.vertices,
            "program was built for a different vertex count"
        );
        let scale = (1u64 << self.frac_bits) as f64;
        let rank0 = (scale / self.vertices as f64).round() as u64;
        let outdeg = graph.out_degree(v);
        let inv = if outdeg == 0 {
            0
        } else {
            (scale / outdeg as f64).round() as u64
        };
        let mut bits = encode_word(rank0, self.width());
        bits.extend(encode_word(inv, self.width()));
        bits
    }

    fn update_circuit(&self, degree_bound: usize) -> Circuit {
        let w = self.width();
        let mut b = CircuitBuilder::new();
        let _rank = b.input_word(w); // Overwritten every round.
        let inv_outdeg = b.input_word(w);
        let incoming: Vec<_> = (0..degree_bound).map(|_| b.input_word(w)).collect();

        // rank' = (1 − d)/N + d · Σ messages, with d = 1/4 as a shift.
        let mass = b.sum(&incoming);
        let damped = b.shr_const(&mass, 2);
        let base = b.const_word(self.base_units(), w);
        let new_rank = b.add(&base, &damped);

        b.output_word(&new_rank);
        b.output_word(&inv_outdeg);

        // message = rank' / outdeg, via the private fixed-point inverse.
        let outgoing = b.mul_fixed(&new_rank, &inv_outdeg, self.frac_bits);
        for _ in 0..degree_bound {
            b.output_word(&outgoing);
        }
        b.build().expect("builder circuits are well formed")
    }

    fn aggregation_circuit(&self, vertices: usize) -> Circuit {
        let w = self.width();
        let mut b = CircuitBuilder::new();
        let mut target_rank = None;
        for v in 0..vertices {
            let rank = b.input_word(w);
            let _inv = b.input_word(w);
            if v == self.target.0 {
                target_rank = Some(rank);
            }
        }
        b.output_word(&target_rank.expect("target vertex within range"));
        b.build().expect("builder circuits are well formed")
    }

    fn decode_aggregate(&self, bits: &[bool]) -> f64 {
        decode_word(bits) as f64 / (1u64 << self.frac_bits) as f64
    }

    fn analysis_spec(&self, _degree_bound: usize) -> ProgramSpec {
        // L1 mass-conservation cap on the total incoming mass at any
        // vertex: the system-wide rank total stays below
        // 2^frac_bits + 2N (the fixed point of T' ≤ (1-d)·2^f + d·T
        // plus rounding slack), and all messages are non-negative.
        let mass_cap = (1i128 << self.frac_bits) + 2 * self.vertices as i128;
        let rank_hi = self.base_units() as i128 + (mass_cap >> 2);
        let w = self.width();
        ProgramSpec {
            name: "pagerank".to_string(),
            state_words: vec![
                WordSpec::private("rank", w, Interval::new(0, rank_hi)),
                WordSpec::private("inv_outdeg", w, Interval::new(0, 1i128 << self.frac_bits)),
            ],
            message_words: vec![WordSpec::private("mass", w, Interval::new(0, rank_hi))],
            sensitivity_model: SensitivityModel::GeometricContraction {
                damping_shift: 2,
                lemma: "L1 mass conservation: 1/outdeg splits each rank among its \
                        out-neighbours (outdeg · inv_outdeg ≤ 2^frac_bits + outdeg/2), so \
                        total incoming mass stays below 2^frac_bits + 2N and one changed \
                        edge perturbs only one vertex's incoming mass"
                    .to_string(),
            },
            modular: false,
            dominance: Vec::new(),
            message_sum_cap: Some(mass_cap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DStressConfig;
    use crate::engine::DStressRuntime;
    use crate::program::execute_plaintext;
    use dstress_graph::analytics::{DegreeBin, PageRankRef, SsspHops, WccLabels};
    use dstress_graph::execute_reference;

    /// The shared utility-test topology: two components — an undirected
    /// path 0–1–2–3 and a triangle 4–5–6.
    fn two_component_graph() -> Graph {
        let mut g = Graph::new(7, 4);
        for i in 0..3 {
            g.add_bidirectional(VertexId(i), VertexId(i + 1)).unwrap();
        }
        g.add_bidirectional(VertexId(4), VertexId(5)).unwrap();
        g.add_bidirectional(VertexId(5), VertexId(6)).unwrap();
        g.add_bidirectional(VertexId(6), VertexId(4)).unwrap();
        g
    }

    /// Asserts a secure release sits within the analytic error bound
    /// around the plaintext reference: the fixed-point quantisation (0
    /// for the integer programs) plus the Laplace tail bound at
    /// δ = 10⁻⁹ for the run's sensitivity/ε.
    fn assert_release_within_bounds(
        released: f64,
        reference: f64,
        quantisation: f64,
        sensitivity: f64,
        epsilon: f64,
    ) {
        let laplace_tail = sensitivity / epsilon * (1e-9f64).recip().ln();
        let bound = quantisation + laplace_tail;
        assert!(
            (released - reference).abs() <= bound,
            "released {released} vs reference {reference}: outside ±{bound}"
        );
    }

    #[test]
    fn degree_histogram_circuit_matches_reference() {
        let g = two_component_graph();
        for (lo, hi) in [(0u64, 1), (2, 2), (3, 4), (0, 8)] {
            let secure = DegreeHistogramProgram { width: 8, lo, hi };
            let reference = execute_reference(&g, &DegreeBin::new(&g, lo, hi));
            assert_eq!(
                execute_plaintext(&g, &secure),
                reference.aggregate,
                "bin [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn wcc_circuit_matches_reference() {
        let g = two_component_graph();
        let secure = WccProgram {
            width: 8,
            rounds: 4,
        };
        let reference = execute_reference(&g, &WccLabels { rounds: 4 });
        assert_eq!(execute_plaintext(&g, &secure), reference.aggregate);
        assert_eq!(reference.aggregate, 2.0);
    }

    #[test]
    fn sssp_circuit_matches_reference_including_truncation() {
        let g = two_component_graph();
        for (target, rounds) in [(3usize, 4u32), (3, 2), (6, 3)] {
            let secure = SsspProgram {
                width: 8,
                source: VertexId(0),
                target: VertexId(target),
                rounds,
            };
            let reference = execute_reference(
                &g,
                &SsspHops {
                    source: VertexId(0),
                    target: VertexId(target),
                    rounds,
                },
            );
            assert_eq!(
                execute_plaintext(&g, &secure),
                reference.aggregate,
                "target {target}, rounds {rounds}"
            );
        }
        // Vertex 6 is unreachable from 0: the release is the cap.
        let unreachable = SsspProgram {
            width: 8,
            source: VertexId(0),
            target: VertexId(6),
            rounds: 3,
        };
        assert_eq!(execute_plaintext(&g, &unreachable), 4.0);
    }

    #[test]
    fn pagerank_circuit_tracks_reference_within_quantisation() {
        let g = two_component_graph();
        let secure = PageRankProgram {
            frac_bits: 12,
            target: VertexId(1),
            rounds: 8,
            vertices: g.vertex_count(),
        };
        let reference = execute_reference(&g, &PageRankRef::new(&g, VertexId(1), 8));
        let circuit_value = execute_plaintext(&g, &secure);
        let bound = secure.quantisation_bound(g.degree_bound());
        assert!(
            (circuit_value - reference.aggregate).abs() <= bound,
            "circuit {circuit_value} vs reference {} (bound {bound})",
            reference.aggregate
        );
        // The bound is tight enough to be meaningful at this scale.
        assert!(bound < 0.05, "quantisation bound {bound} too loose");
    }

    #[test]
    fn engine_releases_each_program_within_analytic_bounds() {
        let g = two_component_graph();
        let mut config = DStressConfig::small_test(2);
        config.epsilon = 1.0;

        // Degree histogram: bin [2, 2] holds the path interior + triangle.
        let histogram = DegreeHistogramProgram {
            width: 8,
            lo: 2,
            hi: 2,
        };
        let run = DStressRuntime::new(config.clone())
            .execute(&g, &histogram)
            .unwrap();
        assert_eq!(run.ideal_output, 5.0);
        assert_release_within_bounds(run.noised_output, 5.0, 0.0, 1.0, config.epsilon);

        // WCC: two components.
        let wcc = WccProgram {
            width: 8,
            rounds: 4,
        };
        let run = DStressRuntime::new(config.clone())
            .execute(&g, &wcc)
            .unwrap();
        assert_eq!(run.ideal_output, 2.0);
        assert_release_within_bounds(run.noised_output, 2.0, 0.0, 1.0, config.epsilon);

        // SSSP: distance 0 → 3 is 3 hops.
        let sssp = SsspProgram {
            width: 8,
            source: VertexId(0),
            target: VertexId(3),
            rounds: 4,
        };
        let run = DStressRuntime::new(config.clone())
            .execute(&g, &sssp)
            .unwrap();
        assert_eq!(run.ideal_output, 3.0);
        assert_release_within_bounds(
            run.noised_output,
            3.0,
            0.0,
            sssp.sensitivity(),
            config.epsilon,
        );

        // PageRank: the engine's pre-noise output equals the plaintext
        // circuit exactly; the release adds Laplace on top of that plus
        // the quantisation slack against the real-valued reference.
        let pagerank = PageRankProgram {
            frac_bits: 12,
            target: VertexId(1),
            rounds: 4,
            vertices: g.vertex_count(),
        };
        let run = DStressRuntime::new(config.clone())
            .execute(&g, &pagerank)
            .unwrap();
        assert_eq!(run.ideal_output, execute_plaintext(&g, &pagerank));
        let reference = execute_reference(&g, &PageRankRef::new(&g, VertexId(1), 4));
        assert_release_within_bounds(
            run.noised_output,
            reference.aggregate,
            pagerank.quantisation_bound(g.degree_bound()),
            pagerank.sensitivity(),
            config.epsilon,
        );
    }

    #[test]
    fn pagerank_state_layout_has_rank_then_inverse() {
        let g = two_component_graph();
        let p = PageRankProgram {
            frac_bits: 12,
            target: VertexId(0),
            rounds: 1,
            vertices: g.vertex_count(),
        };
        let bits = p.encode_initial_state(&g, VertexId(1));
        assert_eq!(bits.len(), p.state_bits() as usize);
        let w = (p.state_bits() / 2) as usize;
        let rank0 = decode_word(&bits[..w]);
        let inv = decode_word(&bits[w..]);
        assert_eq!(rank0, (4096.0 / 7.0_f64).round() as u64);
        // Vertex 1 has out-degree 2 in the path.
        assert_eq!(inv, 2048);
    }
}
