//! Recurring releases with budget composition.
//!
//! A one-shot DStress run answers a single query under a single ε.  Real
//! deployments *recur*: the systemic-risk monitor published monthly, a
//! degree histogram released bin by bin, a metric refreshed every round.
//! Sequential composition makes the privacy cost additive — `K` releases
//! at ε_round spend `K · ε_round` — so every release must clear a shared
//! [`BudgetAccountant`] before it runs.
//!
//! [`ReleaseSchedule`] is that gate.  It offers two release paths:
//!
//! * [`ReleaseSchedule::release_full`] — the full MPC pipeline (blocks,
//!   GMW, transfer protocol, Laplace release) via [`DStressRuntime`],
//!   rerun with the schedule's per-release ε and a per-release seed.
//! * [`ReleaseSchedule::release_psa`] — the private-stream-aggregation
//!   path ([`PsaSystem`]): one ciphertext per participant per round with
//!   geometric noise folded in, no MPC at all.  Orders of magnitude
//!   cheaper per release (`repro -- scenarios` measures the ratio); the
//!   trade is that PSA only computes *additive* statistics, so the
//!   monitor uses it for interim releases between full-MPC runs.
//!
//! The budget is charged **before** the release executes and is not
//! refunded on failure: a failed run may still have leaked through
//! timing or partial outputs, so the accountant stays conservative.
//! When the budget runs out the schedule refuses further releases until
//! [`ReleaseSchedule::replenish`] (the paper's §4.5 annual reset).

use crate::config::DStressConfig;
use crate::engine::{DStressRuntime, RuntimeError};
use crate::program::SecureVertexProgram;
use dstress_dp::psa::{PsaError, PsaSystem};
use dstress_dp::{BudgetAccountant, BudgetError};
use dstress_graph::Graph;
use dstress_math::rng::{splitmix64_finalize, DetRng};
use std::fmt;

/// Why a scheduled release did not produce a value.
#[derive(Debug)]
pub enum ScheduleError {
    /// The budget accountant refused the charge (exhausted or invalid ε).
    Budget(BudgetError),
    /// The full-MPC pipeline failed.
    Runtime(RuntimeError),
    /// The PSA pipeline failed.
    Psa(PsaError),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Budget(e) => write!(f, "release refused: {e}"),
            ScheduleError::Runtime(e) => write!(f, "full-MPC release failed: {e}"),
            ScheduleError::Psa(e) => write!(f, "PSA release failed: {e}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<BudgetError> for ScheduleError {
    fn from(e: BudgetError) -> Self {
        ScheduleError::Budget(e)
    }
}

impl From<RuntimeError> for ScheduleError {
    fn from(e: RuntimeError) -> Self {
        ScheduleError::Runtime(e)
    }
}

impl From<PsaError> for ScheduleError {
    fn from(e: PsaError) -> Self {
        ScheduleError::Psa(e)
    }
}

/// How a recorded release was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReleaseMode {
    /// Full MPC pipeline with a Laplace release.
    FullMpc,
    /// Private stream aggregation with geometric noise.
    Psa,
}

/// One completed release.
#[derive(Clone, Debug)]
pub struct ReleaseRecord {
    /// The label charged to the audit trail.
    pub label: String,
    /// Which pipeline produced it.
    pub mode: ReleaseMode,
    /// The released (noisy) value.
    pub value: f64,
    /// The ε spent on it.
    pub epsilon: f64,
}

/// A recurring-release schedule: a budget accountant in front of the two
/// release pipelines, with an audit trail of everything released.
pub struct ReleaseSchedule {
    accountant: BudgetAccountant,
    epsilon_per_release: f64,
    releases: Vec<ReleaseRecord>,
}

impl ReleaseSchedule {
    /// Creates a schedule spending `epsilon_per_release` from `accountant`
    /// on every release.
    pub fn new(accountant: BudgetAccountant, epsilon_per_release: f64) -> Self {
        ReleaseSchedule {
            accountant,
            epsilon_per_release,
            releases: Vec::new(),
        }
    }

    /// The per-release ε.
    pub fn epsilon_per_release(&self) -> f64 {
        self.epsilon_per_release
    }

    /// The underlying accountant (total, spent, audit trail).
    pub fn accountant(&self) -> &BudgetAccountant {
        &self.accountant
    }

    /// Completed releases, in order.
    pub fn releases(&self) -> &[ReleaseRecord] {
        &self.releases
    }

    /// How many more releases the remaining budget allows.
    pub fn releases_remaining(&self) -> u32 {
        let spent_releases = self
            .accountant
            .max_queries(self.epsilon_per_release)
            .map(|total| {
                let used = (self.accountant.spent() / self.epsilon_per_release).round() as u32;
                total.saturating_sub(used)
            });
        spent_releases.unwrap_or(0)
    }

    /// Resets the accountant (the §4.5 annual replenishment), keeping the
    /// release history.
    pub fn replenish(&mut self) {
        self.accountant.replenish();
    }

    fn charge(&mut self, label: &str) -> Result<(), ScheduleError> {
        self.accountant.charge(label, self.epsilon_per_release)?;
        Ok(())
    }

    /// Runs the full MPC pipeline for one scheduled release.
    ///
    /// The runtime executes with the schedule's per-release ε (overriding
    /// `config.epsilon`) and a seed derived from the release index, so
    /// repeated releases draw independent noise.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Budget`] if the accountant refuses the charge
    /// (nothing runs in that case), [`ScheduleError::Runtime`] if the
    /// pipeline fails (the charge is *not* refunded — see module docs).
    pub fn release_full<P: SecureVertexProgram>(
        &mut self,
        config: &DStressConfig,
        graph: &Graph,
        program: &P,
        label: &str,
    ) -> Result<f64, ScheduleError> {
        self.charge(label)?;
        let mut run_config = config.clone();
        run_config.epsilon = self.epsilon_per_release;
        run_config.seed ^= splitmix64_finalize(self.releases.len() as u64 + 1);
        let run = DStressRuntime::new(run_config).execute(graph, program)?;
        self.releases.push(ReleaseRecord {
            label: label.to_string(),
            mode: ReleaseMode::FullMpc,
            value: run.noised_output,
            epsilon: self.epsilon_per_release,
        });
        Ok(run.noised_output)
    }

    /// Runs one PSA round for one scheduled release: every participant
    /// encrypts its value (noise included) and the aggregator decrypts
    /// the noisy sum.  No MPC runs.
    ///
    /// The round number is the release index, so each release re-masks
    /// under a fresh `H(t)`.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Budget`] if the accountant refuses the charge,
    /// [`ScheduleError::Psa`] for pipeline failures (charge not
    /// refunded).
    pub fn release_psa(
        &mut self,
        psa: &PsaSystem,
        values: &[u64],
        label: &str,
        rng: &mut dyn DetRng,
    ) -> Result<f64, ScheduleError> {
        self.charge(label)?;
        let round = self.releases.len() as u64;
        let ciphertexts = values
            .iter()
            .enumerate()
            .map(|(i, &v)| psa.encrypt(i, round, v, rng))
            .collect::<Result<Vec<_>, _>>()?;
        let noisy_sum = psa.aggregate(round, &ciphertexts)? as f64;
        self.releases.push(ReleaseRecord {
            label: label.to_string(),
            mode: ReleaseMode::Psa,
            value: noisy_sum,
            epsilon: self.epsilon_per_release,
        });
        Ok(noisy_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::CounterProgram;
    use dstress_crypto::group::Group;
    use dstress_graph::generate::ring_with_chords;
    use dstress_math::rng::Xoshiro256;

    fn tiny_graph() -> Graph {
        let mut rng = Xoshiro256::new(7);
        ring_with_chords(5, 0, 2, &mut rng)
    }

    #[test]
    fn k_full_releases_compose_k_epsilon_and_exhaust_on_k_plus_one() {
        // Budget 0.3, ε_round 0.1: exactly 3 releases fit (the budget
        // bugfix makes this boundary exact — see dstress-dp).
        let mut schedule = ReleaseSchedule::new(BudgetAccountant::new(0.3), 0.1);
        let graph = tiny_graph();
        let program = CounterProgram {
            width: 8,
            rounds: 1,
        };
        let config = DStressConfig::benchmark(2);

        assert_eq!(schedule.releases_remaining(), 3);
        for month in 0..3 {
            let label = format!("monitor month {month}");
            schedule
                .release_full(&config, &graph, &program, &label)
                .unwrap();
        }
        assert_eq!(schedule.releases().len(), 3);
        // Audit trail composes to exactly K · ε_round.
        assert!((schedule.accountant().spent() - 0.3).abs() < 1e-12);
        assert_eq!(schedule.accountant().charges().len(), 3);
        assert_eq!(schedule.releases_remaining(), 0);

        // Release K + 1 is refused by the accountant, before anything runs.
        let err = schedule
            .release_full(&config, &graph, &program, "month 3")
            .unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::Budget(BudgetError::Exhausted { .. })
        ));
        assert_eq!(schedule.releases().len(), 3);

        // Replenish re-enables the schedule.
        schedule.replenish();
        assert_eq!(schedule.releases_remaining(), 3);
        schedule
            .release_full(&config, &graph, &program, "year 2, month 0")
            .unwrap();
        assert_eq!(schedule.releases().len(), 4);
    }

    #[test]
    fn independent_releases_draw_independent_noise() {
        let mut schedule = ReleaseSchedule::new(BudgetAccountant::new(2.0), 0.1);
        let graph = tiny_graph();
        let program = CounterProgram {
            width: 8,
            rounds: 1,
        };
        let config = DStressConfig::benchmark(2);
        let a = schedule
            .release_full(&config, &graph, &program, "a")
            .unwrap();
        let b = schedule
            .release_full(&config, &graph, &program, "b")
            .unwrap();
        assert_ne!(a, b, "per-release seeds must decorrelate the noise");
    }

    #[test]
    fn psa_releases_share_the_same_accountant() {
        let mut rng = Xoshiro256::new(21);
        let psa = PsaSystem::setup(Group::sim64(), 4, 0.1, 1.0, 50, &mut rng);
        let mut schedule = ReleaseSchedule::new(BudgetAccountant::new(0.25), 0.1);

        let values = [10u64, 20, 5, 15];
        schedule
            .release_psa(&psa, &values, "psa round 0", &mut rng)
            .unwrap();
        schedule
            .release_psa(&psa, &values, "psa round 1", &mut rng)
            .unwrap();
        assert!((schedule.accountant().spent() - 0.2).abs() < 1e-12);
        assert_eq!(schedule.releases().len(), 2);
        assert!(schedule
            .releases()
            .iter()
            .all(|r| r.mode == ReleaseMode::Psa));

        // Third PSA round breaks the 0.25 budget.
        let err = schedule
            .release_psa(&psa, &values, "psa round 2", &mut rng)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::Budget(_)));
    }

    #[test]
    fn mixed_full_and_psa_releases_compose_on_one_budget() {
        let mut rng = Xoshiro256::new(5);
        let psa = PsaSystem::setup(Group::sim64(), 3, 0.1, 1.0, 50, &mut rng);
        let mut schedule = ReleaseSchedule::new(BudgetAccountant::new(0.3), 0.1);
        let graph = tiny_graph();
        let program = CounterProgram {
            width: 8,
            rounds: 1,
        };
        let config = DStressConfig::benchmark(2);

        schedule
            .release_full(&config, &graph, &program, "quarterly full run")
            .unwrap();
        schedule
            .release_psa(&psa, &[1, 2, 3], "interim psa", &mut rng)
            .unwrap();
        schedule
            .release_psa(&psa, &[4, 5, 6], "interim psa", &mut rng)
            .unwrap();
        assert!((schedule.accountant().spent() - 0.3).abs() < 1e-12);
        assert_eq!(
            schedule
                .releases()
                .iter()
                .filter(|r| r.mode == ReleaseMode::FullMpc)
                .count(),
            1
        );
        assert!(schedule
            .release_psa(&psa, &[0, 0, 0], "one too many", &mut rng)
            .is_err());
    }
}
