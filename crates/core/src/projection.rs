//! Paper-scale cost projection (Figure 6 and §5.5).
//!
//! The paper could not run the full U.S. banking system (N = 1,750 banks),
//! so it projects the end-to-end cost from its microbenchmarks: given the
//! degree bound `D`, the number of nodes `N`, the collusion bound `k` and
//! the iteration count `I`, it sums the costs of the initialization,
//! computation, communication and (two-level tree) aggregation steps,
//! conservatively assuming that a node cannot overlap the work of the
//! different blocks it belongs to.
//!
//! [`ScalabilityModel`] reproduces that projection.  Its inputs are the
//! circuit statistics of the program under study (supplied by the caller,
//! e.g. the Eisenberg–Noe update circuit built by `dstress-finance`) and a
//! calibrated [`CostModel`]; its outputs are projected end-to-end seconds
//! and per-node traffic, the two series of Figure 6.

use dstress_circuit::{Circuit, CircuitStats};
use dstress_net::cost::CostModel;

/// Circuit-level inputs of a projection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProjectionInputs {
    /// AND gates of one per-vertex update circuit (at the projected `D`).
    pub update_and_gates: u64,
    /// XOR/NOT gates of the update circuit.
    pub update_free_gates: u64,
    /// AND gates of the aggregation circuit *per aggregated vertex*.
    pub aggregation_and_gates_per_vertex: u64,
    /// AND gates of the noising circuit.
    pub noising_and_gates: u64,
    /// Per-vertex state width in bits.
    pub state_bits: u64,
    /// Message width in bits.
    pub message_bits: u64,
}

impl ProjectionInputs {
    /// Extracts the inputs from concrete circuits.
    pub fn from_circuits(
        update: &Circuit,
        aggregation: &Circuit,
        aggregated_vertices: u64,
        noising: &Circuit,
        state_bits: u64,
        message_bits: u64,
    ) -> Self {
        let u = CircuitStats::of(update);
        let a = CircuitStats::of(aggregation);
        let n = CircuitStats::of(noising);
        ProjectionInputs {
            update_and_gates: u.and_gates as u64,
            update_free_gates: (u.xor_gates + u.not_gates) as u64,
            aggregation_and_gates_per_vertex: (a.and_gates as u64)
                .div_ceil(aggregated_vertices.max(1)),
            noising_and_gates: n.and_gates as u64,
            state_bits,
            message_bits,
        }
    }
}

/// Per-phase projected seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProjectionBreakdown {
    /// Initialization (share distribution + OT session setup).
    pub initialization_seconds: f64,
    /// All GMW computation steps.
    pub computation_seconds: f64,
    /// All message transfers.
    pub communication_seconds: f64,
    /// Aggregation tree + noising.
    pub aggregation_seconds: f64,
}

/// The projected cost of one end-to-end run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProjectionResult {
    /// Projected end-to-end wall-clock seconds (per-node critical path).
    pub total_seconds: f64,
    /// Projected traffic sent per node, in bytes.
    pub bytes_per_node: f64,
    /// Per-phase breakdown of the seconds.
    pub breakdown: ProjectionBreakdown,
    /// Number of iterations assumed.
    pub iterations: u32,
}

impl ProjectionResult {
    /// Total projected time in hours.
    pub fn hours(&self) -> f64 {
        self.total_seconds / 3600.0
    }

    /// Projected per-node traffic in megabytes.
    pub fn megabytes_per_node(&self) -> f64 {
        self.bytes_per_node / 1.0e6
    }
}

/// The scalability model.
#[derive(Clone, Copy, Debug)]
pub struct ScalabilityModel {
    /// Per-operation cost constants.
    pub cost: CostModel,
    /// OT-extension statistical security parameter κ.
    pub ot_security: u64,
    /// Serialised group-element size in bytes (48 for the prototype's
    /// secp384r1 coordinates).
    pub element_bytes: u64,
    /// Fan-in of the hierarchical aggregation tree (the paper uses 100).
    pub aggregation_tree_degree: u64,
}

impl ScalabilityModel {
    /// The model with the paper's reference constants.
    pub fn paper_reference() -> Self {
        ScalabilityModel {
            cost: CostModel::paper_reference(),
            ot_security: 80,
            element_bytes: 48,
            aggregation_tree_degree: 100,
        }
    }

    /// The iteration count the paper uses when none is specified:
    /// `I = ceil(log2 N)` (Appendix C).
    pub fn default_iterations(n: usize) -> u32 {
        (n.max(2) as f64).log2().ceil() as u32
    }

    /// Projects the cost of one end-to-end run for `n` nodes, degree bound
    /// `d`, collusion bound `k` and `iterations` iterations.
    pub fn project(
        &self,
        inputs: &ProjectionInputs,
        n: usize,
        d: usize,
        k: usize,
        iterations: u32,
    ) -> ProjectionResult {
        let c = &self.cost;
        let block = (k + 1) as f64;
        let pairs_per_node = k as f64;
        let l = inputs.message_bits as f64;
        let elem = self.element_bytes as f64;
        let kappa = self.ot_security as f64;

        // --- One GMW execution, per participating node -------------------
        let mpc_node_seconds = |and_gates: f64, free_gates: f64| -> f64 {
            and_gates * (pairs_per_node * c.seconds_per_extended_ot + c.seconds_per_and_gate)
                + free_gates * c.seconds_per_free_gate
                + kappa * pairs_per_node * c.seconds_per_base_ot
        };
        // Bytes *sent* per node for one GMW execution: each AND-gate OT
        // moves ~(κ/8 + 1) bytes between a pair, split between the two
        // parties on average, plus the base-OT key material.
        let ot_bytes = kappa / 8.0 + 1.0;
        let mpc_node_bytes = |and_gates: f64| -> f64 {
            and_gates * pairs_per_node * ot_bytes / 2.0 + kappa * pairs_per_node * 2.0 * 32.0
        };

        // --- Initialization ------------------------------------------------
        // Share distribution to k block members plus the per-session OT
        // setup for the first computation step's sessions.
        let init_bytes_per_node = (inputs.state_bits as f64 + d as f64 * l) / 8.0 * k as f64;
        let init_seconds = block
            * (kappa * pairs_per_node * c.seconds_per_base_ot
                + init_bytes_per_node / c.bandwidth_bytes_per_second);

        // --- Computation steps --------------------------------------------
        // Every node is a member of ~(k+1) blocks and cannot overlap their
        // work (the paper's conservative assumption); iterations + 1 update
        // MPCs run per vertex.
        let updates = (iterations + 1) as f64;
        let computation_seconds = block
            * updates
            * mpc_node_seconds(
                inputs.update_and_gates as f64,
                inputs.update_free_gates as f64,
            );
        let computation_bytes = block * updates * mpc_node_bytes(inputs.update_and_gates as f64);

        // --- Communication steps --------------------------------------------
        // Per iteration, a node acts as: a sender-block member for D edges
        // in each of its k+1 blocks, the sending vertex i for its own D
        // out-edges, and the receiving vertex j for its D in-edges.
        let member_encrypt_seconds = block * (l + 1.0) * c.seconds_per_exponentiation;
        let member_encrypt_bytes = block * (l + 1.0) * elem;
        let vertex_i_seconds = block * block * l * c.seconds_per_group_multiplication
            + block * l * c.seconds_per_exponentiation;
        let vertex_i_bytes = block * l * 2.0 * elem;
        let vertex_j_seconds = block * l * c.seconds_per_exponentiation;
        let vertex_j_bytes = block * l * 2.0 * elem;
        let member_decrypt_seconds = 2.0 * l * c.seconds_per_exponentiation;

        let per_iteration_transfer_seconds = block * d as f64 * member_encrypt_seconds
            + d as f64 * (vertex_i_seconds + vertex_j_seconds)
            + block * d as f64 * member_decrypt_seconds;
        let per_iteration_transfer_bytes =
            block * d as f64 * member_encrypt_bytes + d as f64 * (vertex_i_bytes + vertex_j_bytes);
        let communication_seconds = iterations as f64 * per_iteration_transfer_seconds;
        let communication_bytes = iterations as f64 * per_iteration_transfer_bytes;

        // --- Aggregation -----------------------------------------------------
        // Two-level tree of aggregation blocks with the configured fan-in;
        // a node participates in at most one group per level.
        let levels = if n as u64 <= self.aggregation_tree_degree {
            1
        } else {
            2
        };
        let group_size = (n as u64).min(self.aggregation_tree_degree) as f64;
        let agg_and_gates = inputs.aggregation_and_gates_per_vertex as f64 * group_size
            + inputs.noising_and_gates as f64;
        let aggregation_seconds = levels as f64 * mpc_node_seconds(agg_and_gates, 0.0)
            + block * inputs.state_bits as f64 / 8.0 / c.bandwidth_bytes_per_second;
        let aggregation_bytes =
            levels as f64 * mpc_node_bytes(agg_and_gates) + block * inputs.state_bits as f64 / 8.0;

        let total_seconds =
            init_seconds + computation_seconds + communication_seconds + aggregation_seconds;
        let bytes_per_node =
            init_bytes_per_node + computation_bytes + communication_bytes + aggregation_bytes;

        ProjectionResult {
            total_seconds,
            bytes_per_node,
            breakdown: ProjectionBreakdown {
                initialization_seconds: init_seconds,
                computation_seconds,
                communication_seconds,
                aggregation_seconds,
            },
            iterations,
        }
    }
}

/// The §3.7 degree-bucketing optimisation, evaluated on the projection
/// model.
///
/// DStress normally uses one conservative degree bound `D` for every
/// vertex, which makes the MPC block computations of low-degree banks as
/// expensive as those of the most connected ones.  §3.7 suggests dividing
/// the vertices into buckets by approximate degree (revealing only the
/// bucket), so most banks run much smaller circuits.  This function
/// projects both deployments — single bound vs two buckets — and returns
/// the per-node times `(single_bound_seconds, bucketed_seconds)`.
#[allow(clippy::too_many_arguments)]
pub fn project_degree_buckets(
    model: &ScalabilityModel,
    small_inputs: &ProjectionInputs,
    large_inputs: &ProjectionInputs,
    small_degree: usize,
    large_degree: usize,
    fraction_large: f64,
    n: usize,
    k: usize,
    iterations: u32,
) -> (f64, f64) {
    assert!((0.0..=1.0).contains(&fraction_large));
    let single = model.project(large_inputs, n, large_degree, k, iterations);
    let small = model.project(small_inputs, n, small_degree, k, iterations);
    let large = model.project(large_inputs, n, large_degree, k, iterations);
    // A node's expected cost under bucketing: with probability
    // `fraction_large` it sits in (and serves blocks of) the high-degree
    // bucket, otherwise the low-degree one.
    let bucketed =
        fraction_large * large.total_seconds + (1.0 - fraction_large) * small.total_seconds;
    (single.total_seconds, bucketed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_circuit::builder::CircuitBuilder;

    /// A stand-in update circuit with a gate count comparable to the
    /// Eisenberg–Noe step at the given degree bound (the real circuit lives
    /// in `dstress-finance`; the projection only needs counts).
    fn synthetic_inputs(d: usize) -> ProjectionInputs {
        let width = 16u32;
        let mut b = CircuitBuilder::new();
        let state = b.input_word(width);
        let mut acc = state.clone();
        for _ in 0..d {
            let m = b.input_word(width);
            let scaled = b.mul_fixed(&m, &state, 8);
            acc = b.add(&acc, &scaled);
        }
        let divisor = b.input_word(width);
        let ratio = b.div_fixed(&acc, &divisor, 8);
        b.output_word(&ratio);
        let update = b.build().unwrap();

        let mut b = CircuitBuilder::new();
        let mut words = Vec::new();
        for _ in 0..100 {
            words.push(b.input_word(32));
        }
        let total = b.sum(&words);
        b.output_word(&total);
        let agg = b.build().unwrap();

        let noise = crate::noise_circuit::noising_circuit(32, 64, 0);
        ProjectionInputs::from_circuits(&update, &agg, 100, &noise, (3 + 2 * d as u64) * 16, 12)
    }

    #[test]
    fn default_iterations_is_log2() {
        assert_eq!(ScalabilityModel::default_iterations(100), 7);
        assert_eq!(ScalabilityModel::default_iterations(1750), 11);
        assert_eq!(ScalabilityModel::default_iterations(2), 1);
    }

    #[test]
    fn headline_projection_is_hours_not_years() {
        // The paper's headline: the full U.S. banking system (N = 1750,
        // D = 100, block size 20, I = 11) takes on the order of five hours
        // and several hundred megabytes per node — versus centuries for the
        // monolithic-MPC baseline.
        let model = ScalabilityModel::paper_reference();
        let inputs = synthetic_inputs(100);
        let result = model.project(&inputs, 1750, 100, 19, 11);
        assert!(
            (1.0..24.0).contains(&result.hours()),
            "projected {} hours",
            result.hours()
        );
        assert!(
            (50.0..5000.0).contains(&result.megabytes_per_node()),
            "projected {} MB per node",
            result.megabytes_per_node()
        );
    }

    #[test]
    fn projection_scales_with_degree_and_block_size() {
        let model = ScalabilityModel::paper_reference();
        let small_d = model.project(&synthetic_inputs(10), 500, 10, 19, 9);
        let large_d = model.project(&synthetic_inputs(100), 500, 100, 19, 9);
        assert!(large_d.total_seconds > large_d.breakdown.aggregation_seconds);
        assert!(large_d.total_seconds > 2.0 * small_d.total_seconds);
        assert!(large_d.bytes_per_node > small_d.bytes_per_node);

        let small_k = model.project(&synthetic_inputs(40), 500, 40, 7, 9);
        let large_k = model.project(&synthetic_inputs(40), 500, 40, 19, 9);
        assert!(large_k.total_seconds > 1.5 * small_k.total_seconds);
    }

    #[test]
    fn projection_grows_mildly_with_n() {
        // For fixed D the per-node cost grows with N only through the
        // iteration count and the aggregation tree (Fig. 6's gentle slope).
        let model = ScalabilityModel::paper_reference();
        let inputs = synthetic_inputs(40);
        let small = model.project(
            &inputs,
            200,
            40,
            19,
            ScalabilityModel::default_iterations(200),
        );
        let large = model.project(
            &inputs,
            2000,
            40,
            19,
            ScalabilityModel::default_iterations(2000),
        );
        assert!(large.total_seconds > small.total_seconds);
        assert!(large.total_seconds < 3.0 * small.total_seconds);
    }

    #[test]
    fn degree_bucketing_saves_most_of_the_cost() {
        // §3.7: if only the core (say 10% of banks) actually needs D = 100
        // and the rest fit in D = 10, bucketing cuts the projected per-node
        // cost dramatically compared to a single conservative bound.
        let model = ScalabilityModel::paper_reference();
        let small_inputs = synthetic_inputs(10);
        let large_inputs = synthetic_inputs(100);
        let (single, bucketed) = project_degree_buckets(
            &model,
            &small_inputs,
            &large_inputs,
            10,
            100,
            0.1,
            1750,
            19,
            11,
        );
        assert!(
            bucketed < 0.4 * single,
            "bucketed {bucketed} vs single {single}"
        );
        // Degenerate fractions recover the single-bucket cases.
        let (single_again, all_large) = project_degree_buckets(
            &model,
            &small_inputs,
            &large_inputs,
            10,
            100,
            1.0,
            1750,
            19,
            11,
        );
        assert!((all_large - single_again).abs() < 1e-6);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let model = ScalabilityModel::paper_reference();
        let inputs = synthetic_inputs(10);
        let r = model.project(&inputs, 100, 10, 7, 7);
        let sum = r.breakdown.initialization_seconds
            + r.breakdown.computation_seconds
            + r.breakdown.communication_seconds
            + r.breakdown.aggregation_seconds;
        assert!((sum - r.total_seconds).abs() < 1e-9);
        assert_eq!(r.iterations, 7);
    }
}
