//! The pluggable state-store layer: packed row storage with disk spill.
//!
//! The engine's persistent per-vertex share state — the state shares and
//! the double-buffered inboxes — lives behind the [`StateStore`] trait.
//! Two backends implement it:
//!
//! * [`MemStore`] — the flat bit-packed in-memory layout (one bit per
//!   share bit, `⌈width/64⌉` words per row) that every prior PR used.
//! * [`SpillStore`] — the same packed rows, paged to disk in fixed-size
//!   segments of [`SEGMENT_ROWS`] rows.  A bounded set of segments stays
//!   resident (LRU, dirty-tracked); evicted dirty segments append to a
//!   log-structured file that is compacted in place once dead bytes
//!   outgrow live bytes.  Hand-rolled files, like the [`Wire`] codec —
//!   no registry crates.
//!
//! Both backends expose the same segment view (`segment_words` /
//! `load_segment`), so round-boundary checkpoints are backend-invariant:
//! a run checkpointed under one backend resumes under the other.
//!
//! Spill files live in a run-scoped directory owned by a [`RunDirGuard`]
//! whose `Drop` removes the whole directory — including on error paths,
//! so a failed round never orphans spill segments.
//!
//! [`Wire`]: dstress_net::wire::Wire

use core::fmt;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::wire::{CheckpointManifest, SegmentDigest, SegmentRecord};
use dstress_net::wire::Wire;

/// Rows per spill/checkpoint segment — fixed across backends so the
/// checkpoint segment layout never depends on where the rows lived.
///
/// 64 rows keeps segments small enough that modest test graphs span
/// several of them (so the paging machinery is exercised end to end)
/// while staying large enough that a big run's log appends are batched
/// I/O, not per-row writes.
pub const SEGMENT_ROWS: usize = 64;

/// Errors produced by the state-store layer.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation on a spill or checkpoint file failed.
    Io {
        /// What was being done, with the underlying error.
        context: String,
    },
    /// A spill or checkpoint file held data that fails validation
    /// (digest mismatch, wrong segment geometry, truncated record).
    Corrupt {
        /// What failed validation.
        context: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context } => write!(f, "store i/o error: {context}"),
            StoreError::Corrupt { context } => write!(f, "store corruption: {context}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Wraps an [`std::io::Error`] with its operation context.
fn io_err(context: impl fmt::Display, e: std::io::Error) -> StoreError {
    StoreError::Io {
        context: format!("{context}: {e}"),
    }
}

/// 64-bit FNV-1a over a byte stream — the digest pinning spill segments
/// and checkpoint records.  Not cryptographic; it guards against torn
/// writes and file mix-ups, not adversaries (who are modelled at the
/// protocol layer, not the local filesystem).
pub fn digest64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// [`digest64`] over the little-endian bytes of a word slice (the digest
/// of one packed segment).
pub fn digest64_words(words: &[u64]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &w in words {
        for b in w.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// A fixed-width bit-packed row store.
///
/// One row is one member's share vector (a state row or one inbox slot).
/// All methods are fallible: the in-memory backend never errors, the
/// spilling backend surfaces file I/O failures.  Reads take `&self` —
/// the spilling backend pages segments in behind a [`RefCell`], which is
/// sound because the engine drives every store from its scheduling
/// thread only (tasks carry copies of their inputs).
pub trait StateStore: fmt::Debug {
    /// Number of rows.
    fn rows(&self) -> usize;

    /// Row width in bits.
    fn width(&self) -> usize;

    /// Unpacks one row onto the end of `out`.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] if the backing file fails.
    fn read_into(&self, row: usize, out: &mut Vec<bool>) -> Result<(), StoreError>;

    /// Overwrites one row.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] if the backing file fails.
    fn write(&mut self, row: usize, bits: &[bool]) -> Result<(), StoreError>;

    /// The packed words of checkpoint segment `seg` (rows
    /// `seg · SEGMENT_ROWS ..` up to the next boundary or the end).
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] if the backing file fails.
    fn segment_words(&self, seg: usize) -> Result<Vec<u64>, StoreError>;

    /// Replaces checkpoint segment `seg` with `words` (the resume path).
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] on geometry mismatch or file failure.
    fn load_segment(&mut self, seg: usize, words: &[u64]) -> Result<(), StoreError>;

    /// Bytes currently held in memory by this store (packed words of
    /// resident segments; the whole store for the in-memory backend).
    fn resident_bytes(&self) -> usize;

    /// High-water mark of the backing spill file in bytes (0 for the
    /// in-memory backend).
    fn spill_file_bytes(&self) -> u64;
}

/// Unpacks one row.
fn read_row_into(
    words: &[u64],
    words_per_row: usize,
    row_in_slice: usize,
    width: usize,
    out: &mut Vec<bool>,
) {
    let base = row_in_slice * words_per_row;
    out.extend((0..width).map(|bit| (words[base + bit / 64] >> (bit % 64)) & 1 == 1));
}

/// Packs `bits` over one row.
fn write_row(
    words: &mut [u64],
    words_per_row: usize,
    row_in_slice: usize,
    width: usize,
    bits: &[bool],
) {
    debug_assert_eq!(bits.len(), width, "row width");
    let base = row_in_slice * words_per_row;
    words[base..base + words_per_row].fill(0);
    for (bit, &b) in bits.iter().enumerate() {
        if b {
            words[base + bit / 64] |= 1 << (bit % 64);
        }
    }
}

/// Number of checkpoint segments a store of `rows` rows has.
pub fn segment_count(rows: usize) -> usize {
    rows.div_ceil(SEGMENT_ROWS).max(1)
}

/// Rows in segment `seg` of a store with `rows` rows.
fn rows_in_segment(rows: usize, seg: usize) -> usize {
    let start = seg * SEGMENT_ROWS;
    rows.saturating_sub(start).min(SEGMENT_ROWS)
}

/// Packed size in bytes of a store of `rows` rows of `width` bits — the
/// figure the spill budget is compared against.
pub fn packed_bytes(rows: usize, width: usize) -> usize {
    rows * width.div_ceil(64) * 8
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

/// The flat in-memory packed layout (formerly `PackedRows` inside the
/// engine): one contiguous word vector, `⌈width/64⌉` words per row.
#[derive(Clone, Debug)]
pub struct MemStore {
    rows: usize,
    width: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl MemStore {
    /// Creates a zeroed store of `rows` rows of `width` bits each.
    pub fn new(rows: usize, width: usize) -> Self {
        let words_per_row = width.div_ceil(64);
        MemStore {
            rows,
            width,
            words_per_row,
            words: vec![0; rows * words_per_row],
        }
    }
}

impl StateStore for MemStore {
    fn rows(&self) -> usize {
        self.rows
    }

    fn width(&self) -> usize {
        self.width
    }

    fn read_into(&self, row: usize, out: &mut Vec<bool>) -> Result<(), StoreError> {
        read_row_into(&self.words, self.words_per_row, row, self.width, out);
        Ok(())
    }

    fn write(&mut self, row: usize, bits: &[bool]) -> Result<(), StoreError> {
        write_row(&mut self.words, self.words_per_row, row, self.width, bits);
        Ok(())
    }

    fn segment_words(&self, seg: usize) -> Result<Vec<u64>, StoreError> {
        let start = seg * SEGMENT_ROWS * self.words_per_row;
        let len = rows_in_segment(self.rows, seg) * self.words_per_row;
        Ok(self.words[start..start + len].to_vec())
    }

    fn load_segment(&mut self, seg: usize, words: &[u64]) -> Result<(), StoreError> {
        let start = seg * SEGMENT_ROWS * self.words_per_row;
        let len = rows_in_segment(self.rows, seg) * self.words_per_row;
        if words.len() != len {
            return Err(StoreError::Corrupt {
                context: format!(
                    "segment {seg} holds {} words, store geometry needs {len}",
                    words.len()
                ),
            });
        }
        self.words[start..start + len].copy_from_slice(words);
        Ok(())
    }

    fn resident_bytes(&self) -> usize {
        self.words.len() * 8
    }

    fn spill_file_bytes(&self) -> u64 {
        0
    }
}

// ---------------------------------------------------------------------------
// Spilling backend
// ---------------------------------------------------------------------------

/// One resident segment of a [`SpillStore`].
#[derive(Debug)]
struct Segment {
    words: Vec<u64>,
    dirty: bool,
    /// Tick of the most recent access — the eviction policy evicts the
    /// smallest (least recently used).
    last_used: u64,
}

/// The mutable state of a [`SpillStore`], behind a `RefCell` so reads
/// can page segments in through `&self`.
#[derive(Debug)]
struct SpillInner {
    rows: usize,
    width: usize,
    words_per_row: usize,
    /// Resident segments cap (≥ 1), derived from the byte budget.
    max_resident: usize,
    resident: BTreeMap<usize, Segment>,
    /// Monotonic access counter feeding `Segment::last_used`.
    tick: u64,
    /// Per-segment location in the log: `(offset, byte length)`.
    index: Vec<Option<(u64, u64)>>,
    file: File,
    path: PathBuf,
    file_len: u64,
    /// Bytes referenced by the current index.
    live_bytes: u64,
    /// Bytes superseded by re-appends, reclaimed by compaction.
    dead_bytes: u64,
    /// High-water mark of `file_len`.
    max_file_len: u64,
}

/// The spilling backend: packed rows paged between a bounded resident
/// set and a log-structured segment file.
#[derive(Debug)]
pub struct SpillStore {
    inner: RefCell<SpillInner>,
}

/// Compaction triggers when dead bytes exceed live bytes *and* this
/// floor, so tiny stores do not churn the file on every eviction.
const COMPACT_MIN_DEAD: u64 = 1 << 12;

impl SpillStore {
    /// Creates a zeroed spilling store whose resident set is bounded by
    /// `budget_bytes` (at least one segment stays resident), backed by a
    /// fresh log file at `path`.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] if the log file cannot be created.
    pub fn create(
        rows: usize,
        width: usize,
        budget_bytes: usize,
        path: PathBuf,
    ) -> Result<Self, StoreError> {
        let words_per_row = width.div_ceil(64);
        let segment_bytes = (SEGMENT_ROWS * words_per_row * 8).max(1);
        let max_resident = (budget_bytes / segment_bytes).max(1);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| io_err(format!("create spill log {}", path.display()), e))?;
        Ok(SpillStore {
            inner: RefCell::new(SpillInner {
                rows,
                width,
                words_per_row,
                max_resident,
                resident: BTreeMap::new(),
                tick: 0,
                index: vec![None; segment_count(rows)],
                file,
                path,
                file_len: 0,
                live_bytes: 0,
                dead_bytes: 0,
                max_file_len: 0,
            }),
        })
    }
}

impl SpillInner {
    /// Appends a segment's packed words to the log and points the index
    /// at the fresh copy.
    fn append_segment(&mut self, seg: usize, words: &[u64]) -> Result<(), StoreError> {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for &w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.file
            .seek(SeekFrom::Start(self.file_len))
            .and_then(|_| self.file.write_all(&bytes))
            .map_err(|e| io_err(format!("append spill segment {seg}"), e))?;
        if let Some((_, old_len)) = self.index[seg].take() {
            self.live_bytes -= old_len;
            self.dead_bytes += old_len;
        }
        self.index[seg] = Some((self.file_len, bytes.len() as u64));
        self.file_len += bytes.len() as u64;
        self.live_bytes += bytes.len() as u64;
        self.max_file_len = self.max_file_len.max(self.file_len);
        if self.dead_bytes > self.live_bytes && self.dead_bytes >= COMPACT_MIN_DEAD {
            self.compact()?;
        }
        Ok(())
    }

    /// Rewrites the log with only the live copy of every spilled
    /// segment and atomically replaces the file.
    fn compact(&mut self) -> Result<(), StoreError> {
        let compact_path = self.path.with_extension("compact");
        let mut new_file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&compact_path)
            .map_err(|e| {
                io_err(
                    format!("create compaction file {}", compact_path.display()),
                    e,
                )
            })?;
        let mut new_index = vec![None; self.index.len()];
        let mut offset = 0u64;
        for (seg, entry) in self.index.clone().into_iter().enumerate() {
            let Some((old_offset, len)) = entry else {
                continue;
            };
            let mut bytes = vec![0u8; len as usize];
            self.file
                .seek(SeekFrom::Start(old_offset))
                .and_then(|_| self.file.read_exact(&mut bytes))
                .map_err(|e| io_err(format!("compaction read of segment {seg}"), e))?;
            new_file
                .write_all(&bytes)
                .map_err(|e| io_err(format!("compaction write of segment {seg}"), e))?;
            new_index[seg] = Some((offset, len));
            offset += len;
        }
        new_file
            .flush()
            .map_err(|e| io_err("flush compaction file", e))?;
        std::fs::rename(&compact_path, &self.path).map_err(|e| {
            io_err(
                format!("swap compacted log into {}", self.path.display()),
                e,
            )
        })?;
        self.file = new_file;
        self.index = new_index;
        self.file_len = offset;
        self.live_bytes = offset;
        self.dead_bytes = 0;
        Ok(())
    }

    /// Makes `seg` resident (paging in from the log, or materialising
    /// zeros for never-spilled segments), evicting LRU segments past the
    /// budget, and returns a mutable handle to it.
    fn fetch(&mut self, seg: usize) -> Result<&mut Segment, StoreError> {
        if !self.resident.contains_key(&seg) {
            while self.resident.len() >= self.max_resident {
                let victim = self
                    .resident
                    .iter()
                    .min_by_key(|(_, segment)| segment.last_used)
                    .map(|(&index, _)| index)
                    .expect("resident set is non-empty past the cap");
                let evicted = self.resident.remove(&victim).expect("victim is resident");
                if evicted.dirty {
                    self.append_segment(victim, &evicted.words)?;
                }
            }
            let len = rows_in_segment(self.rows, seg) * self.words_per_row;
            let words = match self.index[seg] {
                Some((offset, byte_len)) => {
                    if byte_len as usize != len * 8 {
                        return Err(StoreError::Corrupt {
                            context: format!(
                                "spill log entry for segment {seg} holds {byte_len} bytes, \
                                 geometry needs {}",
                                len * 8
                            ),
                        });
                    }
                    let mut bytes = vec![0u8; byte_len as usize];
                    self.file
                        .seek(SeekFrom::Start(offset))
                        .and_then(|_| self.file.read_exact(&mut bytes))
                        .map_err(|e| io_err(format!("page in spill segment {seg}"), e))?;
                    bytes
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                        .collect()
                }
                None => vec![0u64; len],
            };
            self.resident.insert(
                seg,
                Segment {
                    words,
                    dirty: false,
                    last_used: 0,
                },
            );
        }
        self.tick += 1;
        let tick = self.tick;
        let segment = self
            .resident
            .get_mut(&seg)
            .expect("resident or just inserted");
        segment.last_used = tick;
        Ok(segment)
    }
}

impl StateStore for SpillStore {
    fn rows(&self) -> usize {
        self.inner.borrow().rows
    }

    fn width(&self) -> usize {
        self.inner.borrow().width
    }

    fn read_into(&self, row: usize, out: &mut Vec<bool>) -> Result<(), StoreError> {
        let mut inner = self.inner.borrow_mut();
        let (width, words_per_row) = (inner.width, inner.words_per_row);
        let segment = inner.fetch(row / SEGMENT_ROWS)?;
        read_row_into(
            &segment.words,
            words_per_row,
            row % SEGMENT_ROWS,
            width,
            out,
        );
        Ok(())
    }

    fn write(&mut self, row: usize, bits: &[bool]) -> Result<(), StoreError> {
        let mut inner = self.inner.borrow_mut();
        let (width, words_per_row) = (inner.width, inner.words_per_row);
        let segment = inner.fetch(row / SEGMENT_ROWS)?;
        write_row(
            &mut segment.words,
            words_per_row,
            row % SEGMENT_ROWS,
            width,
            bits,
        );
        segment.dirty = true;
        Ok(())
    }

    fn segment_words(&self, seg: usize) -> Result<Vec<u64>, StoreError> {
        let mut inner = self.inner.borrow_mut();
        Ok(inner.fetch(seg)?.words.clone())
    }

    fn load_segment(&mut self, seg: usize, words: &[u64]) -> Result<(), StoreError> {
        let mut inner = self.inner.borrow_mut();
        let len = rows_in_segment(inner.rows, seg) * inner.words_per_row;
        if words.len() != len {
            return Err(StoreError::Corrupt {
                context: format!(
                    "segment {seg} holds {} words, store geometry needs {len}",
                    words.len()
                ),
            });
        }
        let segment = inner.fetch(seg)?;
        segment.words.copy_from_slice(words);
        segment.dirty = true;
        Ok(())
    }

    fn resident_bytes(&self) -> usize {
        let inner = self.inner.borrow();
        inner
            .resident
            .values()
            .map(|segment| segment.words.len() * 8)
            .sum()
    }

    fn spill_file_bytes(&self) -> u64 {
        self.inner.borrow().max_file_len
    }
}

// ---------------------------------------------------------------------------
// Run-scoped spill directory
// ---------------------------------------------------------------------------

/// Distinguishes concurrent runs of one process in the same base
/// directory.
static RUN_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A run-scoped spill directory, removed — with everything in it — when
/// the guard drops.  The engine creates the guard *before* the stores,
/// so the directory outlives every open spill file and is removed on
/// every exit path, error or not.
#[derive(Debug)]
pub struct RunDirGuard {
    path: PathBuf,
}

impl RunDirGuard {
    /// Creates a fresh uniquely-named directory under `base` (the system
    /// temp directory when `None`), tagged with the run seed for
    /// debuggability.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] if the directory cannot be created.
    pub fn create(base: Option<&Path>, tag: u64) -> Result<RunDirGuard, StoreError> {
        let base = base
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        let unique = format!(
            "dstress-run-{tag:016x}-{}-{}",
            std::process::id(),
            RUN_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let path = base.join(unique);
        std::fs::create_dir_all(&path)
            .map_err(|e| io_err(format!("create spill directory {}", path.display()), e))?;
        Ok(RunDirGuard { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for RunDirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

// ---------------------------------------------------------------------------
// Checkpoint files
// ---------------------------------------------------------------------------

/// File name of the checkpoint whose manifest says "resume at `round`".
fn checkpoint_file_name(round: u64) -> String {
    format!("checkpoint-{round:08}.ckpt")
}

/// Parses a checkpoint file name back to its round.
fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("checkpoint-")?
        .strip_suffix(".ckpt")?
        .parse()
        .ok()
}

/// The round of the newest checkpoint in `dir`, if any.
///
/// # Errors
///
/// Returns a [`StoreError`] if the directory exists but cannot be read.
pub fn latest_checkpoint_round(dir: &Path) -> Result<Option<u64>, StoreError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(format!("read checkpoint dir {}", dir.display()), e)),
    };
    let mut latest = None;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read checkpoint dir entry", e))?;
        if let Some(round) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
            latest = latest.max(Some(round));
        }
    }
    Ok(latest)
}

/// Collects every checkpoint segment of `stores` (tagged with their
/// store ids) as `(manifest digests, records)` in store-major order.
///
/// # Errors
///
/// Returns a [`StoreError`] if a spilled segment cannot be paged in.
pub fn collect_segments(
    stores: &[(u8, &dyn StateStore)],
) -> Result<(Vec<SegmentDigest>, Vec<SegmentRecord>), StoreError> {
    let mut digests = Vec::new();
    let mut records = Vec::new();
    for &(id, store) in stores {
        for seg in 0..segment_count(store.rows()) {
            let words = store.segment_words(seg)?;
            digests.push(SegmentDigest {
                store: id,
                index: seg as u64,
                digest: digest64_words(&words),
            });
            records.push(SegmentRecord {
                store: id,
                index: seg as u64,
                words,
            });
        }
    }
    Ok((digests, records))
}

/// Writes one round-boundary checkpoint — the manifest followed by every
/// segment record, one file — atomically (temp file + rename), then
/// prunes older checkpoints.  Returns the checkpoint's size in bytes.
///
/// # Errors
///
/// Returns a [`StoreError`] on any filesystem failure.
pub fn write_checkpoint(
    dir: &Path,
    manifest: &CheckpointManifest,
    records: &[SegmentRecord],
) -> Result<u64, StoreError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| io_err(format!("create checkpoint dir {}", dir.display()), e))?;
    let mut bytes = manifest.encode();
    for record in records {
        record.encode_into(&mut bytes);
    }
    let final_path = dir.join(checkpoint_file_name(manifest.round));
    let tmp_path = final_path.with_extension("tmp");
    std::fs::write(&tmp_path, &bytes)
        .map_err(|e| io_err(format!("write checkpoint {}", tmp_path.display()), e))?;
    std::fs::rename(&tmp_path, &final_path)
        .map_err(|e| io_err(format!("publish checkpoint {}", final_path.display()), e))?;
    // Older checkpoints are now superseded; remove them so the directory
    // holds exactly one recovery point.
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Some(round) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
                if round < manifest.round {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
    Ok(bytes.len() as u64)
}

/// Loads the newest checkpoint in `dir`: decodes the manifest, decodes
/// exactly the segment records the manifest lists, and validates every
/// record against the manifest's digests (the records' own digests are
/// validated during decoding).
///
/// # Errors
///
/// Returns a [`StoreError`] if no checkpoint exists, the file cannot be
/// read, or validation fails.
pub fn load_latest_checkpoint(
    dir: &Path,
) -> Result<(CheckpointManifest, Vec<SegmentRecord>), StoreError> {
    let Some(round) = latest_checkpoint_round(dir)? else {
        return Err(StoreError::Corrupt {
            context: format!("no checkpoint found in {}", dir.display()),
        });
    };
    let path = dir.join(checkpoint_file_name(round));
    let bytes = std::fs::read(&path)
        .map_err(|e| io_err(format!("read checkpoint {}", path.display()), e))?;
    let mut buf = bytes.as_slice();
    let corrupt = |context: String| StoreError::Corrupt { context };
    let manifest = CheckpointManifest::decode(&mut buf)
        .map_err(|e| corrupt(format!("checkpoint manifest in {}: {e}", path.display())))?;
    let mut records = Vec::with_capacity(manifest.segments.len());
    for expected in &manifest.segments {
        let record = SegmentRecord::decode(&mut buf)
            .map_err(|e| corrupt(format!("checkpoint segment record: {e}")))?;
        if record.store != expected.store || record.index != expected.index {
            return Err(corrupt(format!(
                "checkpoint segment order mismatch: manifest lists store {} segment {}, \
                 file holds store {} segment {}",
                expected.store, expected.index, record.store, record.index
            )));
        }
        if digest64_words(&record.words) != expected.digest {
            return Err(corrupt(format!(
                "checkpoint segment digest mismatch for store {} segment {}",
                record.store, record.index
            )));
        }
        records.push(record);
    }
    if !buf.is_empty() {
        return Err(corrupt(format!(
            "checkpoint {} has {} trailing bytes",
            path.display(),
            buf.len()
        )));
    }
    Ok((manifest, records))
}

/// Restores a store from a checkpoint's records (those tagged with
/// `store_id`).
///
/// # Errors
///
/// Returns a [`StoreError`] if the records do not tile the store.
pub fn restore_store(
    store: &mut dyn StateStore,
    store_id: u8,
    records: &[SegmentRecord],
) -> Result<(), StoreError> {
    let mut loaded = 0usize;
    for record in records.iter().filter(|r| r.store == store_id) {
        store.load_segment(record.index as usize, &record.words)?;
        loaded += 1;
    }
    let expected = segment_count(store.rows());
    if loaded != expected {
        return Err(StoreError::Corrupt {
            context: format!(
                "checkpoint holds {loaded} segments for store {store_id}, geometry needs {expected}"
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_math::rng::{DetRng, Xoshiro256};

    fn random_rows(rows: usize, width: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = Xoshiro256::new(seed);
        (0..rows)
            .map(|_| (0..width).map(|_| rng.next_bool()).collect())
            .collect()
    }

    fn read_row(store: &dyn StateStore, row: usize) -> Vec<bool> {
        let mut out = Vec::new();
        store.read_into(row, &mut out).unwrap();
        out
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        assert_eq!(digest64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(digest64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(digest64_words(&[0x61]), digest64(&0x61u64.to_le_bytes()));
        assert_ne!(digest64_words(&[1, 2]), digest64_words(&[2, 1]));
    }

    #[test]
    fn mem_store_round_trips_rows() {
        let rows = random_rows(40, 70, 1);
        let mut store = MemStore::new(40, 70);
        for (i, bits) in rows.iter().enumerate() {
            store.write(i, bits).unwrap();
        }
        for (i, bits) in rows.iter().enumerate() {
            assert_eq!(&read_row(&store, i), bits);
        }
    }

    #[test]
    fn spill_store_matches_mem_store_under_a_tiny_budget() {
        // More than 4 segments of 1024 rows with room for only one
        // resident: every access pattern pages through the log.
        let guard = RunDirGuard::create(None, 0xA).unwrap();
        let rows = 4 * SEGMENT_ROWS + 100;
        let width = 12;
        let mut mem = MemStore::new(rows, width);
        let mut spill = SpillStore::create(rows, width, 1, guard.path().join("store.log")).unwrap();
        let data = random_rows(200, width, 2);
        let mut rng = Xoshiro256::new(3);
        // Scattered writes across all segments, then full verification.
        let positions: Vec<usize> = (0..200)
            .map(|_| rng.next_below(rows as u64) as usize)
            .collect();
        for (bits, &row) in data.iter().zip(&positions) {
            mem.write(row, bits).unwrap();
            spill.write(row, bits).unwrap();
        }
        for row in 0..rows {
            assert_eq!(read_row(&mem, row), read_row(&spill, row), "row {row}");
        }
        assert!(spill.spill_file_bytes() > 0, "a 1-byte budget must spill");
        assert!(spill.resident_bytes() <= SEGMENT_ROWS * 8);
        assert_eq!(mem.spill_file_bytes(), 0);
    }

    #[test]
    fn spill_store_compacts_dead_bytes() {
        let guard = RunDirGuard::create(None, 0xB).unwrap();
        let rows = 2 * SEGMENT_ROWS;
        let mut spill = SpillStore::create(rows, 64, 1, guard.path().join("store.log")).unwrap();
        let ones = vec![true; 64];
        // Alternate between the two segments so each write evicts (and
        // re-appends) the other; dead bytes pile up until compaction.
        for pass in 0..20 {
            for seg in 0..2 {
                let row = seg * SEGMENT_ROWS + pass;
                spill.write(row, &ones).unwrap();
            }
        }
        let inner = spill.inner.borrow();
        // Without compaction the log would hold ~40 segment copies
        // (~20 KiB); compaction keeps it at the two live segments plus
        // at most the dead-byte floor of uncompacted churn.
        assert!(
            inner.file_len
                <= 2 * (SEGMENT_ROWS as u64) * 8 + COMPACT_MIN_DEAD + (SEGMENT_ROWS as u64) * 8,
            "log was not compacted: {} bytes",
            inner.file_len
        );
        assert!(inner.max_file_len > inner.file_len);
        drop(inner);
        for pass in 0..20 {
            for seg in 0..2 {
                assert_eq!(read_row(&spill, seg * SEGMENT_ROWS + pass), ones);
            }
        }
    }

    #[test]
    fn segments_move_between_backends() {
        let guard = RunDirGuard::create(None, 0xC).unwrap();
        let rows = SEGMENT_ROWS + 17;
        let width = 9;
        let data = random_rows(rows, width, 4);
        let mut mem = MemStore::new(rows, width);
        for (i, bits) in data.iter().enumerate() {
            mem.write(i, bits).unwrap();
        }
        let mut spill = SpillStore::create(rows, width, 1, guard.path().join("store.log")).unwrap();
        for seg in 0..segment_count(rows) {
            let words = mem.segment_words(seg).unwrap();
            spill.load_segment(seg, &words).unwrap();
        }
        for (i, bits) in data.iter().enumerate() {
            assert_eq!(&read_row(&spill, i), bits);
        }
        // And back: geometry mismatches are rejected, not mangled.
        let mut small = MemStore::new(10, width);
        assert!(matches!(
            small.load_segment(0, &mem.segment_words(0).unwrap()),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn run_dir_guard_removes_directory_with_contents() {
        let guard = RunDirGuard::create(None, 0xD).unwrap();
        let path = guard.path().to_path_buf();
        std::fs::write(path.join("orphan.log"), b"segments").unwrap();
        assert!(path.exists());
        drop(guard);
        assert!(!path.exists(), "guard must remove the run directory");
    }

    #[test]
    fn checkpoint_files_round_trip_and_validate() {
        let guard = RunDirGuard::create(None, 0xE).unwrap();
        let dir = guard.path().join("ckpt");
        assert_eq!(latest_checkpoint_round(&dir).unwrap(), None);

        let mut state = MemStore::new(300, 8);
        let data = random_rows(300, 8, 5);
        for (i, bits) in data.iter().enumerate() {
            state.write(i, bits).unwrap();
        }
        let (digests, records) = collect_segments(&[(0, &state)]).unwrap();
        let manifest = CheckpointManifest {
            round: 2,
            iterations: 4,
            fingerprint: 0xF00D,
            rng_state: [1, 2, 3, 4],
            initialization: Default::default(),
            computation: Default::default(),
            communication: Default::default(),
            traffic: Vec::new(),
            segments: digests,
        };
        write_checkpoint(&dir, &manifest, &records).unwrap();
        assert_eq!(latest_checkpoint_round(&dir).unwrap(), Some(2));

        let (loaded_manifest, loaded_records) = load_latest_checkpoint(&dir).unwrap();
        assert_eq!(loaded_manifest, manifest);
        assert_eq!(loaded_records, records);

        let mut restored = MemStore::new(300, 8);
        restore_store(&mut restored, 0, &loaded_records).unwrap();
        for (i, bits) in data.iter().enumerate() {
            assert_eq!(&read_row(&restored, i), bits);
        }

        // A newer checkpoint supersedes (and prunes) the old one.
        let mut newer = manifest.clone();
        newer.round = 3;
        write_checkpoint(&dir, &newer, &records).unwrap();
        assert_eq!(latest_checkpoint_round(&dir).unwrap(), Some(3));
        assert!(!dir.join(checkpoint_file_name(2)).exists());

        // Flipping one payload byte is caught by the digest validation.
        let path = dir.join(checkpoint_file_name(3));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 5;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_latest_checkpoint(&dir),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
