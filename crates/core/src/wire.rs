//! Wire encoding of the engine's control messages.
//!
//! The runtime's two non-protocol message flows — the initialization
//! step's share distribution and the aggregation step's re-sharing into
//! the aggregation block — route their payloads through these encodings,
//! so the bytes charged for them are measured from real bit-packed
//! buffers rather than assumed.
//!
//! ## Layouts
//!
//! | message | layout |
//! |---|---|
//! | `InitShare` | `0x00` · uvarint(state bits) · uvarint(inbox bits) · state-plane · inbox-plane |
//! | `AggShare`  | `0x01` · uvarint(bits) · bit-plane |
//!
//! The round-boundary checkpoint formats (written by the state-store
//! layer, [`crate::store`]) also live here:
//!
//! | record | layout |
//! |---|---|
//! | `CheckpointManifest` | `0x4D` · u32 version · uvarint(round) · uvarint(iterations) · u64 fingerprint · 4×u64 RNG state · 3×phase costs · traffic entries · segment digests |
//! | `SegmentRecord` | `0x53` · u8 store · uvarint(index) · uvarint(words) · words as u64 LE · u64 FNV-1a digest |
//!
//! Phase costs are the ten [`OperationCounts`] uvarints followed by the
//! wall seconds as an `f64` bit pattern (u64 LE); segment digests are
//! `u8 store · uvarint(index) · u64 digest` each, uvarint-counted.  A
//! `SegmentRecord` whose digest does not match its words is rejected at
//! decode time, so a torn checkpoint write cannot resume silently.
//!
//! Bit planes pack LSB-first with zero padding (see
//! [`dstress_net::wire`]); an `InitShare` therefore costs
//! `⌈state/8⌉ + ⌈D·L/8⌉` bytes plus a few header bytes — the analytical
//! model's `⌈(state + D·L)/8⌉` figure plus at most one byte of padding
//! per plane and the header.

use crate::engine::PhaseCosts;
use crate::exec::{BlockStepOutcome, BlockStepTask, TransferOutcome, TransferTask};
use crate::store::digest64_words;
use dstress_net::cost::OperationCounts;
use dstress_net::traffic::{NodeId, NodeTraffic};
use dstress_net::wire::{self, Wire, WireError};

/// Message tags.
const TAG_INIT_SHARE: u8 = 0x00;
const TAG_AGG_SHARE: u8 = 0x01;
/// Checkpoint record tags (`'M'` and `'S'`).
const TAG_MANIFEST: u8 = 0x4D;
const TAG_SEGMENT: u8 = 0x53;
/// Layout version of the checkpoint manifest.
const CHECKPOINT_VERSION: u32 = 1;

/// A control message of the DStress engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineMsg {
    /// Initialization: one block member's XOR share of a vertex's initial
    /// state plus its `D` no-op inbox message slots.
    InitShare {
        /// The member's share of the state bits.
        state: Vec<bool>,
        /// The member's share of all `D · L` inbox bits, slot-major.
        inbox: Vec<bool>,
    },
    /// Aggregation: one block member's sub-share of a vertex state,
    /// destined for one aggregation-block member.
    AggShare {
        /// The sub-share bits.
        bits: Vec<bool>,
    },
}

impl Wire for EngineMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            EngineMsg::InitShare { state, inbox } => {
                wire::put_u8(out, TAG_INIT_SHARE);
                wire::put_uvarint(out, state.len() as u64);
                wire::put_uvarint(out, inbox.len() as u64);
                wire::put_bits(out, state);
                wire::put_bits(out, inbox);
            }
            EngineMsg::AggShare { bits } => {
                wire::put_u8(out, TAG_AGG_SHARE);
                wire::put_uvarint(out, bits.len() as u64);
                wire::put_bits(out, bits);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match wire::get_u8(buf)? {
            TAG_INIT_SHARE => {
                let state_len = wire::get_uvarint(buf)? as usize;
                let inbox_len = wire::get_uvarint(buf)? as usize;
                Ok(EngineMsg::InitShare {
                    state: wire::get_bits(buf, state_len)?,
                    inbox: wire::get_bits(buf, inbox_len)?,
                })
            }
            TAG_AGG_SHARE => {
                let len = wire::get_uvarint(buf)? as usize;
                Ok(EngineMsg::AggShare {
                    bits: wire::get_bits(buf, len)?,
                })
            }
            tag => Err(WireError::BadTag {
                tag,
                what: "EngineMsg",
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Executor task and outcome encodings
// ---------------------------------------------------------------------------
//
// These are the payloads the master/worker deployment layer ships inside
// its framed messages.  Layout building blocks: uvarints for all counts
// and indices, `u64` little-endian for the (uniformly random) task seeds,
// and LSB-first bit planes for share vectors.

/// Writes a list of bit vectors: uvarint count, then per vector a uvarint
/// bit length and the packed plane.
fn put_bit_vecs(out: &mut Vec<u8>, vecs: &[Vec<bool>]) {
    wire::put_uvarint(out, vecs.len() as u64);
    for bits in vecs {
        wire::put_uvarint(out, bits.len() as u64);
        wire::put_bits(out, bits);
    }
}

/// Reads a list written by [`put_bit_vecs`].
fn get_bit_vecs(buf: &mut &[u8]) -> Result<Vec<Vec<bool>>, WireError> {
    let count = wire::get_uvarint(buf)? as usize;
    let mut vecs = Vec::new();
    for _ in 0..count {
        let len = wire::get_uvarint(buf)? as usize;
        vecs.push(wire::get_bits(buf, len)?);
    }
    Ok(vecs)
}

/// Writes a node-id list: uvarint count, then one uvarint per id.
fn put_node_ids(out: &mut Vec<u8>, ids: &[NodeId]) {
    wire::put_uvarint(out, ids.len() as u64);
    for id in ids {
        id.encode_into(out);
    }
}

/// Reads a list written by [`put_node_ids`].
fn get_node_ids(buf: &mut &[u8]) -> Result<Vec<NodeId>, WireError> {
    let count = wire::get_uvarint(buf)? as usize;
    let mut ids = Vec::new();
    for _ in 0..count {
        ids.push(NodeId::decode(buf)?);
    }
    Ok(ids)
}

/// Writes per-node traffic entries: uvarint count, then id · counters.
fn put_traffic_entries(out: &mut Vec<u8>, entries: &[(NodeId, NodeTraffic)]) {
    wire::put_uvarint(out, entries.len() as u64);
    for (id, t) in entries {
        id.encode_into(out);
        t.encode_into(out);
    }
}

/// Reads a list written by [`put_traffic_entries`].
fn get_traffic_entries(buf: &mut &[u8]) -> Result<Vec<(NodeId, NodeTraffic)>, WireError> {
    let count = wire::get_uvarint(buf)? as usize;
    let mut entries = Vec::new();
    for _ in 0..count {
        entries.push((NodeId::decode(buf)?, NodeTraffic::decode(buf)?));
    }
    Ok(entries)
}

impl Wire for BlockStepTask {
    fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_uvarint(out, self.vertex);
        wire::put_u64_le(out, self.seed);
        put_node_ids(out, &self.members);
        wire::put_uvarint(out, self.out_slots);
        put_bit_vecs(out, &self.input_shares);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(BlockStepTask {
            vertex: wire::get_uvarint(buf)?,
            seed: wire::get_u64_le(buf)?,
            members: get_node_ids(buf)?,
            out_slots: wire::get_uvarint(buf)?,
            input_shares: get_bit_vecs(buf)?,
        })
    }
}

impl Wire for BlockStepOutcome {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_bit_vecs(out, &self.new_state);
        wire::put_uvarint(out, self.outgoing.len() as u64);
        for slot in &self.outgoing {
            put_bit_vecs(out, slot);
        }
        self.counts.encode_into(out);
        put_traffic_entries(out, &self.traffic);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let new_state = get_bit_vecs(buf)?;
        let slots = wire::get_uvarint(buf)? as usize;
        let mut outgoing = Vec::new();
        for _ in 0..slots {
            outgoing.push(get_bit_vecs(buf)?);
        }
        Ok(BlockStepOutcome {
            new_state,
            outgoing,
            counts: OperationCounts::decode(buf)?,
            traffic: get_traffic_entries(buf)?,
        })
    }
}

impl Wire for TransferTask {
    fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_uvarint(out, self.edge_index);
        wire::put_u64_le(out, self.seed);
        wire::put_uvarint(out, self.from);
        wire::put_uvarint(out, self.to);
        wire::put_uvarint(out, self.in_slot);
        put_node_ids(out, &self.sender_members);
        put_node_ids(out, &self.receiver_members);
        put_bit_vecs(out, &self.shares);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(TransferTask {
            edge_index: wire::get_uvarint(buf)?,
            seed: wire::get_u64_le(buf)?,
            from: wire::get_uvarint(buf)?,
            to: wire::get_uvarint(buf)?,
            in_slot: wire::get_uvarint(buf)?,
            sender_members: get_node_ids(buf)?,
            receiver_members: get_node_ids(buf)?,
            shares: get_bit_vecs(buf)?,
        })
    }
}

impl Wire for TransferOutcome {
    fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_uvarint(out, self.to);
        wire::put_uvarint(out, self.in_slot);
        put_bit_vecs(out, &self.receiver_shares);
        self.counts.encode_into(out);
        put_traffic_entries(out, &self.traffic);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(TransferOutcome {
            to: wire::get_uvarint(buf)?,
            in_slot: wire::get_uvarint(buf)?,
            receiver_shares: get_bit_vecs(buf)?,
            counts: OperationCounts::decode(buf)?,
            traffic: get_traffic_entries(buf)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Checkpoint encodings
// ---------------------------------------------------------------------------

impl Wire for PhaseCosts {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.counts.encode_into(out);
        wire::put_u64_le(out, self.wall_seconds.to_bits());
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(PhaseCosts {
            counts: OperationCounts::decode(buf)?,
            wall_seconds: f64::from_bits(wire::get_u64_le(buf)?),
        })
    }
}

/// The manifest's summary of one checkpoint segment: which store it
/// belongs to, its index, and the FNV-1a digest of its packed words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentDigest {
    /// Store id (0 = vertex state, 1 = the live inbox).
    pub store: u8,
    /// Segment index within the store.
    pub index: u64,
    /// [`digest64_words`] of the segment's packed words.
    pub digest: u64,
}

/// A round-boundary checkpoint manifest: everything the engine needs —
/// besides the packed segments that follow it in the checkpoint file —
/// to resume a run from the top of round `round` and reach a
/// bit-identical final release.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointManifest {
    /// The round the resumed run continues *from* (the next to execute).
    pub round: u64,
    /// Total iterations of the checkpointed program, as a consistency
    /// check against the resuming configuration.
    pub iterations: u64,
    /// Digest of the run's shape (graph geometry, widths, seed), so a
    /// checkpoint cannot be resumed against a different run.
    pub fingerprint: u64,
    /// The engine RNG's 256-bit position at the round boundary.
    pub rng_state: [u64; 4],
    /// Accumulated initialization-phase costs.
    pub initialization: PhaseCosts,
    /// Accumulated computation-phase costs.
    pub computation: PhaseCosts,
    /// Accumulated communication-phase costs.
    pub communication: PhaseCosts,
    /// Per-node traffic snapshot, sorted by node id.
    pub traffic: Vec<(NodeId, NodeTraffic)>,
    /// Digests of every segment record that follows, in file order.
    pub segments: Vec<SegmentDigest>,
}

impl Wire for CheckpointManifest {
    fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_u8(out, TAG_MANIFEST);
        wire::put_u32_le(out, CHECKPOINT_VERSION);
        wire::put_uvarint(out, self.round);
        wire::put_uvarint(out, self.iterations);
        wire::put_u64_le(out, self.fingerprint);
        for word in self.rng_state {
            wire::put_u64_le(out, word);
        }
        self.initialization.encode_into(out);
        self.computation.encode_into(out);
        self.communication.encode_into(out);
        put_traffic_entries(out, &self.traffic);
        wire::put_uvarint(out, self.segments.len() as u64);
        for segment in &self.segments {
            wire::put_u8(out, segment.store);
            wire::put_uvarint(out, segment.index);
            wire::put_u64_le(out, segment.digest);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match wire::get_u8(buf)? {
            TAG_MANIFEST => {}
            tag => {
                return Err(WireError::BadTag {
                    tag,
                    what: "CheckpointManifest",
                })
            }
        }
        if wire::get_u32_le(buf)? != CHECKPOINT_VERSION {
            return Err(WireError::Invalid {
                what: "unsupported checkpoint version",
            });
        }
        let round = wire::get_uvarint(buf)?;
        let iterations = wire::get_uvarint(buf)?;
        let fingerprint = wire::get_u64_le(buf)?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = wire::get_u64_le(buf)?;
        }
        let initialization = PhaseCosts::decode(buf)?;
        let computation = PhaseCosts::decode(buf)?;
        let communication = PhaseCosts::decode(buf)?;
        let traffic = get_traffic_entries(buf)?;
        let count = wire::get_uvarint(buf)? as usize;
        let mut segments = Vec::new();
        for _ in 0..count {
            segments.push(SegmentDigest {
                store: wire::get_u8(buf)?,
                index: wire::get_uvarint(buf)?,
                digest: wire::get_u64_le(buf)?,
            });
        }
        Ok(CheckpointManifest {
            round,
            iterations,
            fingerprint,
            rng_state,
            initialization,
            computation,
            communication,
            traffic,
            segments,
        })
    }
}

/// One checkpointed store segment: its packed words, tagged with the
/// store id and segment index and sealed with a digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentRecord {
    /// Store id (0 = vertex state, 1 = the live inbox).
    pub store: u8,
    /// Segment index within the store.
    pub index: u64,
    /// The segment's packed words.
    pub words: Vec<u64>,
}

impl Wire for SegmentRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_u8(out, TAG_SEGMENT);
        wire::put_u8(out, self.store);
        wire::put_uvarint(out, self.index);
        wire::put_uvarint(out, self.words.len() as u64);
        for &word in &self.words {
            wire::put_u64_le(out, word);
        }
        wire::put_u64_le(out, digest64_words(&self.words));
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match wire::get_u8(buf)? {
            TAG_SEGMENT => {}
            tag => {
                return Err(WireError::BadTag {
                    tag,
                    what: "SegmentRecord",
                })
            }
        }
        let store = wire::get_u8(buf)?;
        let index = wire::get_uvarint(buf)?;
        let count = wire::get_uvarint(buf)? as usize;
        let mut words = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            words.push(wire::get_u64_le(buf)?);
        }
        if wire::get_u64_le(buf)? != digest64_words(&words) {
            return Err(WireError::Invalid {
                what: "segment digest mismatch",
            });
        }
        Ok(SegmentRecord {
            store,
            index,
            words,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_net::wire::hex;
    use proptest::prelude::*;

    #[test]
    fn both_variants_round_trip() {
        let init = EngineMsg::InitShare {
            state: vec![true, false, true],
            inbox: vec![false; 10],
        };
        assert_eq!(EngineMsg::decode_exact(&init.encode()).unwrap(), init);
        let agg = EngineMsg::AggShare {
            bits: vec![true; 9],
        };
        assert_eq!(EngineMsg::decode_exact(&agg.encode()).unwrap(), agg);
    }

    #[test]
    fn golden_encodings() {
        let init = EngineMsg::InitShare {
            state: vec![true, false, true],
            inbox: vec![true, true, false, false, true, false, false, false, true],
        };
        // tag 00 · state bits 03 · inbox bits 09 · state plane (1,0,1)=05 ·
        // inbox planes 0b10011 = 13, then bit 8 set = 01
        assert_eq!(hex(&init.encode()), "000309051301");
        let agg = EngineMsg::AggShare {
            bits: vec![false, true],
        };
        // tag 01 · bits 02 · plane (0,1) = 02
        assert_eq!(hex(&agg.encode()), "010202");
    }

    #[test]
    fn truncation_trailing_and_bad_tags_error_not_panic() {
        for msg in [
            EngineMsg::InitShare {
                state: vec![true; 12],
                inbox: vec![false; 24],
            },
            EngineMsg::AggShare {
                bits: vec![true, false, true],
            },
        ] {
            let encoded = msg.encode();
            for cut in 0..encoded.len() {
                assert!(EngineMsg::decode_exact(&encoded[..cut]).is_err());
            }
            let mut trailing = encoded;
            trailing.push(0xFF);
            assert!(EngineMsg::decode_exact(&trailing).is_err());
        }
        assert!(matches!(
            EngineMsg::decode_exact(&[0x05]),
            Err(WireError::BadTag { .. })
        ));
        // Dirty padding bits in the plane are rejected.
        assert!(matches!(
            EngineMsg::decode_exact(&[TAG_AGG_SHARE, 0x02, 0xFF]),
            Err(WireError::Invalid { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_engine_messages_round_trip(
            state in proptest::collection::vec(any::<bool>(), 0..64),
            inbox in proptest::collection::vec(any::<bool>(), 0..128),
        ) {
            let init = EngineMsg::InitShare { state: state.clone(), inbox };
            prop_assert_eq!(EngineMsg::decode_exact(&init.encode()).unwrap(), init);
            let agg = EngineMsg::AggShare { bits: state };
            prop_assert_eq!(EngineMsg::decode_exact(&agg.encode()).unwrap(), agg);
        }
    }

    fn sample_block_step_task() -> BlockStepTask {
        BlockStepTask {
            vertex: 2,
            seed: 0x0102_0304_0506_0708,
            members: vec![NodeId(2), NodeId(5)],
            out_slots: 1,
            input_shares: vec![vec![true, false], vec![false, true]],
        }
    }

    fn sample_transfer_task() -> TransferTask {
        TransferTask {
            edge_index: 7,
            seed: 0x11,
            from: 0,
            to: 1,
            in_slot: 0,
            sender_members: vec![NodeId(0), NodeId(2)],
            receiver_members: vec![NodeId(1), NodeId(3)],
            shares: vec![vec![true], vec![true]],
        }
    }

    #[test]
    fn executor_task_golden_encodings() {
        // vertex 02 · seed LE · ids [02 05] · slots 01 · 2 planes of 2 bits
        assert_eq!(
            hex(&sample_block_step_task().encode()),
            "020807060504030201020205010202010202"
        );
        // edge 07 · seed LE · from 00 · to 01 · slot 00 · senders [00 02] ·
        // receivers [01 03] · 2 planes of 1 bit
        assert_eq!(
            hex(&sample_transfer_task().encode()),
            "0711000000000000000001000200020201030201010101"
        );
    }

    #[test]
    fn executor_outcome_golden_encodings() {
        let step = BlockStepOutcome {
            new_state: vec![vec![true], vec![false]],
            outgoing: vec![vec![vec![true, true], vec![false, false]]],
            counts: OperationCounts {
                and_gates: 1,
                rounds: 2,
                ..Default::default()
            },
            traffic: vec![(
                NodeId(1),
                NodeTraffic {
                    bytes_sent: 3,
                    ..Default::default()
                },
            )],
        };
        // states · 1 slot of 2 planes · 10 count uvarints · 1 entry
        assert_eq!(
            hex(&step.encode()),
            "0201010100010202030200000000000001000000020101030000000000"
        );
        let transfer = TransferOutcome {
            to: 1,
            in_slot: 0,
            receiver_shares: vec![vec![false]],
            counts: OperationCounts::default(),
            traffic: Vec::new(),
        };
        assert_eq!(hex(&transfer.encode()), "01000101000000000000000000000000");
    }

    #[test]
    fn executor_messages_reject_truncation_and_trailing_bytes() {
        let task = sample_block_step_task().encode();
        for cut in 0..task.len() {
            assert!(BlockStepTask::decode_exact(&task[..cut]).is_err());
        }
        let mut trailing = task;
        trailing.push(0x00);
        assert!(BlockStepTask::decode_exact(&trailing).is_err());

        let transfer = sample_transfer_task().encode();
        for cut in 0..transfer.len() {
            assert!(TransferTask::decode_exact(&transfer[..cut]).is_err());
        }
        let mut trailing = transfer;
        trailing.push(0x00);
        assert!(TransferTask::decode_exact(&trailing).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_executor_tasks_round_trip(
            vertex in any::<u64>(),
            seed in any::<u64>(),
            members in proptest::collection::vec(0usize..1000, 1..6),
            shares in proptest::collection::vec(
                proptest::collection::vec(any::<bool>(), 0..48), 0..6),
        ) {
            let task = BlockStepTask {
                vertex,
                seed,
                members: members.iter().copied().map(NodeId).collect(),
                out_slots: shares.len() as u64,
                input_shares: shares.clone(),
            };
            prop_assert_eq!(BlockStepTask::decode_exact(&task.encode()).unwrap(), task);
            let transfer = TransferTask {
                edge_index: vertex,
                seed,
                from: vertex / 2,
                to: vertex / 3,
                in_slot: vertex % 7,
                sender_members: members.iter().copied().map(NodeId).collect(),
                receiver_members: members.iter().copied().map(|m| NodeId(m + 1)).collect(),
                shares: shares.clone(),
            };
            prop_assert_eq!(TransferTask::decode_exact(&transfer.encode()).unwrap(), transfer);
            let outcome = BlockStepOutcome {
                new_state: shares.clone(),
                outgoing: vec![shares.clone(), shares.clone()],
                counts: OperationCounts { and_gates: vertex, ..Default::default() },
                traffic: members
                    .iter()
                    .map(|&m| (NodeId(m), NodeTraffic { bytes_sent: seed, ..Default::default() }))
                    .collect(),
            };
            prop_assert_eq!(
                BlockStepOutcome::decode_exact(&outcome.encode()).unwrap(),
                outcome
            );
            let delivered = TransferOutcome {
                to: vertex,
                in_slot: vertex % 5,
                receiver_shares: shares,
                counts: OperationCounts::default(),
                traffic: Vec::new(),
            };
            prop_assert_eq!(
                TransferOutcome::decode_exact(&delivered.encode()).unwrap(),
                delivered
            );
        }
    }

    fn sample_manifest() -> CheckpointManifest {
        CheckpointManifest {
            round: 1,
            iterations: 3,
            fingerprint: 0xF00D,
            rng_state: [1, 2, 3, 4],
            initialization: PhaseCosts::default(),
            computation: PhaseCosts::default(),
            communication: PhaseCosts::default(),
            traffic: vec![(
                NodeId(1),
                NodeTraffic {
                    bytes_sent: 3,
                    ..Default::default()
                },
            )],
            segments: vec![SegmentDigest {
                store: 0,
                index: 2,
                digest: 0x0102_0304_0506_0708,
            }],
        }
    }

    #[test]
    fn checkpoint_manifest_golden_encoding() {
        // tag 4d · version 1 · round 01 · iterations 03 · fingerprint ·
        // rng [1,2,3,4] · three zero phase-cost blocks (10 uvarints +
        // f64 bits) · 1 traffic entry · 1 segment digest
        let zero_costs = "000000000000000000000000000000000000";
        let expected = [
            "4d",
            "01000000",
            "01",
            "03",
            "0df0000000000000",
            "0100000000000000",
            "0200000000000000",
            "0300000000000000",
            "0400000000000000",
            zero_costs,
            zero_costs,
            zero_costs,
            "01",
            "01",
            "030000000000",
            "01",
            "00",
            "02",
            "0807060504030201",
        ]
        .concat();
        let manifest = sample_manifest();
        assert_eq!(hex(&manifest.encode()), expected);
        assert_eq!(
            CheckpointManifest::decode_exact(&manifest.encode()).unwrap(),
            manifest
        );
    }

    #[test]
    fn segment_record_golden_encoding() {
        let record = SegmentRecord {
            store: 1,
            index: 2,
            words: vec![0x0B],
        };
        // tag 53 · store 01 · index 02 · word count 01 · word LE · digest
        let expected = format!(
            "53010201{}{}",
            hex(&0x0Bu64.to_le_bytes()),
            hex(&digest64_words(&[0x0B]).to_le_bytes())
        );
        assert_eq!(hex(&record.encode()), expected);
        assert_eq!(
            SegmentRecord::decode_exact(&record.encode()).unwrap(),
            record
        );
    }

    #[test]
    fn checkpoint_records_reject_truncation_trailing_and_corruption() {
        let manifest = sample_manifest().encode();
        for cut in 0..manifest.len() {
            assert!(CheckpointManifest::decode_exact(&manifest[..cut]).is_err());
        }
        let mut trailing = manifest.clone();
        trailing.push(0x00);
        assert!(CheckpointManifest::decode_exact(&trailing).is_err());
        assert!(matches!(
            CheckpointManifest::decode_exact(&[0x7F]),
            Err(WireError::BadTag { .. })
        ));
        // An unknown version is rejected, not misinterpreted.
        let mut wrong_version = manifest;
        wrong_version[1] = 0x09;
        assert!(matches!(
            CheckpointManifest::decode_exact(&wrong_version),
            Err(WireError::Invalid { .. })
        ));

        let record = SegmentRecord {
            store: 0,
            index: 1,
            words: vec![0xAA, 0xBB, 0xCC],
        }
        .encode();
        for cut in 0..record.len() {
            assert!(SegmentRecord::decode_exact(&record[..cut]).is_err());
        }
        let mut trailing = record.clone();
        trailing.push(0x00);
        assert!(SegmentRecord::decode_exact(&trailing).is_err());
        // Any flipped payload byte fails the digest check.
        let mut corrupted = record;
        corrupted[5] ^= 0x01;
        assert!(matches!(
            SegmentRecord::decode_exact(&corrupted),
            Err(WireError::Invalid {
                what: "segment digest mismatch"
            })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_checkpoint_records_round_trip(
            round in any::<u64>(),
            rng0 in any::<u64>(),
            rng1 in any::<u64>(),
            wall in any::<u32>(),
            nodes in proptest::collection::vec(0usize..5000, 0..5),
            words in proptest::collection::vec(any::<u64>(), 0..64),
        ) {
            let rng_state = [rng0, rng1, rng0 ^ rng1, rng0.wrapping_add(rng1)];
            let manifest = CheckpointManifest {
                round,
                iterations: round / 2,
                fingerprint: rng_state[0],
                rng_state,
                initialization: PhaseCosts {
                    counts: OperationCounts { and_gates: round, ..Default::default() },
                    wall_seconds: f64::from(wall) * 0.125,
                },
                computation: PhaseCosts::default(),
                communication: PhaseCosts::default(),
                traffic: nodes
                    .iter()
                    .map(|&n| (NodeId(n), NodeTraffic { wire_bytes_sent: round, ..Default::default() }))
                    .collect(),
                segments: words
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| SegmentDigest { store: (i % 2) as u8, index: i as u64, digest: w })
                    .collect(),
            };
            prop_assert_eq!(
                CheckpointManifest::decode_exact(&manifest.encode()).unwrap(),
                manifest
            );
            let record = SegmentRecord { store: 1, index: round, words };
            prop_assert_eq!(SegmentRecord::decode_exact(&record.encode()).unwrap(), record);
        }
    }
}
