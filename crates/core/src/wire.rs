//! Wire encoding of the engine's control messages.
//!
//! The runtime's two non-protocol message flows — the initialization
//! step's share distribution and the aggregation step's re-sharing into
//! the aggregation block — route their payloads through these encodings,
//! so the bytes charged for them are measured from real bit-packed
//! buffers rather than assumed.
//!
//! ## Layouts
//!
//! | message | layout |
//! |---|---|
//! | `InitShare` | `0x00` · uvarint(state bits) · uvarint(inbox bits) · state-plane · inbox-plane |
//! | `AggShare`  | `0x01` · uvarint(bits) · bit-plane |
//!
//! Bit planes pack LSB-first with zero padding (see
//! [`dstress_net::wire`]); an `InitShare` therefore costs
//! `⌈state/8⌉ + ⌈D·L/8⌉` bytes plus a few header bytes — the analytical
//! model's `⌈(state + D·L)/8⌉` figure plus at most one byte of padding
//! per plane and the header.

use dstress_net::wire::{self, Wire, WireError};

/// Message tags.
const TAG_INIT_SHARE: u8 = 0x00;
const TAG_AGG_SHARE: u8 = 0x01;

/// A control message of the DStress engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineMsg {
    /// Initialization: one block member's XOR share of a vertex's initial
    /// state plus its `D` no-op inbox message slots.
    InitShare {
        /// The member's share of the state bits.
        state: Vec<bool>,
        /// The member's share of all `D · L` inbox bits, slot-major.
        inbox: Vec<bool>,
    },
    /// Aggregation: one block member's sub-share of a vertex state,
    /// destined for one aggregation-block member.
    AggShare {
        /// The sub-share bits.
        bits: Vec<bool>,
    },
}

impl Wire for EngineMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            EngineMsg::InitShare { state, inbox } => {
                wire::put_u8(out, TAG_INIT_SHARE);
                wire::put_uvarint(out, state.len() as u64);
                wire::put_uvarint(out, inbox.len() as u64);
                wire::put_bits(out, state);
                wire::put_bits(out, inbox);
            }
            EngineMsg::AggShare { bits } => {
                wire::put_u8(out, TAG_AGG_SHARE);
                wire::put_uvarint(out, bits.len() as u64);
                wire::put_bits(out, bits);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match wire::get_u8(buf)? {
            TAG_INIT_SHARE => {
                let state_len = wire::get_uvarint(buf)? as usize;
                let inbox_len = wire::get_uvarint(buf)? as usize;
                Ok(EngineMsg::InitShare {
                    state: wire::get_bits(buf, state_len)?,
                    inbox: wire::get_bits(buf, inbox_len)?,
                })
            }
            TAG_AGG_SHARE => {
                let len = wire::get_uvarint(buf)? as usize;
                Ok(EngineMsg::AggShare {
                    bits: wire::get_bits(buf, len)?,
                })
            }
            tag => Err(WireError::BadTag {
                tag,
                what: "EngineMsg",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_net::wire::hex;
    use proptest::prelude::*;

    #[test]
    fn both_variants_round_trip() {
        let init = EngineMsg::InitShare {
            state: vec![true, false, true],
            inbox: vec![false; 10],
        };
        assert_eq!(EngineMsg::decode_exact(&init.encode()).unwrap(), init);
        let agg = EngineMsg::AggShare {
            bits: vec![true; 9],
        };
        assert_eq!(EngineMsg::decode_exact(&agg.encode()).unwrap(), agg);
    }

    #[test]
    fn golden_encodings() {
        let init = EngineMsg::InitShare {
            state: vec![true, false, true],
            inbox: vec![true, true, false, false, true, false, false, false, true],
        };
        // tag 00 · state bits 03 · inbox bits 09 · state plane (1,0,1)=05 ·
        // inbox planes 0b10011 = 13, then bit 8 set = 01
        assert_eq!(hex(&init.encode()), "000309051301");
        let agg = EngineMsg::AggShare {
            bits: vec![false, true],
        };
        // tag 01 · bits 02 · plane (0,1) = 02
        assert_eq!(hex(&agg.encode()), "010202");
    }

    #[test]
    fn truncation_trailing_and_bad_tags_error_not_panic() {
        for msg in [
            EngineMsg::InitShare {
                state: vec![true; 12],
                inbox: vec![false; 24],
            },
            EngineMsg::AggShare {
                bits: vec![true, false, true],
            },
        ] {
            let encoded = msg.encode();
            for cut in 0..encoded.len() {
                assert!(EngineMsg::decode_exact(&encoded[..cut]).is_err());
            }
            let mut trailing = encoded;
            trailing.push(0xFF);
            assert!(EngineMsg::decode_exact(&trailing).is_err());
        }
        assert!(matches!(
            EngineMsg::decode_exact(&[0x05]),
            Err(WireError::BadTag { .. })
        ));
        // Dirty padding bits in the plane are rejected.
        assert!(matches!(
            EngineMsg::decode_exact(&[TAG_AGG_SHARE, 0x02, 0xFF]),
            Err(WireError::Invalid { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_engine_messages_round_trip(
            state in proptest::collection::vec(any::<bool>(), 0..64),
            inbox in proptest::collection::vec(any::<bool>(), 0..128),
        ) {
            let init = EngineMsg::InitShare { state: state.clone(), inbox };
            prop_assert_eq!(EngineMsg::decode_exact(&init.encode()).unwrap(), init);
            let agg = EngineMsg::AggShare { bits: state };
            prop_assert_eq!(EngineMsg::decode_exact(&agg.encode()).unwrap(), agg);
        }
    }
}
