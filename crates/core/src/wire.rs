//! Wire encoding of the engine's control messages.
//!
//! The runtime's two non-protocol message flows — the initialization
//! step's share distribution and the aggregation step's re-sharing into
//! the aggregation block — route their payloads through these encodings,
//! so the bytes charged for them are measured from real bit-packed
//! buffers rather than assumed.
//!
//! ## Layouts
//!
//! | message | layout |
//! |---|---|
//! | `InitShare` | `0x00` · uvarint(state bits) · uvarint(inbox bits) · state-plane · inbox-plane |
//! | `AggShare`  | `0x01` · uvarint(bits) · bit-plane |
//!
//! Bit planes pack LSB-first with zero padding (see
//! [`dstress_net::wire`]); an `InitShare` therefore costs
//! `⌈state/8⌉ + ⌈D·L/8⌉` bytes plus a few header bytes — the analytical
//! model's `⌈(state + D·L)/8⌉` figure plus at most one byte of padding
//! per plane and the header.

use crate::exec::{BlockStepOutcome, BlockStepTask, TransferOutcome, TransferTask};
use dstress_net::cost::OperationCounts;
use dstress_net::traffic::{NodeId, NodeTraffic};
use dstress_net::wire::{self, Wire, WireError};

/// Message tags.
const TAG_INIT_SHARE: u8 = 0x00;
const TAG_AGG_SHARE: u8 = 0x01;

/// A control message of the DStress engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineMsg {
    /// Initialization: one block member's XOR share of a vertex's initial
    /// state plus its `D` no-op inbox message slots.
    InitShare {
        /// The member's share of the state bits.
        state: Vec<bool>,
        /// The member's share of all `D · L` inbox bits, slot-major.
        inbox: Vec<bool>,
    },
    /// Aggregation: one block member's sub-share of a vertex state,
    /// destined for one aggregation-block member.
    AggShare {
        /// The sub-share bits.
        bits: Vec<bool>,
    },
}

impl Wire for EngineMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            EngineMsg::InitShare { state, inbox } => {
                wire::put_u8(out, TAG_INIT_SHARE);
                wire::put_uvarint(out, state.len() as u64);
                wire::put_uvarint(out, inbox.len() as u64);
                wire::put_bits(out, state);
                wire::put_bits(out, inbox);
            }
            EngineMsg::AggShare { bits } => {
                wire::put_u8(out, TAG_AGG_SHARE);
                wire::put_uvarint(out, bits.len() as u64);
                wire::put_bits(out, bits);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match wire::get_u8(buf)? {
            TAG_INIT_SHARE => {
                let state_len = wire::get_uvarint(buf)? as usize;
                let inbox_len = wire::get_uvarint(buf)? as usize;
                Ok(EngineMsg::InitShare {
                    state: wire::get_bits(buf, state_len)?,
                    inbox: wire::get_bits(buf, inbox_len)?,
                })
            }
            TAG_AGG_SHARE => {
                let len = wire::get_uvarint(buf)? as usize;
                Ok(EngineMsg::AggShare {
                    bits: wire::get_bits(buf, len)?,
                })
            }
            tag => Err(WireError::BadTag {
                tag,
                what: "EngineMsg",
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Executor task and outcome encodings
// ---------------------------------------------------------------------------
//
// These are the payloads the master/worker deployment layer ships inside
// its framed messages.  Layout building blocks: uvarints for all counts
// and indices, `u64` little-endian for the (uniformly random) task seeds,
// and LSB-first bit planes for share vectors.

/// Writes a list of bit vectors: uvarint count, then per vector a uvarint
/// bit length and the packed plane.
fn put_bit_vecs(out: &mut Vec<u8>, vecs: &[Vec<bool>]) {
    wire::put_uvarint(out, vecs.len() as u64);
    for bits in vecs {
        wire::put_uvarint(out, bits.len() as u64);
        wire::put_bits(out, bits);
    }
}

/// Reads a list written by [`put_bit_vecs`].
fn get_bit_vecs(buf: &mut &[u8]) -> Result<Vec<Vec<bool>>, WireError> {
    let count = wire::get_uvarint(buf)? as usize;
    let mut vecs = Vec::new();
    for _ in 0..count {
        let len = wire::get_uvarint(buf)? as usize;
        vecs.push(wire::get_bits(buf, len)?);
    }
    Ok(vecs)
}

/// Writes a node-id list: uvarint count, then one uvarint per id.
fn put_node_ids(out: &mut Vec<u8>, ids: &[NodeId]) {
    wire::put_uvarint(out, ids.len() as u64);
    for id in ids {
        id.encode_into(out);
    }
}

/// Reads a list written by [`put_node_ids`].
fn get_node_ids(buf: &mut &[u8]) -> Result<Vec<NodeId>, WireError> {
    let count = wire::get_uvarint(buf)? as usize;
    let mut ids = Vec::new();
    for _ in 0..count {
        ids.push(NodeId::decode(buf)?);
    }
    Ok(ids)
}

/// Writes per-node traffic entries: uvarint count, then id · counters.
fn put_traffic_entries(out: &mut Vec<u8>, entries: &[(NodeId, NodeTraffic)]) {
    wire::put_uvarint(out, entries.len() as u64);
    for (id, t) in entries {
        id.encode_into(out);
        t.encode_into(out);
    }
}

/// Reads a list written by [`put_traffic_entries`].
fn get_traffic_entries(buf: &mut &[u8]) -> Result<Vec<(NodeId, NodeTraffic)>, WireError> {
    let count = wire::get_uvarint(buf)? as usize;
    let mut entries = Vec::new();
    for _ in 0..count {
        entries.push((NodeId::decode(buf)?, NodeTraffic::decode(buf)?));
    }
    Ok(entries)
}

impl Wire for BlockStepTask {
    fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_uvarint(out, self.vertex);
        wire::put_u64_le(out, self.seed);
        put_node_ids(out, &self.members);
        wire::put_uvarint(out, self.out_slots);
        put_bit_vecs(out, &self.input_shares);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(BlockStepTask {
            vertex: wire::get_uvarint(buf)?,
            seed: wire::get_u64_le(buf)?,
            members: get_node_ids(buf)?,
            out_slots: wire::get_uvarint(buf)?,
            input_shares: get_bit_vecs(buf)?,
        })
    }
}

impl Wire for BlockStepOutcome {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_bit_vecs(out, &self.new_state);
        wire::put_uvarint(out, self.outgoing.len() as u64);
        for slot in &self.outgoing {
            put_bit_vecs(out, slot);
        }
        self.counts.encode_into(out);
        put_traffic_entries(out, &self.traffic);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let new_state = get_bit_vecs(buf)?;
        let slots = wire::get_uvarint(buf)? as usize;
        let mut outgoing = Vec::new();
        for _ in 0..slots {
            outgoing.push(get_bit_vecs(buf)?);
        }
        Ok(BlockStepOutcome {
            new_state,
            outgoing,
            counts: OperationCounts::decode(buf)?,
            traffic: get_traffic_entries(buf)?,
        })
    }
}

impl Wire for TransferTask {
    fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_uvarint(out, self.edge_index);
        wire::put_u64_le(out, self.seed);
        wire::put_uvarint(out, self.from);
        wire::put_uvarint(out, self.to);
        wire::put_uvarint(out, self.in_slot);
        put_node_ids(out, &self.sender_members);
        put_node_ids(out, &self.receiver_members);
        put_bit_vecs(out, &self.shares);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(TransferTask {
            edge_index: wire::get_uvarint(buf)?,
            seed: wire::get_u64_le(buf)?,
            from: wire::get_uvarint(buf)?,
            to: wire::get_uvarint(buf)?,
            in_slot: wire::get_uvarint(buf)?,
            sender_members: get_node_ids(buf)?,
            receiver_members: get_node_ids(buf)?,
            shares: get_bit_vecs(buf)?,
        })
    }
}

impl Wire for TransferOutcome {
    fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_uvarint(out, self.to);
        wire::put_uvarint(out, self.in_slot);
        put_bit_vecs(out, &self.receiver_shares);
        self.counts.encode_into(out);
        put_traffic_entries(out, &self.traffic);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(TransferOutcome {
            to: wire::get_uvarint(buf)?,
            in_slot: wire::get_uvarint(buf)?,
            receiver_shares: get_bit_vecs(buf)?,
            counts: OperationCounts::decode(buf)?,
            traffic: get_traffic_entries(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_net::wire::hex;
    use proptest::prelude::*;

    #[test]
    fn both_variants_round_trip() {
        let init = EngineMsg::InitShare {
            state: vec![true, false, true],
            inbox: vec![false; 10],
        };
        assert_eq!(EngineMsg::decode_exact(&init.encode()).unwrap(), init);
        let agg = EngineMsg::AggShare {
            bits: vec![true; 9],
        };
        assert_eq!(EngineMsg::decode_exact(&agg.encode()).unwrap(), agg);
    }

    #[test]
    fn golden_encodings() {
        let init = EngineMsg::InitShare {
            state: vec![true, false, true],
            inbox: vec![true, true, false, false, true, false, false, false, true],
        };
        // tag 00 · state bits 03 · inbox bits 09 · state plane (1,0,1)=05 ·
        // inbox planes 0b10011 = 13, then bit 8 set = 01
        assert_eq!(hex(&init.encode()), "000309051301");
        let agg = EngineMsg::AggShare {
            bits: vec![false, true],
        };
        // tag 01 · bits 02 · plane (0,1) = 02
        assert_eq!(hex(&agg.encode()), "010202");
    }

    #[test]
    fn truncation_trailing_and_bad_tags_error_not_panic() {
        for msg in [
            EngineMsg::InitShare {
                state: vec![true; 12],
                inbox: vec![false; 24],
            },
            EngineMsg::AggShare {
                bits: vec![true, false, true],
            },
        ] {
            let encoded = msg.encode();
            for cut in 0..encoded.len() {
                assert!(EngineMsg::decode_exact(&encoded[..cut]).is_err());
            }
            let mut trailing = encoded;
            trailing.push(0xFF);
            assert!(EngineMsg::decode_exact(&trailing).is_err());
        }
        assert!(matches!(
            EngineMsg::decode_exact(&[0x05]),
            Err(WireError::BadTag { .. })
        ));
        // Dirty padding bits in the plane are rejected.
        assert!(matches!(
            EngineMsg::decode_exact(&[TAG_AGG_SHARE, 0x02, 0xFF]),
            Err(WireError::Invalid { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_engine_messages_round_trip(
            state in proptest::collection::vec(any::<bool>(), 0..64),
            inbox in proptest::collection::vec(any::<bool>(), 0..128),
        ) {
            let init = EngineMsg::InitShare { state: state.clone(), inbox };
            prop_assert_eq!(EngineMsg::decode_exact(&init.encode()).unwrap(), init);
            let agg = EngineMsg::AggShare { bits: state };
            prop_assert_eq!(EngineMsg::decode_exact(&agg.encode()).unwrap(), agg);
        }
    }

    fn sample_block_step_task() -> BlockStepTask {
        BlockStepTask {
            vertex: 2,
            seed: 0x0102_0304_0506_0708,
            members: vec![NodeId(2), NodeId(5)],
            out_slots: 1,
            input_shares: vec![vec![true, false], vec![false, true]],
        }
    }

    fn sample_transfer_task() -> TransferTask {
        TransferTask {
            edge_index: 7,
            seed: 0x11,
            from: 0,
            to: 1,
            in_slot: 0,
            sender_members: vec![NodeId(0), NodeId(2)],
            receiver_members: vec![NodeId(1), NodeId(3)],
            shares: vec![vec![true], vec![true]],
        }
    }

    #[test]
    fn executor_task_golden_encodings() {
        // vertex 02 · seed LE · ids [02 05] · slots 01 · 2 planes of 2 bits
        assert_eq!(
            hex(&sample_block_step_task().encode()),
            "020807060504030201020205010202010202"
        );
        // edge 07 · seed LE · from 00 · to 01 · slot 00 · senders [00 02] ·
        // receivers [01 03] · 2 planes of 1 bit
        assert_eq!(
            hex(&sample_transfer_task().encode()),
            "0711000000000000000001000200020201030201010101"
        );
    }

    #[test]
    fn executor_outcome_golden_encodings() {
        let step = BlockStepOutcome {
            new_state: vec![vec![true], vec![false]],
            outgoing: vec![vec![vec![true, true], vec![false, false]]],
            counts: OperationCounts {
                and_gates: 1,
                rounds: 2,
                ..Default::default()
            },
            traffic: vec![(
                NodeId(1),
                NodeTraffic {
                    bytes_sent: 3,
                    ..Default::default()
                },
            )],
        };
        // states · 1 slot of 2 planes · 10 count uvarints · 1 entry
        assert_eq!(
            hex(&step.encode()),
            "0201010100010202030200000000000001000000020101030000000000"
        );
        let transfer = TransferOutcome {
            to: 1,
            in_slot: 0,
            receiver_shares: vec![vec![false]],
            counts: OperationCounts::default(),
            traffic: Vec::new(),
        };
        assert_eq!(hex(&transfer.encode()), "01000101000000000000000000000000");
    }

    #[test]
    fn executor_messages_reject_truncation_and_trailing_bytes() {
        let task = sample_block_step_task().encode();
        for cut in 0..task.len() {
            assert!(BlockStepTask::decode_exact(&task[..cut]).is_err());
        }
        let mut trailing = task;
        trailing.push(0x00);
        assert!(BlockStepTask::decode_exact(&trailing).is_err());

        let transfer = sample_transfer_task().encode();
        for cut in 0..transfer.len() {
            assert!(TransferTask::decode_exact(&transfer[..cut]).is_err());
        }
        let mut trailing = transfer;
        trailing.push(0x00);
        assert!(TransferTask::decode_exact(&trailing).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_executor_tasks_round_trip(
            vertex in any::<u64>(),
            seed in any::<u64>(),
            members in proptest::collection::vec(0usize..1000, 1..6),
            shares in proptest::collection::vec(
                proptest::collection::vec(any::<bool>(), 0..48), 0..6),
        ) {
            let task = BlockStepTask {
                vertex,
                seed,
                members: members.iter().copied().map(NodeId).collect(),
                out_slots: shares.len() as u64,
                input_shares: shares.clone(),
            };
            prop_assert_eq!(BlockStepTask::decode_exact(&task.encode()).unwrap(), task);
            let transfer = TransferTask {
                edge_index: vertex,
                seed,
                from: vertex / 2,
                to: vertex / 3,
                in_slot: vertex % 7,
                sender_members: members.iter().copied().map(NodeId).collect(),
                receiver_members: members.iter().copied().map(|m| NodeId(m + 1)).collect(),
                shares: shares.clone(),
            };
            prop_assert_eq!(TransferTask::decode_exact(&transfer.encode()).unwrap(), transfer);
            let outcome = BlockStepOutcome {
                new_state: shares.clone(),
                outgoing: vec![shares.clone(), shares.clone()],
                counts: OperationCounts { and_gates: vertex, ..Default::default() },
                traffic: members
                    .iter()
                    .map(|&m| (NodeId(m), NodeTraffic { bytes_sent: seed, ..Default::default() }))
                    .collect(),
            };
            prop_assert_eq!(
                BlockStepOutcome::decode_exact(&outcome.encode()).unwrap(),
                outcome
            );
            let delivered = TransferOutcome {
                to: vertex,
                in_slot: vertex % 5,
                receiver_shares: shares,
                counts: OperationCounts::default(),
                traffic: Vec::new(),
            };
            prop_assert_eq!(
                TransferOutcome::decode_exact(&delivered.encode()).unwrap(),
                delivered
            );
        }
    }
}
