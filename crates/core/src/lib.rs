//! The DStress runtime.
//!
//! This crate ties the substrates together into the system the paper
//! describes (§3.3–§3.6): a set of nodes, one per graph vertex, each
//! associated with a *block* of `k + 1` nodes that holds an XOR sharing of
//! the vertex state; computation steps executed as GMW multi-party
//! computations inside each block; communication steps executed with the
//! message transfer protocol; and a final aggregation-plus-noising step
//! performed by a dedicated aggregation block, which releases only the
//! differentially-private output.
//!
//! Modules:
//!
//! * [`analytics`] — the DP graph-analytics suite (PageRank, WCC, SSSP,
//!   degree histogram) as circuit programs, mirroring the plaintext
//!   references in `dstress_graph::analytics`.
//! * [`config`] — runtime configuration (collusion bound, message width,
//!   privacy parameters, execution mode).
//! * [`schedule`] — recurring releases: a budget accountant gating the
//!   full-MPC and PSA release pipelines with ε composition across
//!   releases.
//! * [`program`] — the [`program::SecureVertexProgram`] trait: the
//!   circuit-level description of a vertex program (initial-state
//!   encoding, update circuit, aggregation circuit, sensitivity).
//! * [`engine`] — the runtime itself, producing a [`engine::DStressRun`]
//!   with the noised output, a per-phase cost breakdown and the measured
//!   per-node traffic.
//! * [`noise_circuit`] — the Boolean circuit used to account the cost of
//!   drawing the Laplace noise inside the aggregation MPC (the Dwork et
//!   al. distributed-noise-generation step of §5.1).
//! * [`projection`] — the analytic cost model that reproduces Figure 6:
//!   given `(N, D, k, I)` it predicts end-to-end computation time and
//!   per-node traffic for deployments too large to simulate.
//! * [`store`] — the pluggable state-store layer behind the engine's
//!   share state: the in-memory packed backend, the disk-spilling
//!   backend with a byte budget, and the round-boundary checkpoint
//!   files that [`engine::DStressRuntime::resume`] recovers from.
//!
//! ## Example
//!
//! ```
//! use dstress_core::{CounterProgram, DStressConfig, DStressRuntime};
//! use dstress_graph::generate::ring_with_chords;
//! use dstress_math::rng::Xoshiro256;
//!
//! let mut rng = Xoshiro256::new(7);
//! let graph = ring_with_chords(6, 0, 2, &mut rng);
//! let program = CounterProgram { width: 8, rounds: 2 };
//! let config = DStressConfig::small_test(2);
//! let run = DStressRuntime::new(config).execute(&graph, &program).unwrap();
//! assert!(run.noised_output.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod config;
pub mod engine;
pub mod exec;
pub mod noise_circuit;
pub mod program;
pub mod projection;
pub mod schedule;
pub mod store;
pub mod wire;

pub use analytics::{DegreeHistogramProgram, PageRankProgram, SsspProgram, WccProgram};
pub use config::{CheckpointConfig, ConcurrencyMode, DStressConfig, TransferMode, TransportKind};
pub use engine::{DStressRun, DStressRuntime, PhaseBreakdown, PhaseCosts, BLOCKS_PER_WORKER};
pub use exec::{
    BlockStepOutcome, BlockStepTask, LocalExecutor, StepContext, StepExecutor, TransferOutcome,
    TransferTask,
};
pub use program::{execute_plaintext, CounterProgram, SecureVertexProgram};
pub use projection::{ProjectionInputs, ProjectionResult, ScalabilityModel};
pub use schedule::{ReleaseMode, ReleaseRecord, ReleaseSchedule, ScheduleError};
pub use store::{MemStore, RunDirGuard, SpillStore, StateStore, StoreError, SEGMENT_ROWS};
