//! Runtime configuration.

use dstress_crypto::group::GroupKind;

/// How the communication steps execute their cryptography.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferMode {
    /// Run the full ElGamal message transfer protocol (encryption,
    /// homomorphic aggregation, adjustment, decryption).  This is the
    /// faithful mode used by tests and the transfer microbenchmarks.
    RealCrypto,
    /// Move the shares in plaintext while *accounting* exactly the
    /// operation counts and traffic the real protocol would generate.
    /// Large end-to-end simulations (Figure 5 and beyond) use this mode so
    /// that wall-clock time stays manageable; a unit test pins the counts
    /// of the two modes against each other.
    Accounted,
}

/// Configuration of a DStress execution.
#[derive(Clone, Debug)]
pub struct DStressConfig {
    /// Collusion bound `k`; every block has `k + 1` members.
    pub collusion_bound: usize,
    /// Message width `L` in bits (the prototype used 12-bit shares).
    pub message_bits: u32,
    /// Output-privacy budget ε for the Laplace mechanism.
    pub epsilon: f64,
    /// Edge-privacy noise parameter α of the transfer protocol
    /// (Appendix B); values close to 1 add more noise.
    pub edge_noise_alpha: f64,
    /// Half-width of the signed discrete-log window used to decrypt the
    /// noised bit sums (the paper's `N_l / 2`).
    pub dlog_window: u64,
    /// Which ElGamal group to instantiate.
    pub group: GroupKind,
    /// Whether communication steps run real cryptography or cost-accounted
    /// plaintext sharing.
    pub transfer_mode: TransferMode,
    /// Seed for all randomness in the run (setup, sharing, noise).
    pub seed: u64,
}

impl DStressConfig {
    /// A configuration suitable for tests and examples: small blocks, the
    /// fast simulation group, real cryptography everywhere.
    pub fn small_test(collusion_bound: usize) -> Self {
        DStressConfig {
            collusion_bound,
            message_bits: 12,
            epsilon: 0.23,
            edge_noise_alpha: 0.5,
            dlog_window: 2_000,
            group: GroupKind::Sim64,
            transfer_mode: TransferMode::RealCrypto,
            seed: 0xD57E55,
        }
    }

    /// A configuration for larger benchmark runs: cost-accounted transfers
    /// so that wall-clock time stays proportional to the MPC work.
    pub fn benchmark(collusion_bound: usize) -> Self {
        DStressConfig {
            transfer_mode: TransferMode::Accounted,
            ..DStressConfig::small_test(collusion_bound)
        }
    }

    /// The block size `k + 1`.
    pub fn block_size(&self) -> usize {
        self.collusion_bound + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let t = DStressConfig::small_test(3);
        assert_eq!(t.block_size(), 4);
        assert_eq!(t.transfer_mode, TransferMode::RealCrypto);
        assert_eq!(t.group, GroupKind::Sim64);
        let b = DStressConfig::benchmark(19);
        assert_eq!(b.block_size(), 20);
        assert_eq!(b.transfer_mode, TransferMode::Accounted);
        assert!(b.epsilon > 0.0);
        assert!(b.edge_noise_alpha > 0.0 && b.edge_noise_alpha < 1.0);
    }
}
