//! Runtime configuration.

use dstress_crypto::group::GroupKind;
use dstress_mpc::GmwBatching;
use dstress_net::pool::default_threads;
use std::path::PathBuf;

/// Round-boundary checkpointing knobs.
///
/// When set on [`DStressConfig::checkpoint`], the engine writes a
/// `Wire`-encoded checkpoint (manifest + packed store segments) into
/// `dir` at every `every_rounds`-th round swap, pruning superseded
/// checkpoints; [`crate::engine::DStressRuntime::resume`] rehydrates
/// from the newest one and continues to a bit-identical final release.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory the checkpoint files live in (created on first write).
    pub dir: PathBuf,
    /// Checkpoint cadence in rounds (values below one are treated as
    /// one: every round).
    pub every_rounds: u64,
}

impl CheckpointConfig {
    /// Checkpoints into `dir` at every round swap.
    pub fn every_round(dir: PathBuf) -> Self {
        CheckpointConfig {
            dir,
            every_rounds: 1,
        }
    }

    /// The effective cadence (at least one round).
    pub fn cadence(&self) -> u64 {
        self.every_rounds.max(1)
    }
}

/// How the communication steps execute their cryptography.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferMode {
    /// Run the full ElGamal message transfer protocol (encryption,
    /// homomorphic aggregation, adjustment, decryption).  This is the
    /// faithful mode used by tests and the transfer microbenchmarks.
    RealCrypto,
    /// Move the shares in plaintext while *accounting* exactly the
    /// operation counts and traffic the real protocol would generate.
    /// Large end-to-end simulations (Figure 5 and beyond) use this mode so
    /// that wall-clock time stays manageable; a unit test pins the counts
    /// of the two modes against each other.
    Accounted,
}

/// Which [`dstress_net::Transport`] backend carries the GMW messages of
/// every block MPC (computation steps, aggregation, noising).
///
/// All backends are bit-identical in outputs, operation counts and
/// measured `wire_bytes` — the three-way determinism suite pins this — so
/// the knob only changes *how* the messages move: through in-process
/// queues, or over real loopback TCP connections with length-prefixed
/// frames.  `Socket` is what a [`crate::exec::StepExecutor`] deployment
/// worker uses so its node actors exchange bytes over real connections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// The deterministic in-process queue backend
    /// ([`dstress_net::SimTransport`]).
    #[default]
    Sim,
    /// Real TCP loopback connections with length-prefixed frames
    /// ([`dstress_net::SocketTransport`]).
    Socket,
}

/// How the runtime schedules the independent blocks of a phase.
///
/// A DStress deployment runs every block's MPC *concurrently* — per-node
/// cost, not summed cost, is what the paper's wall-clock figures report.
/// `Threaded` reproduces that: the computation steps of a round (one GMW
/// per vertex) and the message transfers of a round are independent
/// tasks, sharded across a worker pool.  Results are bit-identical to
/// `Sequential` — every task draws from its own deterministically derived
/// seed and accounts into its own counters, merged in task order at phase
/// end — so the knob only changes wall-clock, never outputs.
///
/// ## Example
///
/// ```
/// use dstress_core::config::ConcurrencyMode;
///
/// assert_eq!(ConcurrencyMode::Sequential.worker_threads(), 1);
/// assert_eq!(ConcurrencyMode::Threaded { threads: 8 }.worker_threads(), 8);
/// assert!(ConcurrencyMode::threaded().worker_threads() >= 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConcurrencyMode {
    /// Execute blocks one after another on the calling thread (the
    /// deterministic reference schedule).
    Sequential,
    /// Shard independent block executions across a worker pool of the
    /// given size.
    Threaded {
        /// Worker count (values below one are treated as one).
        threads: usize,
    },
}

impl ConcurrencyMode {
    /// `Threaded` with one worker per available core
    /// ([`std::thread::available_parallelism`]).
    pub fn threaded() -> Self {
        ConcurrencyMode::Threaded {
            threads: default_threads(),
        }
    }

    /// The worker-pool size this mode implies (1 for `Sequential`).
    pub fn worker_threads(&self) -> usize {
        match *self {
            ConcurrencyMode::Sequential => 1,
            ConcurrencyMode::Threaded { threads } => threads.max(1),
        }
    }
}

/// Configuration of a DStress execution.
#[derive(Clone, Debug)]
pub struct DStressConfig {
    /// Collusion bound `k`; every block has `k + 1` members.
    pub collusion_bound: usize,
    /// Message width `L` in bits (the prototype used 12-bit shares).
    pub message_bits: u32,
    /// Output-privacy budget ε for the Laplace mechanism.
    pub epsilon: f64,
    /// Edge-privacy noise parameter α of the transfer protocol
    /// (Appendix B); values close to 1 add more noise.
    pub edge_noise_alpha: f64,
    /// Half-width of the signed discrete-log window used to decrypt the
    /// noised bit sums (the paper's `N_l / 2`).
    pub dlog_window: u64,
    /// Which ElGamal group to instantiate.
    pub group: GroupKind,
    /// Whether communication steps run real cryptography or cost-accounted
    /// plaintext sharing.
    pub transfer_mode: TransferMode,
    /// How the independent blocks of a phase are scheduled.
    pub concurrency: ConcurrencyMode,
    /// Which transport backend carries the GMW messages of every block
    /// MPC.  `Sim` is the in-process default; `Socket` moves the same
    /// messages over real TCP loopback connections, bit-identically.
    pub transport: TransportKind,
    /// How the block MPCs group their AND-gate OTs into messages
    /// (layer-batched by default; per-gate kept for A/B round
    /// measurements).  Both modes are bit-identical in outputs and
    /// traffic; only the measured round counts differ.
    pub gmw_batching: GmwBatching,
    /// Seed for all randomness in the run (setup, sharing, noise).
    pub seed: u64,
    /// Byte budget for the resident share state (vertex state plus both
    /// inbox buffers).  When the packed stores would exceed it, the
    /// engine switches to the spilling backend and pages row segments to
    /// disk so resident store bytes stay within the budget.  `None`
    /// (the default) keeps everything in memory.
    pub state_budget_bytes: Option<usize>,
    /// Base directory for the run-scoped spill directory (removed when
    /// the run finishes, even on error).  `None` uses the system temp
    /// directory.
    pub spill_dir: Option<PathBuf>,
    /// Round-boundary checkpointing; `None` (the default) writes no
    /// checkpoints.
    pub checkpoint: Option<CheckpointConfig>,
    /// Abort the run right after checkpointing the given round swap with
    /// [`crate::engine::RuntimeError::Halted`] — the crash-injection
    /// hook the kill-and-resume tests (and the deployment drill) use.
    pub halt_after_round: Option<u64>,
}

impl DStressConfig {
    /// A configuration suitable for tests and examples: small blocks, the
    /// fast simulation group, real cryptography everywhere.
    pub fn small_test(collusion_bound: usize) -> Self {
        DStressConfig {
            collusion_bound,
            message_bits: 12,
            epsilon: 0.23,
            edge_noise_alpha: 0.5,
            dlog_window: 2_000,
            group: GroupKind::Sim64,
            transfer_mode: TransferMode::RealCrypto,
            concurrency: ConcurrencyMode::Sequential,
            transport: TransportKind::Sim,
            gmw_batching: GmwBatching::Layered,
            seed: 0xD57E55,
            state_budget_bytes: None,
            spill_dir: None,
            checkpoint: None,
            halt_after_round: None,
        }
    }

    /// A configuration for larger benchmark runs: cost-accounted transfers
    /// so that wall-clock time stays proportional to the MPC work.
    pub fn benchmark(collusion_bound: usize) -> Self {
        DStressConfig {
            transfer_mode: TransferMode::Accounted,
            ..DStressConfig::small_test(collusion_bound)
        }
    }

    /// The block size `k + 1`.
    pub fn block_size(&self) -> usize {
        self.collusion_bound + 1
    }

    /// Switches the configuration to the given concurrency mode.
    pub fn with_concurrency(mut self, concurrency: ConcurrencyMode) -> Self {
        self.concurrency = concurrency;
        self
    }

    /// Switches the GMW AND-gate batching mode.
    pub fn with_gmw_batching(mut self, batching: GmwBatching) -> Self {
        self.gmw_batching = batching;
        self
    }

    /// Switches the transport backend carrying the GMW messages.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Bounds the resident share state to `budget_bytes`, spilling row
    /// segments to disk past it.
    pub fn with_state_budget(mut self, budget_bytes: usize) -> Self {
        self.state_budget_bytes = Some(budget_bytes);
        self
    }

    /// Places the run-scoped spill directory under `dir` instead of the
    /// system temp directory.
    pub fn with_spill_dir(mut self, dir: PathBuf) -> Self {
        self.spill_dir = Some(dir);
        self
    }

    /// Enables round-boundary checkpointing.
    pub fn with_checkpoint(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Injects a crash right after the given round's checkpoint.
    pub fn with_halt_after_round(mut self, round: u64) -> Self {
        self.halt_after_round = Some(round);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let t = DStressConfig::small_test(3);
        assert_eq!(t.block_size(), 4);
        assert_eq!(t.transfer_mode, TransferMode::RealCrypto);
        assert_eq!(t.group, GroupKind::Sim64);
        let b = DStressConfig::benchmark(19);
        assert_eq!(b.block_size(), 20);
        assert_eq!(b.transfer_mode, TransferMode::Accounted);
        assert!(b.epsilon > 0.0);
        assert!(b.edge_noise_alpha > 0.0 && b.edge_noise_alpha < 1.0);
        assert_eq!(b.concurrency, ConcurrencyMode::Sequential);
        assert_eq!(b.transport, TransportKind::Sim);
        assert_eq!(
            b.with_transport(TransportKind::Socket).transport,
            TransportKind::Socket
        );
    }

    #[test]
    fn persistence_knobs_default_off_and_build() {
        let cfg = DStressConfig::small_test(2);
        assert_eq!(cfg.state_budget_bytes, None);
        assert_eq!(cfg.spill_dir, None);
        assert_eq!(cfg.checkpoint, None);
        assert_eq!(cfg.halt_after_round, None);
        let dir = PathBuf::from("/tmp/ckpt");
        let cfg = cfg
            .with_state_budget(4096)
            .with_spill_dir(PathBuf::from("/tmp/spill"))
            .with_checkpoint(CheckpointConfig::every_round(dir.clone()))
            .with_halt_after_round(1);
        assert_eq!(cfg.state_budget_bytes, Some(4096));
        let checkpoint = cfg.checkpoint.expect("set above");
        assert_eq!(checkpoint.dir, dir);
        assert_eq!(checkpoint.cadence(), 1);
        assert_eq!(
            CheckpointConfig {
                dir,
                every_rounds: 0
            }
            .cadence(),
            1
        );
        assert_eq!(cfg.halt_after_round, Some(1));
    }

    #[test]
    fn concurrency_mode_resolves_workers() {
        assert_eq!(ConcurrencyMode::Sequential.worker_threads(), 1);
        assert_eq!(ConcurrencyMode::Threaded { threads: 0 }.worker_threads(), 1);
        assert_eq!(ConcurrencyMode::Threaded { threads: 6 }.worker_threads(), 6);
        assert!(ConcurrencyMode::threaded().worker_threads() >= 1);
        let cfg = DStressConfig::benchmark(2).with_concurrency(ConcurrencyMode::threaded());
        assert_ne!(cfg.concurrency, ConcurrencyMode::Sequential);
    }
}
