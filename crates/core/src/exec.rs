//! Step executors: *where* the independent tasks of a phase run.
//!
//! The engine's windowed pipeline (`run_windowed_with` in
//! [`crate::engine`]) builds one serializable task per independent unit
//! of work — a vertex's computation step, an edge's message transfer —
//! and hands the batch to a [`StepExecutor`].  The executor decides
//! placement:
//!
//! * [`LocalExecutor`] shards the batch across the in-process worker
//!   pool ([`dstress_net::pool::parallel_map`]) — this is the schedule
//!   every prior PR ran, and remains the default.
//! * The `dstress-node` deployment crate implements the same trait by
//!   shipping task batches to registered worker processes over framed
//!   TCP and collecting the outcomes.
//!
//! Placement cannot change results: every task carries its own derived
//! seed, executes against only the data in the task, and returns its
//! outcome with per-node traffic entries that the engine merges in task
//! order.  The task-level entry points ([`execute_block_step_task`],
//! [`execute_accounted_transfer_task`]) are plain functions of the task
//! bytes, so a remote worker that decodes a task computes bit-for-bit
//! what the local pool would have.
//!
//! Because tasks carry *copies* of their input shares, the engine's
//! [`crate::store::StateStore`] backends are only ever touched from the
//! scheduling thread — workers (threads or remote processes) never see a
//! store, which is what lets the disk-spilling backend use plain
//! single-threaded interior mutability and page segments during task
//! building.

use crate::config::{DStressConfig, TransferMode, TransportKind};
use crate::engine::RuntimeError;
use dstress_circuit::Circuit;
use dstress_crypto::dlog::DlogTable;
use dstress_crypto::group::Group;
use dstress_crypto::sharing::{split_xor, xor_reconstruct, BitMessage};
use dstress_math::rng::Xoshiro256;
use dstress_mpc::gmw::{GmwConfig, GmwProtocol};
use dstress_mpc::party::OtConfig;
use dstress_mpc::{GmwBatching, GmwMessage};
use dstress_net::cost::OperationCounts;
use dstress_net::pool::parallel_map;
use dstress_net::socket::SocketTransport;
use dstress_net::traffic::{NodeId, NodeTraffic, TrafficAccountant};
use dstress_net::transport::{SimTransport, Transport};
use dstress_transfer::protocol::{transfer_message, TransferConfig};
use dstress_transfer::setup::{NodeSecrets, SystemSetup};

/// One vertex's computation step: a GMW evaluation of the program's
/// update circuit among the vertex's block members.
///
/// The task is self-contained — members, seed and input shares travel
/// with it — so the executing worker needs only the run-wide job
/// parameters (circuit, widths, batching, transport), never the master's
/// setup state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockStepTask {
    /// The vertex whose block computes.
    pub vertex: u64,
    /// The task's derived seed (`task_seed(comp_seed, vertex)`).
    pub seed: u64,
    /// The block members, owner first (the GMW node identities).
    pub members: Vec<NodeId>,
    /// Number of *actual* out-edges whose message shares the outcome
    /// must carry (the circuit's remaining padded slots are dropped).
    pub out_slots: u64,
    /// Per-member GMW input shares.
    pub input_shares: Vec<Vec<bool>>,
}

/// The result of one [`BlockStepTask`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockStepOutcome {
    /// Per-member shares of the vertex's new state.
    pub new_state: Vec<Vec<bool>>,
    /// Per-member shares of each outgoing message: `outgoing[slot][m]`.
    pub outgoing: Vec<Vec<Vec<bool>>>,
    /// Operation counts of the block MPC.
    pub counts: OperationCounts,
    /// Per-node traffic entries, ascending node order.
    pub traffic: Vec<(NodeId, NodeTraffic)>,
}

/// One edge's message transfer: moves the sender block's message shares
/// to the receiver block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransferTask {
    /// Global (vertex-major) edge index of the round.
    pub edge_index: u64,
    /// The task's derived seed (`task_seed(comm_seed, edge_index)`).
    pub seed: u64,
    /// Sending vertex.
    pub from: u64,
    /// Receiving vertex.
    pub to: u64,
    /// The receiver's inbox slot this edge delivers into.
    pub in_slot: u64,
    /// The sender's block members.
    pub sender_members: Vec<NodeId>,
    /// The receiver's block members.
    pub receiver_members: Vec<NodeId>,
    /// Per-sender-member shares of the message bits.
    pub shares: Vec<Vec<bool>>,
}

/// The result of one [`TransferTask`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransferOutcome {
    /// Receiving vertex (copied from the task so outcomes are
    /// self-describing when they return out of order from a fleet).
    pub to: u64,
    /// The receiver's inbox slot.
    pub in_slot: u64,
    /// Per-receiver-member shares of the delivered message bits.
    pub receiver_shares: Vec<Vec<bool>>,
    /// Operation counts of the transfer.
    pub counts: OperationCounts,
    /// Per-node traffic entries, ascending node order.
    pub traffic: Vec<(NodeId, NodeTraffic)>,
}

/// Everything an executor needs beyond the tasks themselves.  Remote
/// executors use only the plain job parameters (config, widths); the
/// borrowed setup state exists for the local real-crypto transfer path,
/// whose certificates and key material never leave the master.
pub struct StepContext<'a> {
    /// The run configuration.
    pub config: &'a DStressConfig,
    /// The program's update circuit (shared by every computation step).
    pub update_circuit: &'a Circuit,
    /// State width in bits.
    pub state_bits: usize,
    /// Message width in bits.
    pub message_bits: usize,
    /// Message width as the transfer protocol's `u32` parameter.
    pub message_width: u32,
    /// The ElGamal group of the run.
    pub group: &'a Group,
    /// System setup (blocks; certificates in real-crypto mode).
    pub setup: &'a SystemSetup,
    /// Per-node secrets (empty in accounted mode).
    pub secrets: &'a [NodeSecrets],
    /// Discrete-log table (real-crypto mode only).
    pub dlog: Option<&'a DlogTable>,
}

/// Where a phase's independent tasks execute.
///
/// Implementations MUST return outcomes in task order and MUST compute
/// each outcome exactly as the task-level entry points do — placement is
/// not allowed to change a single bit of the run.
pub trait StepExecutor {
    /// Executes one window's computation-step tasks.
    fn run_block_steps(
        &self,
        ctx: &StepContext<'_>,
        tasks: Vec<BlockStepTask>,
    ) -> Result<Vec<BlockStepOutcome>, RuntimeError>;

    /// Executes one window's transfer tasks.
    fn run_transfers(
        &self,
        ctx: &StepContext<'_>,
        tasks: Vec<TransferTask>,
    ) -> Result<Vec<TransferOutcome>, RuntimeError>;
}

/// The in-process executor: shards tasks across the worker pool
/// configured by [`crate::config::ConcurrencyMode`].
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalExecutor;

impl StepExecutor for LocalExecutor {
    fn run_block_steps(
        &self,
        ctx: &StepContext<'_>,
        tasks: Vec<BlockStepTask>,
    ) -> Result<Vec<BlockStepOutcome>, RuntimeError> {
        let threads = ctx.config.concurrency.worker_threads();
        let update_circuit = ctx.update_circuit;
        let batching = ctx.config.gmw_batching;
        let transport = ctx.config.transport;
        let (state_bits, message_bits) = (ctx.state_bits, ctx.message_bits);
        parallel_map(tasks, threads, move |_off, task| {
            execute_block_step_task(
                update_circuit,
                batching,
                transport,
                state_bits,
                message_bits,
                task,
            )
        })
        .into_iter()
        .collect()
    }

    fn run_transfers(
        &self,
        ctx: &StepContext<'_>,
        tasks: Vec<TransferTask>,
    ) -> Result<Vec<TransferOutcome>, RuntimeError> {
        let threads = ctx.config.concurrency.worker_threads();
        parallel_map(tasks, threads, |_off, task| {
            match ctx.config.transfer_mode {
                TransferMode::RealCrypto => real_crypto_transfer(ctx, task),
                TransferMode::Accounted => Ok(execute_accounted_transfer_task(
                    ctx.group,
                    ctx.message_width,
                    &task,
                )),
            }
        })
        .into_iter()
        .collect()
    }
}

/// The transport instance one block MPC runs on.
///
/// `Socket` uses a single transport worker because block MPCs already
/// run many-at-once inside the executor's pool; each MPC still opens a
/// real loopback TCP mesh between its `k + 1` parties.
pub fn mpc_transport(kind: TransportKind) -> Box<dyn Transport<GmwMessage>> {
    match kind {
        TransportKind::Sim => Box::new(SimTransport),
        TransportKind::Socket => Box::new(SocketTransport::with_threads(1)),
    }
}

/// Executes one computation-step task: a pure function of the task and
/// the run-wide job parameters, identical on every placement.
pub fn execute_block_step_task(
    update_circuit: &Circuit,
    batching: GmwBatching,
    transport: TransportKind,
    state_bits: usize,
    message_bits: usize,
    task: BlockStepTask,
) -> Result<BlockStepOutcome, RuntimeError> {
    let mut rng = Xoshiro256::new(task.seed);
    let mut traffic = TrafficAccountant::new();
    let block_size = task.members.len();
    let protocol =
        GmwProtocol::new(GmwConfig::with_node_ids(task.members.clone()).with_batching(batching))?;
    let transport = mpc_transport(transport);
    let exec = protocol.execute_on(
        &*transport,
        update_circuit,
        &task.input_shares,
        &OtConfig::extension(),
        &mut traffic,
        &mut rng,
    )?;

    let mut new_state = Vec::with_capacity(block_size);
    let mut outgoing = vec![vec![Vec::new(); block_size]; task.out_slots as usize];
    for (m_idx, member_outputs) in exec.output_shares.iter().enumerate() {
        new_state.push(member_outputs[..state_bits].to_vec());
        for (slot, per_member) in outgoing.iter_mut().enumerate() {
            let start = state_bits + slot * message_bits;
            per_member[m_idx] = member_outputs[start..start + message_bits].to_vec();
        }
    }
    Ok(BlockStepOutcome {
        new_state,
        outgoing,
        counts: exec.counts,
        traffic: traffic.sorted_node_entries(),
    })
}

/// The local real-crypto transfer path: certificates and key material
/// live only in the master's [`StepContext`], which is why real-crypto
/// runs cannot be placed on remote workers.
fn real_crypto_transfer(
    ctx: &StepContext<'_>,
    task: TransferTask,
) -> Result<TransferOutcome, RuntimeError> {
    let mut rng = Xoshiro256::new(task.seed);
    let mut traffic = TrafficAccountant::new();
    let from = NodeId(task.from as usize);
    let to = NodeId(task.to as usize);
    let in_slot = task.in_slot as usize;
    let message_shares: Vec<BitMessage> = task
        .shares
        .iter()
        .map(|bits| BitMessage::from_bits(bits))
        .collect();
    let config = TransferConfig::final_protocol(ctx.message_width, ctx.config.edge_noise_alpha);
    let outcome = transfer_message(
        ctx.group,
        &config,
        from,
        to,
        ctx.setup.block_of(from),
        ctx.setup.block_of(to),
        &message_shares,
        ctx.secrets,
        &ctx.setup.certificates[to.0][in_slot],
        &ctx.secrets[to.0].neighbor_keys[in_slot],
        ctx.dlog.expect("real-crypto mode builds a lookup table"),
        &mut traffic,
        &mut rng,
    )?;
    Ok(TransferOutcome {
        to: task.to,
        in_slot: task.in_slot,
        receiver_shares: outcome
            .receiver_shares
            .iter()
            .map(BitMessage::to_bits)
            .collect(),
        counts: outcome.counts,
        traffic: traffic.sorted_node_entries(),
    })
}

/// Cost-accounted message transfer: moves the shares in plaintext while
/// recording exactly the operation counts and traffic that
/// [`transfer_message`] with [`dstress_transfer::ProtocolVariant::Final`]
/// would generate — including the *measured* wire bytes, reproduced from
/// the closed-form encoded lengths in [`dstress_transfer::wire`].  A unit
/// test pins the two modes against each other field by field.
///
/// This is the only transfer path a remote worker can run: it is a pure
/// function of the task and the group, with no key material.
pub fn execute_accounted_transfer_task(
    group: &Group,
    message_bits: u32,
    task: &TransferTask,
) -> TransferOutcome {
    let mut rng = Xoshiro256::new(task.seed);
    let mut traffic = TrafficAccountant::new();
    let sender_vertex = NodeId(task.from as usize);
    let receiver_vertex = NodeId(task.to as usize);
    let block_size = task.sender_members.len();
    let bits = message_bits as u64;
    let elem_bytes = group.element_bytes() as u64;
    let mut counts = OperationCounts::default();

    // Sub-share encryption: every sender member encrypts k+1 sub-shares of
    // L bits each with a shared ephemeral key.
    for &x_node in &task.sender_members {
        for y in 0..block_size {
            // Shared `c1` through the generator table plus one
            // variable-base pow per bit for the key terms.
            counts.fixed_base_exponentiations += 1;
            counts.exponentiations += bits;
            counts.group_multiplications += bits;
            let bytes = (bits + 1) * elem_bytes;
            traffic.record(x_node, sender_vertex, bytes);
            counts.bytes_sent += bytes;
            let wire =
                dstress_transfer::wire::subshares_wire_len(y, bits as usize, elem_bytes as usize);
            traffic.record_wire(x_node, sender_vertex, wire);
            counts.wire_bytes += wire;
        }
    }
    // Homomorphic aggregation and noise folding at vertex i: one shared
    // `c1` product plus L `c2` products per receiver, then a table-backed
    // noise encoding per bit.
    counts.group_multiplications += (block_size as u64) * (bits + 1) * (block_size as u64 - 1);
    counts.fixed_base_exponentiations += block_size as u64 * bits; // noise encodings
    counts.group_multiplications += block_size as u64 * bits;

    // i -> j.
    let forwarded = block_size as u64 * bits * 2 * elem_bytes;
    traffic.record(sender_vertex, receiver_vertex, forwarded);
    counts.bytes_sent += forwarded;
    let wire =
        dstress_transfer::wire::aggregated_wire_len(block_size, bits as usize, elem_bytes as usize);
    traffic.record_wire(sender_vertex, receiver_vertex, wire);
    counts.wire_bytes += wire;

    // j adjusts, distributes, members decrypt.
    for &y_node in &task.receiver_members {
        let member_bytes = bits * 2 * elem_bytes;
        traffic.record(receiver_vertex, y_node, member_bytes);
        counts.bytes_sent += member_bytes;
        let wire = dstress_transfer::wire::adjusted_wire_len(bits as usize, elem_bytes as usize);
        traffic.record_wire(receiver_vertex, y_node, wire);
        counts.wire_bytes += wire;
        counts.exponentiations += 1; // adjust of the shared ephemeral
        counts.fixed_base_exponentiations += bits; // fused table decrypts
    }
    counts.rounds += 3;

    // Correct, fresh re-sharing of the message for the receiving block.
    let sender_shares: Vec<BitMessage> = task
        .shares
        .iter()
        .map(|bits| BitMessage::from_bits(bits))
        .collect();
    let message = xor_reconstruct(&sender_shares).expect("sender shares are non-empty");
    let receiver_shares = split_xor(message, task.receiver_members.len(), &mut rng);
    TransferOutcome {
        to: task.to,
        in_slot: task.in_slot,
        receiver_shares: receiver_shares.iter().map(BitMessage::to_bits).collect(),
        counts,
        traffic: traffic.sorted_node_entries(),
    }
}
