//! The circuit-level vertex-program interface.
//!
//! The plaintext [`dstress_graph::VertexProgram`] trait describes *what* a
//! vertex program computes; [`SecureVertexProgram`] describes the same
//! program as Boolean circuits so that the runtime can execute it under
//! GMW.  The two descriptions of each case-study program are tested
//! against each other in `dstress-finance`.
//!
//! Layout conventions (all words are little-endian bit vectors):
//!
//! * the **update circuit** takes `state_bits` wires of current state
//!   followed by `D · message_bits` wires of incoming messages (slot `d`
//!   carries the message from the vertex's `d`-th in-neighbour, or the
//!   no-op message `⊥ = 0` if there is no such neighbour), and produces
//!   `state_bits` wires of new state followed by `D · message_bits` wires
//!   of outgoing messages (slot `d` is sent to the `d`-th out-neighbour);
//! * the **aggregation circuit** takes `N · state_bits` wires (the final
//!   state of every vertex) and produces `aggregate_bits` wires that
//!   decode to the pre-noise output.

use dstress_circuit::spec::ProgramSpec;
use dstress_circuit::Circuit;
use dstress_graph::{Graph, VertexId};

/// A vertex program expressed as Boolean circuits.
pub trait SecureVertexProgram {
    /// Width of the per-vertex state encoding, in bits.
    fn state_bits(&self) -> u32;

    /// Width of a message, in bits (the runtime's `L`).
    fn message_bits(&self) -> u32;

    /// Width of the aggregation output, in bits.
    fn aggregate_bits(&self) -> u32;

    /// Number of computation/communication iterations.
    fn iterations(&self) -> u32;

    /// Sensitivity bound of the aggregate (in the same units as
    /// [`Self::decode_aggregate`]).
    fn sensitivity(&self) -> f64;

    /// Encodes the initial state of vertex `v` as `state_bits` bits.
    ///
    /// The encoding may depend on the graph (e.g. per-edge debts are laid
    /// out in the order of `graph.out_neighbors(v)` /
    /// `graph.in_neighbors(v)`).
    fn encode_initial_state(&self, graph: &Graph, v: VertexId) -> Vec<bool>;

    /// Builds the per-vertex update circuit for degree bound `degree_bound`.
    fn update_circuit(&self, degree_bound: usize) -> Circuit;

    /// Builds the aggregation circuit over `vertices` final states.
    fn aggregation_circuit(&self, vertices: usize) -> Circuit;

    /// Decodes the aggregation circuit's output bits into the scalar the
    /// program reports (e.g. the total dollar shortfall).
    fn decode_aggregate(&self, bits: &[bool]) -> f64;

    /// Declares the analysis specification for `dstress-analyze`: named
    /// state/message words with value ranges (inductive invariants over
    /// the rounds) and the model under which the declared sensitivity is
    /// certified.
    ///
    /// The default is [`ProgramSpec::unspecified`], which the analyzer
    /// reports as a finding: every program meant for calibrated releases
    /// must override this.
    fn analysis_spec(&self, degree_bound: usize) -> ProgramSpec {
        let _ = degree_bound;
        ProgramSpec::unspecified("unannotated program")
    }
}

/// Executes a [`SecureVertexProgram`] entirely in plaintext by evaluating
/// its circuits directly (no blocks, no MPC, no noise).
///
/// This is the exact "ideal functionality" of the secure runtime: the
/// engine in [`crate::engine`] is tested to produce the same pre-noise
/// aggregate, and the finance crate uses it to compare the circuit
/// encodings of its models against their plaintext implementations.
pub fn execute_plaintext<P: SecureVertexProgram>(graph: &Graph, program: &P) -> f64 {
    let n = graph.vertex_count();
    let d = graph.degree_bound();
    let state_bits = program.state_bits() as usize;
    let message_bits = program.message_bits() as usize;
    let update = program.update_circuit(d);

    let mut states: Vec<Vec<bool>> = graph
        .vertices()
        .map(|v| program.encode_initial_state(graph, v))
        .collect();
    let mut inboxes: Vec<Vec<Vec<bool>>> = vec![vec![vec![false; message_bits]; d]; n];

    let run_update =
        |states: &mut Vec<Vec<bool>>, inboxes: &Vec<Vec<Vec<bool>>>| -> Vec<Vec<Vec<bool>>> {
            let mut outgoing = vec![vec![vec![false; message_bits]; d]; n];
            for v in graph.vertices() {
                let mut inputs = states[v.0].clone();
                for slot in &inboxes[v.0] {
                    inputs.extend_from_slice(slot);
                }
                let outputs = dstress_circuit::evaluate(&update, &inputs)
                    .expect("program circuits accept their own encoding");
                states[v.0] = outputs[..state_bits].to_vec();
                for (slot, out) in outgoing[v.0].iter_mut().enumerate() {
                    let start = state_bits + slot * message_bits;
                    *out = outputs[start..start + message_bits].to_vec();
                }
            }
            outgoing
        };

    for _ in 0..program.iterations() {
        let outgoing = run_update(&mut states, &inboxes);
        for v in graph.vertices() {
            for (out_slot, &to) in graph.out_neighbors(v).iter().enumerate() {
                let in_slot = graph
                    .in_neighbors(to)
                    .iter()
                    .position(|&src| src == v)
                    .expect("out-edge implies matching in-edge");
                inboxes[to.0][in_slot] = outgoing[v.0][out_slot].clone();
            }
        }
    }
    let _ = run_update(&mut states, &inboxes);

    let mut agg_inputs = Vec::with_capacity(n * state_bits);
    for state in &states {
        agg_inputs.extend_from_slice(state);
    }
    let aggregation = program.aggregation_circuit(n);
    let bits = dstress_circuit::evaluate(&aggregation, &agg_inputs)
        .expect("aggregation circuit accepts the final states");
    program.decode_aggregate(&bits)
}

/// A minimal secure vertex program used by tests, examples and
/// microbenchmarks.
///
/// Each vertex's state is a counter initialised to `v + 1`; every
/// iteration it adds all incoming messages to its counter and sends the
/// new value to every out-neighbour; the aggregate is the sum of the final
/// counters.  It exercises every part of the runtime (state sharing, MPC
/// update, message transfer, aggregation) with the smallest possible
/// circuits.
pub struct CounterProgram {
    /// Word width of the counter and the messages.
    pub width: u32,
    /// Number of iterations to run.
    pub rounds: u32,
}

mod counter_impl {
    use super::{CounterProgram, SecureVertexProgram};
    use dstress_circuit::builder::{decode_word, encode_word, CircuitBuilder};
    use dstress_circuit::spec::{ProgramSpec, SensitivityModel, Taint, WordSpec};
    use dstress_circuit::Circuit;
    use dstress_graph::{Graph, VertexId};

    impl SecureVertexProgram for CounterProgram {
        fn state_bits(&self) -> u32 {
            self.width
        }

        fn message_bits(&self) -> u32 {
            self.width
        }

        fn aggregate_bits(&self) -> u32 {
            2 * self.width
        }

        fn iterations(&self) -> u32 {
            self.rounds
        }

        fn sensitivity(&self) -> f64 {
            1.0
        }

        fn encode_initial_state(&self, _graph: &Graph, v: VertexId) -> Vec<bool> {
            encode_word(v.0 as u64 + 1, self.width)
        }

        fn update_circuit(&self, degree_bound: usize) -> Circuit {
            let mut b = CircuitBuilder::new();
            let state = b.input_word(self.width);
            let incoming: Vec<_> = (0..degree_bound)
                .map(|_| b.input_word(self.width))
                .collect();
            let mut new_state = state.clone();
            for msg in &incoming {
                new_state = b.add(&new_state, msg);
            }
            b.output_word(&new_state);
            for _ in 0..degree_bound {
                b.output_word(&new_state);
            }
            b.build().expect("builder circuits are well formed")
        }

        fn aggregation_circuit(&self, vertices: usize) -> Circuit {
            let mut b = CircuitBuilder::new();
            let states: Vec<_> = (0..vertices).map(|_| b.input_word(self.width)).collect();
            let wide: Vec<_> = states
                .iter()
                .map(|s| b.zero_extend(s, 2 * self.width))
                .collect();
            let total = b.sum(&wide);
            b.output_word(&total);
            b.build().expect("builder circuits are well formed")
        }

        fn decode_aggregate(&self, bits: &[bool]) -> f64 {
            decode_word(bits) as f64
        }

        fn analysis_spec(&self, _degree_bound: usize) -> ProgramSpec {
            ProgramSpec {
                name: "counter".to_string(),
                state_words: vec![WordSpec {
                    name: "count".to_string(),
                    width: self.width,
                    range: None,
                    taint: Taint::Private,
                }],
                message_words: vec![WordSpec {
                    name: "count".to_string(),
                    width: self.width,
                    range: None,
                    taint: Taint::Private,
                }],
                sensitivity_model: SensitivityModel::Modular {
                    reason: "benchmark counter: wrapping sums exercise the runtime; its \
                             releases are never calibrated"
                        .to_string(),
                },
                modular: true,
                dominance: Vec::new(),
                message_sum_cap: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_circuit::builder::decode_word;
    use dstress_circuit::evaluate;

    #[test]
    fn counter_update_circuit_has_expected_shape() {
        let p = CounterProgram {
            width: 8,
            rounds: 2,
        };
        let c = p.update_circuit(3);
        assert_eq!(c.num_inputs(), 8 + 3 * 8);
        assert_eq!(c.outputs().len(), 8 + 3 * 8);
        // state 5, messages 1, 2, 3 → new state 11 broadcast to all slots.
        let mut inputs = dstress_circuit::builder::encode_word(5, 8);
        for m in [1u64, 2, 3] {
            inputs.extend(dstress_circuit::builder::encode_word(m, 8));
        }
        let out = evaluate(&c, &inputs).unwrap();
        assert_eq!(decode_word(&out[..8]), 11);
        assert_eq!(decode_word(&out[8..16]), 11);
        assert_eq!(decode_word(&out[24..32]), 11);
    }

    #[test]
    fn counter_aggregation_circuit_sums() {
        let p = CounterProgram {
            width: 8,
            rounds: 1,
        };
        let c = p.aggregation_circuit(3);
        assert_eq!(c.num_inputs(), 24);
        let mut inputs = Vec::new();
        for v in [10u64, 200, 45] {
            inputs.extend(dstress_circuit::builder::encode_word(v, 8));
        }
        let out = evaluate(&c, &inputs).unwrap();
        assert_eq!(p.decode_aggregate(&out), 255.0);
        assert_eq!(p.aggregate_bits(), 16);
    }
}
