//! The DStress execution engine (§3.3–§3.6).
//!
//! One call to [`DStressRuntime::execute`] performs a complete DStress
//! run over a graph and a [`SecureVertexProgram`]:
//!
//! 1. **One-time setup** — every node generates keys, the trusted party
//!    assigns blocks and issues block certificates (`dstress-transfer`).
//! 2. **Initialization step** — every node XOR-shares its initial vertex
//!    state and `D` no-op messages among its block.
//! 3. **Computation steps** — each block evaluates the program's update
//!    circuit under GMW; inputs and outputs stay secret-shared.
//! 4. **Communication steps** — for every edge, the message transfer
//!    protocol moves the outgoing-message shares from the sender's block
//!    to the receiver's block.
//! 5. **Aggregation + noising** — the blocks re-share their final states
//!    into the aggregation block, which evaluates the aggregation circuit
//!    and the noising circuit under GMW and releases only the noised
//!    aggregate (Laplace mechanism, sensitivity supplied by the program).
//!
//! The engine measures, per phase, the operation counts, bytes on the
//! simulated wire and wall-clock time, which is exactly the breakdown
//! reported in Figure 5 of the paper.
//!
//! ## Block-streaming execution
//!
//! Both entry points drive the same windowed pipeline: a phase's
//! independent blocks are walked window by window, every task seeded by
//! its *global* index.  [`DStressRuntime::execute`] uses a single window
//! (everything in flight at once); [`DStressRuntime::execute_streaming`]
//! bounds the window by the worker count ([`BLOCKS_PER_WORKER`] blocks
//! per worker), materialises only the in-flight blocks' GMW state and
//! outgoing shares, and drops them as soon as the window's transfers are
//! delivered.  Persistent per-vertex state lives behind the pluggable
//! [`crate::store::StateStore`] layer: the state shares plus one inbox
//! slot per *actual* in-edge, double-buffered across rounds, held either
//! fully in memory or paged to a run-scoped spill directory when the
//! packed stores exceed
//! [`DStressConfig::state_budget_bytes`](crate::config::DStressConfig).
//! The two schedules — and both [`crate::config::ConcurrencyMode`]s, and
//! both store backends — are bit-identical in outputs, counts and
//! traffic; only peak memory and wall-clock differ, which is what lets
//! measured sweeps continue past the old full-materialisation wall.
//!
//! ## Checkpoints and recovery
//!
//! With [`DStressConfig::checkpoint`](crate::config::DStressConfig) set,
//! the engine writes a checkpoint at each configured round swap: a
//! `Wire`-encoded manifest (round index, RNG position, accumulated phase
//! costs, traffic snapshot, segment digests) followed by every packed
//! store segment.  [`DStressRuntime::resume`] rehydrates the newest
//! checkpoint and continues the run — the restored RNG position makes
//! every remaining draw identical, so the resumed run releases a
//! bit-identical value with identical operation counts and wire bytes.

use crate::config::{DStressConfig, TransferMode};
use crate::exec::{
    mpc_transport, BlockStepTask, LocalExecutor, StepContext, StepExecutor, TransferTask,
};
use crate::noise_circuit::noising_circuit;
use crate::program::SecureVertexProgram;
use crate::store::{
    collect_segments, digest64, load_latest_checkpoint, packed_bytes, restore_store,
    write_checkpoint, MemStore, RunDirGuard, SpillStore, StateStore, StoreError,
};
use crate::wire::{CheckpointManifest, EngineMsg};
use core::fmt;
use dstress_circuit::CircuitError;
use dstress_crypto::dlog::DlogTable;
use dstress_crypto::group::Group;
use dstress_crypto::sharing::split_xor_bit;
use dstress_dp::laplace::LaplaceMechanism;
use dstress_graph::{Graph, VertexId};
use dstress_math::rng::{DetRng, SplitMix64, Xoshiro256};
use dstress_mpc::gmw::{reconstruct_outputs, GmwConfig, GmwProtocol};
use dstress_mpc::party::{derive_seed, OtConfig};
use dstress_mpc::MpcError;
use dstress_net::cost::OperationCounts;
use dstress_net::pool::windowed;
use dstress_net::traffic::{NodeId, TrafficAccountant};
use dstress_net::wire::{Wire, WireError};
use dstress_transfer::setup::{
    generate_block_assignment, generate_system, NodeSecrets, SystemSetup,
};
use dstress_transfer::TransferError;
use std::time::Instant; // lint:allow-nondeterminism -- metrics timing import

/// Errors produced by the runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// Setup or message transfer failed.
    Transfer(TransferError),
    /// An MPC execution failed.
    Mpc(MpcError),
    /// A program circuit was malformed.
    Circuit(CircuitError),
    /// The graph exceeds the degree bound it declares (never produced by
    /// [`dstress_graph::Graph`], but checked defensively for hand-built
    /// inputs).
    DegreeBoundViolated {
        /// The offending vertex.
        vertex: usize,
    },
    /// An engine control message failed to decode from its wire bytes.
    Wire(WireError),
    /// A deployment executor failed: a worker connection broke, a worker
    /// returned malformed results, or the placement cannot run the
    /// configured mode (remote workers hold no key material, so
    /// real-crypto transfers are local-only).
    Deploy(String),
    /// The state-store layer failed: a spill or checkpoint file could not
    /// be read or written, or failed validation.
    Store(StoreError),
    /// Checkpoint/resume consistency failed: no checkpoint to resume
    /// from, or the checkpoint belongs to a different run shape.
    Checkpoint {
        /// What was inconsistent.
        context: String,
    },
    /// The run halted deliberately after writing the checkpoint for the
    /// given round — the crash-injection exit of
    /// [`crate::config::DStressConfig::halt_after_round`], used by the
    /// kill-and-resume tests and recovery drills.  Not a failure: the
    /// checkpoint on disk is complete and resumable.
    Halted {
        /// The round whose swap was checkpointed before halting.
        round: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Transfer(e) => write!(f, "transfer error: {e}"),
            RuntimeError::Mpc(e) => write!(f, "mpc error: {e}"),
            RuntimeError::Circuit(e) => write!(f, "circuit error: {e}"),
            RuntimeError::DegreeBoundViolated { vertex } => {
                write!(f, "vertex {vertex} exceeds the declared degree bound")
            }
            RuntimeError::Wire(e) => write!(f, "engine wire format error: {e}"),
            RuntimeError::Deploy(context) => write!(f, "deployment error: {context}"),
            RuntimeError::Store(e) => write!(f, "state store error: {e}"),
            RuntimeError::Checkpoint { context } => write!(f, "checkpoint error: {context}"),
            RuntimeError::Halted { round } => {
                write!(f, "run halted after checkpointing round {round}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<StoreError> for RuntimeError {
    fn from(e: StoreError) -> Self {
        RuntimeError::Store(e)
    }
}

impl From<TransferError> for RuntimeError {
    fn from(e: TransferError) -> Self {
        RuntimeError::Transfer(e)
    }
}

impl From<MpcError> for RuntimeError {
    fn from(e: MpcError) -> Self {
        RuntimeError::Mpc(e)
    }
}

impl From<CircuitError> for RuntimeError {
    fn from(e: CircuitError) -> Self {
        RuntimeError::Circuit(e)
    }
}

impl From<WireError> for RuntimeError {
    fn from(e: WireError) -> Self {
        RuntimeError::Wire(e)
    }
}

/// Measured cost of one execution phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseCosts {
    /// Operation counts accumulated during the phase.
    pub counts: OperationCounts,
    /// Wall-clock seconds spent in the phase by the (in-process) simulation.
    pub wall_seconds: f64,
}

/// Per-phase cost breakdown of a run (the Figure 5 stacking).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseBreakdown {
    /// Share generation and distribution of initial states.
    pub initialization: PhaseCosts,
    /// All GMW computation steps (including the final one).
    pub computation: PhaseCosts,
    /// All message transfers.
    pub communication: PhaseCosts,
    /// Re-sharing into the aggregation block, aggregation MPC, noising.
    pub aggregation: PhaseCosts,
}

impl PhaseBreakdown {
    /// Sum of the per-phase operation counts.
    pub fn total_counts(&self) -> OperationCounts {
        let mut total = self.initialization.counts;
        total.add(&self.computation.counts);
        total.add(&self.communication.counts);
        total.add(&self.aggregation.counts);
        total
    }

    /// Sum of the per-phase wall-clock seconds.
    pub fn total_wall_seconds(&self) -> f64 {
        self.initialization.wall_seconds
            + self.computation.wall_seconds
            + self.communication.wall_seconds
            + self.aggregation.wall_seconds
    }
}

/// The result of one DStress run.
#[derive(Clone, Debug)]
pub struct DStressRun {
    /// The differentially-private output released by the aggregation block.
    pub noised_output: f64,
    /// The pre-noise aggregate (available to the evaluation harness only;
    /// a deployment would never reveal it).
    pub ideal_output: f64,
    /// Per-phase cost breakdown.
    pub phases: PhaseBreakdown,
    /// Per-node traffic measured on the simulated wire.
    pub traffic: TrafficAccountant,
    /// Number of iterations executed.
    pub iterations: u32,
    /// Block size `k + 1` used for the run.
    pub block_size: usize,
    /// High-water mark of the bytes the state-store layer held resident
    /// in memory (packed words of resident segments, summed over the
    /// state store and both inbox buffers), sampled at phase boundaries.
    /// With the in-memory backend this is simply the packed store size;
    /// with the spilling backend it stays within the configured budget
    /// (plus segment-granularity slack).
    pub store_resident_peak_bytes: usize,
    /// High-water mark of the spill files' total size in bytes — 0 when
    /// the run stayed in memory.  Reported next to peak-heap figures so
    /// memory rows stay honest when spill is active.
    pub spill_file_bytes: u64,
}

impl DStressRun {
    /// Mean bytes sent per participating node — the quantity Figures 4–6
    /// report as "traffic per node".
    pub fn mean_bytes_per_node(&self) -> f64 {
        self.traffic.report().mean_bytes_sent_per_node
    }
}

/// The DStress runtime.
#[derive(Clone, Debug)]
pub struct DStressRuntime {
    config: DStressConfig,
}

impl DStressRuntime {
    /// Creates a runtime with the given configuration.
    pub fn new(config: DStressConfig) -> Self {
        DStressRuntime { config }
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &DStressConfig {
        &self.config
    }

    /// Executes `program` over `graph` and returns the run record.
    ///
    /// This is the fully materialised schedule: every block of a phase is
    /// in flight at once (a single window).  See
    /// [`Self::execute_streaming`] for the bounded-memory schedule; the
    /// two are bit-identical for the same configuration and graph.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if setup, any MPC, or any transfer fails.
    pub fn execute<P: SecureVertexProgram>(
        &self,
        graph: &Graph,
        program: &P,
    ) -> Result<DStressRun, RuntimeError> {
        self.run_windowed(graph, program, usize::MAX, &LocalExecutor, false)
    }

    /// Resumes an interrupted run from the newest checkpoint in the
    /// configured checkpoint directory and continues it to completion.
    ///
    /// The checkpoint manifest's RNG position makes every remaining draw
    /// identical to the uninterrupted run, so the resumed run releases a
    /// bit-identical value with identical operation counts, wire bytes
    /// and traffic.  `graph`, `program` and the configuration must match
    /// the original run — a fingerprint in the manifest rejects resuming
    /// against a different run shape.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Checkpoint`] if no checkpoint directory is
    /// configured, no checkpoint exists, or the checkpoint belongs to a
    /// different run; otherwise as [`Self::execute`].
    pub fn resume<P: SecureVertexProgram>(
        &self,
        graph: &Graph,
        program: &P,
    ) -> Result<DStressRun, RuntimeError> {
        self.run_windowed(graph, program, usize::MAX, &LocalExecutor, true)
    }

    /// [`Self::resume`] through a custom [`StepExecutor`] — the recovery
    /// entry point of the master/worker deployment layer.
    ///
    /// # Errors
    ///
    /// As [`Self::resume`].
    pub fn resume_with<P: SecureVertexProgram>(
        &self,
        graph: &Graph,
        program: &P,
        executor: &dyn StepExecutor,
    ) -> Result<DStressRun, RuntimeError> {
        self.run_windowed(graph, program, usize::MAX, executor, true)
    }

    /// Executes `program` over `graph` with the fully materialised
    /// schedule, placing each window's independent tasks through the
    /// given [`StepExecutor`] — the entry point the master/worker
    /// deployment layer drives.  Placement cannot change results: a
    /// conforming executor is bit-identical to [`Self::execute`].
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if setup, any MPC, any transfer, or the
    /// executor fails.
    pub fn execute_with<P: SecureVertexProgram>(
        &self,
        graph: &Graph,
        program: &P,
        executor: &dyn StepExecutor,
    ) -> Result<DStressRun, RuntimeError> {
        self.run_windowed(graph, program, usize::MAX, executor, false)
    }

    /// Executes `program` over `graph` with the *block-streaming*
    /// schedule: per phase, only a bounded window of blocks —
    /// [`ConcurrencyMode::worker_threads`](crate::config::ConcurrencyMode)
    /// × [`BLOCKS_PER_WORKER`] — is materialised at a time.  Each
    /// window's vertex MPCs run, their out-edge transfers are delivered,
    /// and the window's working state (GMW wires, outgoing message
    /// shares) is dropped before the next window starts; the only
    /// per-vertex state that persists across rounds is the bit-packed
    /// share store (state plus one inbox slot per actual in-edge).
    ///
    /// Every block and edge task derives its seed from its *global*
    /// index, so the result — outputs, operation counts, traffic — is
    /// bit-identical to [`Self::execute`] and invariant across
    /// [`crate::config::ConcurrencyMode`]s; only peak memory and
    /// wall-clock change.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if setup, any MPC, or any transfer fails.
    pub fn execute_streaming<P: SecureVertexProgram>(
        &self,
        graph: &Graph,
        program: &P,
    ) -> Result<DStressRun, RuntimeError> {
        let window = self
            .config
            .concurrency
            .worker_threads()
            .saturating_mul(BLOCKS_PER_WORKER);
        self.run_windowed(graph, program, window, &LocalExecutor, false)
    }

    /// One-time setup, sized to the transfer mode: real-crypto runs need
    /// every node's key material and `D` certificates per node
    /// (`O(N · D · L)` group elements); cost-accounted runs only need the
    /// block assignment (`O(N · k)` node ids), so that is all they build.
    fn build_setup(
        &self,
        group: &Group,
        n: usize,
        degree_bound: usize,
        message_bits: u32,
        rng: &mut dyn DetRng,
    ) -> Result<(Vec<NodeSecrets>, SystemSetup), RuntimeError> {
        match self.config.transfer_mode {
            TransferMode::RealCrypto => Ok(generate_system(
                group,
                n,
                self.config.collusion_bound,
                degree_bound,
                message_bits,
                rng,
            )?),
            TransferMode::Accounted => Ok((
                Vec::new(),
                generate_block_assignment(
                    n,
                    self.config.collusion_bound,
                    degree_bound,
                    message_bits,
                    rng,
                )?,
            )),
        }
    }

    /// The windowed execution pipeline behind both entry points.
    ///
    /// Within one round, every vertex's computation step is an
    /// independent MPC among its own block, and every edge's message
    /// transfer is an independent protocol run — exactly the concurrency
    /// a real deployment exploits.  The schedule walks those independent
    /// blocks window by window ([`dstress_net::pool::windowed`]); each
    /// task derives its seed from the per-phase master and its *global*
    /// index and accounts into its own counters, merged in index order —
    /// so the window size and the [`crate::config::ConcurrencyMode`]
    /// change peak memory and wall-clock, never a single output bit.
    ///
    /// Message transfers write into a double-buffered inbox
    /// (`inbox_next`), swapped at the end of the round, which is what
    /// lets a window's transfers run before later windows of the same
    /// round have computed.
    fn run_windowed<P: SecureVertexProgram>(
        &self,
        graph: &Graph,
        program: &P,
        window: usize,
        executor: &dyn StepExecutor,
        resume: bool,
    ) -> Result<DStressRun, RuntimeError> {
        let n = graph.vertex_count();
        let degree_bound = graph.degree_bound();
        let block_size = self.config.block_size();
        let state_bits = program.state_bits() as usize;
        let message_bits = program.message_bits() as usize;
        let iterations = program.iterations();
        let group = Group::new(self.config.group);
        let mut rng = Xoshiro256::new(self.config.seed);

        // Load the checkpoint to resume from before doing any work, so a
        // missing/foreign checkpoint fails fast.
        let resume_state = if resume {
            let Some(checkpoint) = &self.config.checkpoint else {
                return Err(RuntimeError::Checkpoint {
                    context: "resume requested but no checkpoint directory is configured"
                        .to_string(),
                });
            };
            Some(load_latest_checkpoint(&checkpoint.dir)?)
        } else {
            None
        };

        // ---- One-time setup --------------------------------------------
        let (secrets, setup) =
            self.build_setup(&group, n, degree_bound, program.message_bits(), &mut rng)?;
        let dlog = match self.config.transfer_mode {
            TransferMode::RealCrypto => {
                Some(DlogTable::new_signed(&group, self.config.dlog_window))
            }
            TransferMode::Accounted => None,
        };
        let mut traffic = TrafficAccountant::new();

        // Per-vertex offsets into the packed inbox: one slot per *actual*
        // in-edge (slots past the in-degree hold the all-zero no-op share
        // forever and are padded in on demand, never stored).
        let mut in_offset = vec![0usize; n + 1];
        for v in graph.vertices() {
            if graph.out_degree(v) > degree_bound || graph.in_degree(v) > degree_bound {
                return Err(RuntimeError::DegreeBoundViolated { vertex: v.0 });
            }
            in_offset[v.0 + 1] = in_offset[v.0] + graph.in_degree(v);
        }
        let inbox_rows = in_offset[n] * block_size;
        let state_rows = n * block_size;

        // The run-shape fingerprint checkpoints carry: a resume against a
        // different graph, program width, seed or iteration count is
        // rejected instead of silently diverging.
        let fingerprint = {
            let mut bytes = Vec::with_capacity(64);
            for value in [
                n as u64,
                in_offset[n] as u64,
                degree_bound as u64,
                block_size as u64,
                state_bits as u64,
                message_bits as u64,
                self.config.seed,
                u64::from(iterations),
            ] {
                bytes.extend_from_slice(&value.to_le_bytes());
            }
            digest64(&bytes)
        };
        if let Some((manifest, _)) = &resume_state {
            if manifest.fingerprint != fingerprint || manifest.iterations != u64::from(iterations) {
                return Err(RuntimeError::Checkpoint {
                    context: format!(
                        "checkpoint fingerprint {:016x} does not match this run's {:016x} — \
                         it belongs to a different graph, program or configuration",
                        manifest.fingerprint, fingerprint
                    ),
                });
            }
        }

        // ---- State stores ------------------------------------------------
        // Declared before the stores so its `Drop` (removing the whole
        // run-scoped spill directory) runs after theirs, on every exit
        // path — success, error, or injected halt.
        let spill_guard = match self.config.state_budget_bytes {
            Some(budget)
                if packed_bytes(state_rows, state_bits)
                    + 2 * packed_bytes(inbox_rows, message_bits)
                    > budget =>
            {
                Some(RunDirGuard::create(
                    self.config.spill_dir.as_deref(),
                    self.config.seed,
                )?)
            }
            _ => None,
        };
        // Persistent share state behind the store trait: the state rows
        // (row v · block + member) and the double-buffered inboxes (row
        // (in_offset[v] + slot) · block + member), either fully resident
        // or paged against the byte budget, split proportionally.
        type BoxedStore = Box<dyn StateStore>;
        let (mut state_store, mut inbox_store, mut inbox_next): (
            BoxedStore,
            BoxedStore,
            BoxedStore,
        ) = match (&spill_guard, self.config.state_budget_bytes) {
            (Some(guard), Some(budget)) => {
                let state_bytes = packed_bytes(state_rows, state_bits);
                let inbox_bytes = packed_bytes(inbox_rows, message_bits);
                let total = (state_bytes + 2 * inbox_bytes).max(1);
                let state_budget = budget * state_bytes / total;
                let inbox_budget = budget * inbox_bytes / total;
                (
                    Box::new(SpillStore::create(
                        state_rows,
                        state_bits,
                        state_budget,
                        guard.path().join("state.log"),
                    )?),
                    Box::new(SpillStore::create(
                        inbox_rows,
                        message_bits,
                        inbox_budget,
                        guard.path().join("inbox-a.log"),
                    )?),
                    Box::new(SpillStore::create(
                        inbox_rows,
                        message_bits,
                        inbox_budget,
                        guard.path().join("inbox-b.log"),
                    )?),
                )
            }
            _ => (
                Box::new(MemStore::new(state_rows, state_bits)),
                Box::new(MemStore::new(inbox_rows, message_bits)),
                Box::new(MemStore::new(inbox_rows, message_bits)),
            ),
        };
        let mut store_resident_peak = 0usize;

        // ---- Initialization step ----------------------------------------
        let initialization;
        let mut computation;
        let mut communication;
        let start_round: u32;
        if let Some((manifest, records)) = resume_state {
            // Rehydrate: stores, RNG position, accumulated costs and
            // traffic — the initialization phase already ran before the
            // checkpoint, so its cost carries over and its work is not
            // repeated.
            restore_store(state_store.as_mut(), 0, &records)?;
            restore_store(inbox_store.as_mut(), 1, &records)?;
            rng = Xoshiro256::from_state(manifest.rng_state);
            initialization = manifest.initialization;
            computation = manifest.computation;
            communication = manifest.communication;
            for (id, t) in &manifest.traffic {
                traffic.add_node_traffic(*id, t);
            }
            start_round = manifest.round as u32;
        } else {
            let init_start = Instant::now(); // lint:allow-nondeterminism -- wall-clock metrics only, never touches shares
            let mut init_counts = OperationCounts::default();
            for v in graph.vertices() {
                let initial = program.encode_initial_state(graph, v);
                debug_assert_eq!(initial.len(), state_bits, "program state encoding width");
                let mut shares = share_bits(&initial, block_size, &mut rng);
                // Each member other than the owner receives its state share and
                // D no-op message shares — as a real bit-packed wire message,
                // whose decoded copy is the share the member actually uses.
                let block = setup.block_of(NodeId(v.0));
                let per_member_bytes =
                    (state_bits as u64 + (degree_bound * message_bits) as u64).div_ceil(8);
                for (m_idx, &member) in block.members.iter().enumerate() {
                    if member == NodeId(v.0) {
                        continue;
                    }
                    traffic.record(NodeId(v.0), member, per_member_bytes);
                    init_counts.bytes_sent += per_member_bytes;
                    let message = EngineMsg::InitShare {
                        state: std::mem::take(&mut shares[m_idx]),
                        inbox: vec![false; degree_bound * message_bits],
                    };
                    let encoded = message.encode();
                    traffic.record_wire(NodeId(v.0), member, encoded.len() as u64);
                    init_counts.wire_bytes += encoded.len() as u64;
                    let EngineMsg::InitShare { state, inbox: noop } =
                        EngineMsg::decode_exact(&encoded)?
                    else {
                        unreachable!("an InitShare was encoded");
                    };
                    shares[m_idx] = state;
                    // The decoded no-op shares are all-zero, which is exactly
                    // what the zero-initialised packed inbox already holds.
                    debug_assert!(noop.iter().all(|&bit| !bit));
                }
                for (m_idx, share) in shares.iter().enumerate() {
                    state_store.write(v.0 * block_size + m_idx, share)?;
                }
            }
            // Every vertex distributes its shares concurrently, so the whole
            // step is one communication round — charging one per vertex would
            // make the latency estimate scale with N instead of depth.
            init_counts.rounds += 1;
            initialization = PhaseCosts {
                counts: init_counts,
                wall_seconds: init_start.elapsed().as_secs_f64(),
            };
            computation = PhaseCosts::default();
            communication = PhaseCosts::default();
            start_round = 0;
        }
        store_resident_peak = store_resident_peak.max(
            state_store.resident_bytes()
                + inbox_store.resident_bytes()
                + inbox_next.resident_bytes(),
        );

        // ---- Iterations ---------------------------------------------------
        let update_circuit = program.update_circuit(degree_bound);
        let window = window.max(1);
        let ctx = StepContext {
            config: &self.config,
            update_circuit: &update_circuit,
            state_bits,
            message_bits,
            message_width: program.message_bits(),
            group: &group,
            setup: &setup,
            secrets: &secrets,
            dlog: dlog.as_ref(),
        };
        // The receiver inbox slot of every edge, in vertex-major (global
        // edge index) order — round-invariant, so the in-neighbour scans
        // happen once per run instead of once per edge per round.  A flat
        // `usize` per edge, the same memory class as the topology itself.
        let edge_in_slots: Vec<usize> = graph
            .vertices()
            .flat_map(|v| {
                graph.out_neighbors(v).iter().map(move |&to| {
                    graph
                        .in_neighbors(to)
                        .iter()
                        .position(|&src| src == v)
                        .expect("out-edge implies matching in-edge")
                })
            })
            .collect();

        for round in start_round..=iterations {
            // Per-phase master seeds, drawn in the same order as the
            // phases themselves run (computation, then communication).
            let comp_seed = rng.next_u64();
            let comm_seed = (round < iterations).then(|| rng.next_u64());
            let mut comp_rounds = 0u64;
            let mut comm_rounds = 0u64;
            // Global edge index in vertex-major order, continued across
            // windows, so edge task seeds are window-invariant.
            let mut edge_index = 0u64;

            for span in windowed(n, window) {
                // Computation step for the window's blocks (the final
                // pass, at `round == iterations`, consumes the last round
                // of messages and produces no outgoing traffic).
                let comp_start = Instant::now(); // lint:allow-nondeterminism -- wall-clock metrics only, never touches shares
                                                 // Task building is sequential and rng-free, so the tasks —
                                                 // and therefore the outcomes any conforming executor
                                                 // computes from them — are bit-identical across window
                                                 // sizes, concurrency modes and placements.
                let tasks: Vec<BlockStepTask> = span
                    .clone()
                    .map(VertexId)
                    .map(|v| {
                        Ok(BlockStepTask {
                            vertex: v.0 as u64,
                            seed: task_seed(comp_seed, v.0 as u64),
                            members: setup.block_of(NodeId(v.0)).members.clone(),
                            out_slots: graph.out_degree(v) as u64,
                            input_shares: gather_block_inputs(
                                graph,
                                v,
                                state_store.as_ref(),
                                inbox_store.as_ref(),
                                &in_offset,
                                block_size,
                                degree_bound,
                                state_bits,
                                message_bits,
                            )?,
                        })
                    })
                    .collect::<Result<_, RuntimeError>>()?;
                let outcomes = executor.run_block_steps(&ctx, tasks)?;
                // The window's outgoing message shares, dropped as soon as
                // its transfers have been delivered: only in-flight blocks
                // are ever materialised.
                let mut window_out: Vec<Vec<Vec<Vec<bool>>>> = Vec::with_capacity(span.len());
                // All vertex MPCs of a step run concurrently: their compute
                // and byte counts sum, but the step's *rounds* are the
                // critical path — the deepest block MPC — not the sum over
                // blocks.
                for (off, outcome) in outcomes.into_iter().enumerate() {
                    let v = span.start + off;
                    for (m_idx, share) in outcome.new_state.iter().enumerate() {
                        state_store.write(v * block_size + m_idx, share)?;
                    }
                    window_out.push(outcome.outgoing);
                    comp_rounds = comp_rounds.max(outcome.counts.rounds);
                    let mut counts = outcome.counts;
                    counts.rounds = 0;
                    computation.counts.merge(&counts);
                    for (id, t) in &outcome.traffic {
                        traffic.add_node_traffic(*id, t);
                    }
                }
                computation.wall_seconds += comp_start.elapsed().as_secs_f64();
                let Some(comm_seed) = comm_seed else {
                    continue;
                };

                // Communication step for the window's out-edges, delivered
                // into the next round's inbox buffer.
                let comm_start = Instant::now(); // lint:allow-nondeterminism -- wall-clock metrics only, never touches shares
                let mut tasks: Vec<TransferTask> = Vec::new();
                for (off, out_msgs) in window_out.iter().enumerate() {
                    let v = VertexId(span.start + off);
                    for (out_slot, &to) in graph.out_neighbors(v).iter().enumerate() {
                        let in_slot = edge_in_slots[edge_index as usize];
                        tasks.push(TransferTask {
                            edge_index,
                            seed: task_seed(comm_seed, edge_index),
                            from: v.0 as u64,
                            to: to.0 as u64,
                            in_slot: in_slot as u64,
                            sender_members: setup.block_of(NodeId(v.0)).members.clone(),
                            receiver_members: setup.block_of(NodeId(to.0)).members.clone(),
                            shares: out_msgs[out_slot].clone(),
                        });
                        edge_index += 1;
                    }
                }
                let outcomes = executor.run_transfers(&ctx, tasks)?;
                // Edge transfers of a step are likewise concurrent: rounds
                // are the per-step maximum, not edge-count × 3.
                for outcome in outcomes {
                    let base =
                        (in_offset[outcome.to as usize] + outcome.in_slot as usize) * block_size;
                    for (m_idx, share) in outcome.receiver_shares.iter().enumerate() {
                        inbox_next.write(base + m_idx, share)?;
                    }
                    comm_rounds = comm_rounds.max(outcome.counts.rounds);
                    let mut counts = outcome.counts;
                    counts.rounds = 0;
                    communication.counts.merge(&counts);
                    for (id, t) in &outcome.traffic {
                        traffic.add_node_traffic(*id, t);
                    }
                }
                communication.wall_seconds += comm_start.elapsed().as_secs_f64();
                // `window_out` (and the per-edge share clones) die here:
                // the next window starts from persistent packed state only.
            }

            computation.counts.rounds += comp_rounds;
            if comm_seed.is_none() {
                break;
            }
            communication.counts.rounds += comm_rounds;
            // Every in-slot with an edge was overwritten by a transfer, so
            // the swap is a complete hand-over to the next round.
            std::mem::swap(&mut inbox_store, &mut inbox_next);
            store_resident_peak = store_resident_peak.max(
                state_store.resident_bytes()
                    + inbox_store.resident_bytes()
                    + inbox_next.resident_bytes(),
            );

            // Round-boundary checkpoint: everything a resumed run needs is
            // the post-swap state + inbox stores, the RNG position, and
            // the accumulated costs — `inbox_next` is fully overwritten
            // before it is read again, so it is never checkpointed.
            let halt_here = self.config.halt_after_round == Some(u64::from(round));
            if let Some(checkpoint) = &self.config.checkpoint {
                if (u64::from(round) + 1) % checkpoint.cadence() == 0 || halt_here {
                    let (digests, records) =
                        collect_segments(&[(0, state_store.as_ref()), (1, inbox_store.as_ref())])?;
                    let manifest = CheckpointManifest {
                        round: u64::from(round) + 1,
                        iterations: u64::from(iterations),
                        fingerprint,
                        rng_state: rng.state(),
                        initialization,
                        computation,
                        communication,
                        traffic: traffic.sorted_node_entries(),
                        segments: digests,
                    };
                    write_checkpoint(&checkpoint.dir, &manifest, &records)?;
                }
            }
            if halt_here {
                return Err(RuntimeError::Halted {
                    round: u64::from(round),
                });
            }
        }

        // ---- Aggregation + noising ----------------------------------------
        let agg_start = Instant::now(); // lint:allow-nondeterminism -- wall-clock metrics only, never touches shares
        let mut agg_counts = OperationCounts::default();
        let agg_block = &setup.aggregation_block;

        // Re-share every vertex's state into the aggregation block: each
        // block member splits its share into |B_A| sub-shares and sends one
        // to each aggregation-block member.
        let mut agg_input_shares: Vec<Vec<bool>> =
            vec![Vec::with_capacity(n * state_bits); block_size];
        for v in graph.vertices() {
            let block = setup.block_of(NodeId(v.0));
            // Accumulated share of this vertex's state per BA member.
            let mut ba_shares = vec![vec![false; state_bits]; block_size];
            let share_bytes = (state_bits as u64).div_ceil(8);
            for (m_idx, &member) in block.members.iter().enumerate() {
                // sub[ba_idx][bit]: this member's sub-share toward each
                // aggregation-block member.
                let mut member_state = Vec::with_capacity(state_bits);
                state_store.read_into(v.0 * block_size + m_idx, &mut member_state)?;
                let mut sub = vec![vec![false; state_bits]; block_size];
                for (bit, &value) in member_state.iter().enumerate() {
                    let subshares = split_xor_bit(value, block_size, &mut rng);
                    for (ba_idx, s) in subshares.into_iter().enumerate() {
                        sub[ba_idx][bit] = s;
                    }
                }
                // One bit-packed wire message per aggregation-block
                // member; the decoded copy is what gets folded in.
                for (ba_idx, (&ba_member, bits)) in agg_block.members.iter().zip(sub).enumerate() {
                    traffic.record(member, ba_member, share_bytes);
                    agg_counts.bytes_sent += share_bytes;
                    let encoded = EngineMsg::AggShare { bits }.encode();
                    traffic.record_wire(member, ba_member, encoded.len() as u64);
                    agg_counts.wire_bytes += encoded.len() as u64;
                    let EngineMsg::AggShare { bits } = EngineMsg::decode_exact(&encoded)? else {
                        unreachable!("an AggShare was encoded");
                    };
                    for (bit, b) in bits.into_iter().enumerate() {
                        ba_shares[ba_idx][bit] ^= b;
                    }
                }
            }
            for (ba_idx, share) in ba_shares.into_iter().enumerate() {
                agg_input_shares[ba_idx].extend(share);
            }
        }
        agg_counts.rounds += 1;

        // Aggregation MPC.
        let agg_circuit = program.aggregation_circuit(n);
        let agg_node_ids = agg_block.members.clone();
        let protocol = GmwProtocol::new(
            GmwConfig::with_node_ids(agg_node_ids.clone()).with_batching(self.config.gmw_batching),
        )?;
        let ot = OtConfig::extension();
        // The aggregation and noising MPCs run on the configured transport
        // backend, like every block MPC: the backend is bit-invisible.
        let transport = mpc_transport(self.config.transport);
        let agg_exec = protocol.execute_on(
            &*transport,
            &agg_circuit,
            &agg_input_shares,
            &ot,
            &mut traffic,
            &mut rng,
        )?;
        agg_counts.add(&agg_exec.counts);
        let aggregate_bits = reconstruct_outputs(&agg_exec.output_shares)?;
        let ideal_output = program.decode_aggregate(&aggregate_bits);

        // Noising MPC: the aggregation block evaluates the distributed
        // noise-generation circuit on jointly-contributed random bits.  Its
        // cost is charged here; the released value itself uses the Laplace
        // mechanism seeded from the members' joint randomness (see
        // `DESIGN.md` for the substitution note).
        let noise_circ = noising_circuit(program.aggregate_bits(), 64, 0);
        let noise_inputs: Vec<Vec<bool>> = (0..block_size)
            .map(|_| {
                (0..noise_circ.num_inputs())
                    .map(|_| rng.next_bool())
                    .collect()
            })
            .collect();
        let noise_exec = protocol.execute_on(
            &*transport,
            &noise_circ,
            &noise_inputs,
            &ot,
            &mut traffic,
            &mut rng,
        )?;
        agg_counts.add(&noise_exec.counts);

        // Joint seed: one contribution per aggregation-block member.
        let joint_seed = (0..block_size).fold(0u64, |acc, _| acc ^ rng.next_u64());
        let mechanism = LaplaceMechanism::new(program.sensitivity(), self.config.epsilon);
        let mut noise_rng = SplitMix64::new(joint_seed);
        let noised_output = mechanism.release(ideal_output, &mut noise_rng);

        let aggregation = PhaseCosts {
            counts: agg_counts,
            wall_seconds: agg_start.elapsed().as_secs_f64(),
        };

        store_resident_peak = store_resident_peak.max(
            state_store.resident_bytes()
                + inbox_store.resident_bytes()
                + inbox_next.resident_bytes(),
        );
        let spill_file_bytes = state_store.spill_file_bytes()
            + inbox_store.spill_file_bytes()
            + inbox_next.spill_file_bytes();

        Ok(DStressRun {
            noised_output,
            ideal_output,
            phases: PhaseBreakdown {
                initialization,
                computation,
                communication,
                aggregation,
            },
            traffic,
            iterations,
            block_size,
            store_resident_peak_bytes: store_resident_peak,
            spill_file_bytes,
        })
    }
}

/// Blocks each worker keeps in flight under the streaming schedule: the
/// window of [`DStressRuntime::execute_streaming`] is
/// `worker_threads × BLOCKS_PER_WORKER`, so peak per-round
/// materialisation is bounded by the concurrency level, not the graph.
pub const BLOCKS_PER_WORKER: usize = 4;

/// Gathers one block's GMW input shares from the packed stores: each
/// member's state row followed by its `D` inbox slots — the slots past
/// the vertex's in-degree hold the all-zero no-op share and are padded in
/// here rather than stored.  Store access is fallible because the
/// spilling backend may need to page segments in from disk.
#[allow(clippy::too_many_arguments)]
fn gather_block_inputs(
    graph: &Graph,
    v: VertexId,
    state_store: &dyn StateStore,
    inbox_store: &dyn StateStore,
    in_offset: &[usize],
    block_size: usize,
    degree_bound: usize,
    state_bits: usize,
    message_bits: usize,
) -> Result<Vec<Vec<bool>>, RuntimeError> {
    let in_degree = graph.in_degree(v);
    (0..block_size)
        .map(|m_idx| {
            let mut member_inputs = Vec::with_capacity(state_bits + degree_bound * message_bits);
            state_store.read_into(v.0 * block_size + m_idx, &mut member_inputs)?;
            for slot in 0..degree_bound {
                if slot < in_degree {
                    inbox_store.read_into(
                        (in_offset[v.0] + slot) * block_size + m_idx,
                        &mut member_inputs,
                    )?;
                } else {
                    member_inputs.extend(std::iter::repeat(false).take(message_bits));
                }
            }
            Ok(member_inputs)
        })
        .collect()
}

/// Derives the seed of one phase task (a vertex's computation step or an
/// edge's transfer) from the phase master seed and the task's position.
/// Stable across concurrency modes, which is what makes `Sequential` and
/// `Threaded` runs bit-identical.
fn task_seed(phase_seed: u64, index: u64) -> u64 {
    derive_seed(phase_seed, ENGINE_TASK_TAG, index)
}

/// Domain tag separating engine task streams from the party/pair streams
/// that [`derive_seed`] also serves.
const ENGINE_TASK_TAG: u64 = 0x656e_6769_6e65_3a74; // "engine:t"

/// Splits a bit vector into `n` XOR shares (per-bit sharing).
fn share_bits(bits: &[bool], n: usize, rng: &mut dyn DetRng) -> Vec<Vec<bool>> {
    let mut shares = vec![Vec::with_capacity(bits.len()); n];
    for &bit in bits {
        for (p, s) in split_xor_bit(bit, n, rng).into_iter().enumerate() {
            shares[p].push(s);
        }
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DStressConfig;
    use crate::program::CounterProgram;
    use dstress_graph::generate::ring_with_chords;
    use dstress_graph::Graph;

    fn ring_graph(n: usize) -> Graph {
        let mut rng = Xoshiro256::new(5);
        ring_with_chords(n, 0, 2, &mut rng)
    }

    /// Plaintext expectation for the counter program on a directed ring:
    /// run the reference executor from `dstress-graph` semantics by hand.
    fn counter_reference(graph: &Graph, width: u32, rounds: u32) -> f64 {
        let n = graph.vertex_count();
        let mask = (1u64 << width) - 1;
        let mut states: Vec<u64> = (0..n).map(|v| v as u64 + 1).collect();
        let mut inbox: Vec<Vec<u64>> = vec![Vec::new(); n];
        for _ in 0..rounds {
            let mut new_states = Vec::with_capacity(n);
            for v in 0..n {
                let sum: u64 = inbox[v].iter().sum();
                new_states.push((states[v] + sum) & mask);
                inbox[v].clear();
            }
            states = new_states;
            for v in graph.vertices() {
                for &to in graph.out_neighbors(v) {
                    inbox[to.0].push(states[v.0]);
                }
            }
        }
        let mut final_states = Vec::with_capacity(n);
        for v in 0..n {
            let sum: u64 = inbox[v].iter().sum();
            final_states.push((states[v] + sum) & mask);
        }
        final_states.iter().sum::<u64>() as f64
    }

    #[test]
    fn run_matches_plaintext_reference_real_crypto() {
        let graph = ring_graph(5);
        let program = CounterProgram {
            width: 8,
            rounds: 2,
        };
        let expected = counter_reference(&graph, 8, 2);

        let mut config = DStressConfig::small_test(2);
        config.message_bits = 8;
        let runtime = DStressRuntime::new(config);
        let run = runtime.execute(&graph, &program).unwrap();
        assert_eq!(run.ideal_output, expected);
        assert_ne!(run.noised_output, run.ideal_output);
        // The Laplace noise at sensitivity 1, ε = 0.23 is rarely huge.
        assert!((run.noised_output - run.ideal_output).abs() < 200.0);
        assert_eq!(run.iterations, 2);
        assert_eq!(run.block_size, 3);
    }

    #[test]
    fn run_matches_plaintext_reference_accounted() {
        let graph = ring_graph(6);
        let program = CounterProgram {
            width: 8,
            rounds: 3,
        };
        let expected = counter_reference(&graph, 8, 3);
        let mut config = DStressConfig::benchmark(3);
        config.message_bits = 8;
        let runtime = DStressRuntime::new(config);
        let run = runtime.execute(&graph, &program).unwrap();
        assert_eq!(run.ideal_output, expected);
    }

    #[test]
    fn transfer_modes_account_identically() {
        let graph = ring_graph(4);
        let program = CounterProgram {
            width: 8,
            rounds: 1,
        };

        let mut real_cfg = DStressConfig::small_test(2);
        real_cfg.message_bits = 8;
        let mut acc_cfg = DStressConfig::benchmark(2);
        acc_cfg.message_bits = 8;

        let real = DStressRuntime::new(real_cfg)
            .execute(&graph, &program)
            .unwrap();
        let accounted = DStressRuntime::new(acc_cfg)
            .execute(&graph, &program)
            .unwrap();

        let r = real.phases.communication.counts;
        let a = accounted.phases.communication.counts;
        assert_eq!(r.exponentiations, a.exponentiations);
        assert_eq!(r.fixed_base_exponentiations, a.fixed_base_exponentiations);
        assert!(a.fixed_base_exponentiations > 0);
        assert_eq!(r.group_multiplications, a.group_multiplications);
        assert_eq!(r.bytes_sent, a.bytes_sent);
        // The accounted mode reproduces even the *measured* wire bytes of
        // the real hops, via the closed-form encoded lengths.
        assert_eq!(r.wire_bytes, a.wire_bytes);
        assert!(r.wire_bytes > 0);
        assert_eq!(r.rounds, a.rounds);
        // The rest of the pipeline is identical code, so totals agree too.
        assert_eq!(
            real.phases.computation.counts.and_gates,
            accounted.phases.computation.counts.and_gates
        );
    }

    #[test]
    fn phases_report_nonzero_costs() {
        let graph = ring_graph(4);
        let program = CounterProgram {
            width: 8,
            rounds: 1,
        };
        let mut config = DStressConfig::benchmark(2);
        config.message_bits = 8;
        let run = DStressRuntime::new(config)
            .execute(&graph, &program)
            .unwrap();
        assert!(run.phases.initialization.counts.bytes_sent > 0);
        assert!(run.phases.computation.counts.and_gates > 0);
        assert!(run.phases.communication.counts.bytes_sent > 0);
        assert!(run.phases.aggregation.counts.and_gates > 0);
        assert!(run.phases.total_counts().bytes_sent > 0);
        // Every phase moves real encoded bytes through the wire format.
        assert!(run.phases.initialization.counts.wire_bytes > 0);
        assert!(run.phases.computation.counts.wire_bytes > 0);
        assert!(run.phases.communication.counts.wire_bytes > 0);
        assert!(run.phases.aggregation.counts.wire_bytes > 0);
        assert!(run.traffic.report().total_wire_bytes > 0);
        assert!(run.phases.total_wall_seconds() > 0.0);
        assert!(run.mean_bytes_per_node() > 0.0);
    }

    #[test]
    fn traffic_grows_with_block_size() {
        let graph = ring_graph(6);
        let program = CounterProgram {
            width: 8,
            rounds: 1,
        };
        let mut small_cfg = DStressConfig::benchmark(2);
        small_cfg.message_bits = 8;
        let mut large_cfg = DStressConfig::benchmark(4);
        large_cfg.message_bits = 8;
        let small = DStressRuntime::new(small_cfg)
            .execute(&graph, &program)
            .unwrap();
        let large = DStressRuntime::new(large_cfg)
            .execute(&graph, &program)
            .unwrap();
        assert!(large.traffic.report().total_bytes > small.traffic.report().total_bytes);
        assert!(large.mean_bytes_per_node() > small.mean_bytes_per_node());
        // The ideal output is unchanged by the block size.
        assert_eq!(small.ideal_output, large.ideal_output);
    }

    #[test]
    fn concurrency_mode_does_not_change_results() {
        use crate::config::ConcurrencyMode;
        let graph = ring_graph(6);
        let program = CounterProgram {
            width: 8,
            rounds: 2,
        };
        let mut seq_cfg = DStressConfig::benchmark(3);
        seq_cfg.message_bits = 8;
        let thr_cfg = seq_cfg
            .clone()
            .with_concurrency(ConcurrencyMode::Threaded { threads: 4 });

        let seq = DStressRuntime::new(seq_cfg)
            .execute(&graph, &program)
            .unwrap();
        let thr = DStressRuntime::new(thr_cfg)
            .execute(&graph, &program)
            .unwrap();

        // Bit-identical runs: outputs, counts, and traffic all agree.
        assert_eq!(seq.noised_output, thr.noised_output);
        assert_eq!(seq.ideal_output, thr.ideal_output);
        assert_eq!(seq.phases.total_counts(), thr.phases.total_counts());
        assert_eq!(seq.traffic.report(), thr.traffic.report());

        // Same holds under real transfer cryptography.
        let mut real_seq = DStressConfig::small_test(2);
        real_seq.message_bits = 8;
        let real_thr = real_seq
            .clone()
            .with_concurrency(ConcurrencyMode::Threaded { threads: 3 });
        let graph = ring_graph(4);
        let program = CounterProgram {
            width: 8,
            rounds: 1,
        };
        let a = DStressRuntime::new(real_seq)
            .execute(&graph, &program)
            .unwrap();
        let b = DStressRuntime::new(real_thr)
            .execute(&graph, &program)
            .unwrap();
        assert_eq!(a.noised_output, b.noised_output);
        assert_eq!(a.traffic.report(), b.traffic.report());
    }

    #[test]
    fn phase_rounds_scale_with_depth_not_graph_size() {
        // Independent blocks run concurrently, so the init/compute/
        // transfer round counts depend on the program's circuit depth and
        // iteration count — not on how many vertices or edges the graph
        // has.  (Aggregation rounds may differ: that circuit grows with
        // N.)
        let program = CounterProgram {
            width: 8,
            rounds: 2,
        };
        let mut small_cfg = DStressConfig::benchmark(2);
        small_cfg.message_bits = 8;
        let large_cfg = small_cfg.clone();
        let small = DStressRuntime::new(small_cfg)
            .execute(&ring_graph(4), &program)
            .unwrap();
        let large = DStressRuntime::new(large_cfg)
            .execute(&ring_graph(8), &program)
            .unwrap();
        assert_eq!(
            small.phases.initialization.counts.rounds,
            large.phases.initialization.counts.rounds
        );
        assert_eq!(small.phases.initialization.counts.rounds, 1);
        assert_eq!(
            small.phases.computation.counts.rounds,
            large.phases.computation.counts.rounds
        );
        assert_eq!(
            small.phases.communication.counts.rounds,
            large.phases.communication.counts.rounds
        );
        // 3 transfer rounds per iteration, independent of edge count.
        assert_eq!(small.phases.communication.counts.rounds, 3 * 2);
        // But the graph with twice the vertices moves ~twice the bytes.
        assert!(
            large.phases.computation.counts.bytes_sent > small.phases.computation.counts.bytes_sent
        );
    }

    #[test]
    fn gmw_batching_modes_agree_end_to_end() {
        use dstress_mpc::GmwBatching;
        let graph = ring_graph(5);
        let program = CounterProgram {
            width: 8,
            rounds: 2,
        };
        let mut layered_cfg = DStressConfig::benchmark(2);
        layered_cfg.message_bits = 8;
        let per_gate_cfg = layered_cfg.clone().with_gmw_batching(GmwBatching::PerGate);
        assert_eq!(layered_cfg.gmw_batching, GmwBatching::Layered);

        let layered = DStressRuntime::new(layered_cfg)
            .execute(&graph, &program)
            .unwrap();
        let per_gate = DStressRuntime::new(per_gate_cfg)
            .execute(&graph, &program)
            .unwrap();

        // Same outputs, same byte traffic, same work — batching only
        // shrinks the number of messages (report.total_messages) and the
        // round count.
        assert_eq!(layered.noised_output, per_gate.noised_output);
        assert_eq!(layered.ideal_output, per_gate.ideal_output);
        let lr = layered.traffic.report();
        let pr = per_gate.traffic.report();
        assert_eq!(lr.total_bytes, pr.total_bytes);
        assert_eq!(lr.max_node_bytes, pr.max_node_bytes);
        assert_eq!(lr.active_nodes, pr.active_nodes);
        assert!(lr.total_messages < pr.total_messages);
        let mut l = layered.phases.total_counts();
        let mut p = per_gate.phases.total_counts();
        assert!(l.rounds < p.rounds);
        // Measured wire bytes shrink under batching (one header per
        // layer instead of one per gate); everything else is identical.
        assert!(l.wire_bytes < p.wire_bytes);
        l.rounds = 0;
        p.rounds = 0;
        l.wire_bytes = 0;
        p.wire_bytes = 0;
        assert_eq!(l, p);
    }

    /// Two runs must agree bit-for-bit: outputs, counts, and traffic.
    fn assert_runs_identical(a: &DStressRun, b: &DStressRun, what: &str) {
        assert_eq!(a.noised_output, b.noised_output, "{what}");
        assert_eq!(a.ideal_output, b.ideal_output, "{what}");
        assert_eq!(a.phases.total_counts(), b.phases.total_counts(), "{what}");
        assert_eq!(a.traffic.report(), b.traffic.report(), "{what}");
        assert_eq!(
            a.phases.computation.counts.rounds, b.phases.computation.counts.rounds,
            "{what}"
        );
        assert_eq!(
            a.phases.communication.counts.rounds, b.phases.communication.counts.rounds,
            "{what}"
        );
    }

    #[test]
    fn streaming_execution_matches_materialised() {
        // The block-streaming schedule bounds in-flight state per window;
        // it must not change a single bit of the run — under either
        // transfer mode.
        let program = CounterProgram {
            width: 8,
            rounds: 2,
        };
        let graph = ring_graph(7);
        let mut acc = DStressConfig::benchmark(2);
        acc.message_bits = 8;
        let runtime = DStressRuntime::new(acc);
        let materialised = runtime.execute(&graph, &program).unwrap();
        let streaming = runtime.execute_streaming(&graph, &program).unwrap();
        assert_runs_identical(&materialised, &streaming, "accounted");

        let graph = ring_graph(4);
        let program = CounterProgram {
            width: 8,
            rounds: 1,
        };
        let mut real = DStressConfig::small_test(2);
        real.message_bits = 8;
        let runtime = DStressRuntime::new(real);
        let materialised = runtime.execute(&graph, &program).unwrap();
        let streaming = runtime.execute_streaming(&graph, &program).unwrap();
        assert_runs_identical(&materialised, &streaming, "real crypto");
    }

    #[test]
    fn streaming_sequential_and_threaded_agree() {
        // The streaming determinism pin: under the bounded-window
        // schedule, Sequential and Threaded runs stay bit-identical (the
        // window is derived from the worker count, so the two modes even
        // use different windows — the global task indexing makes that
        // invisible).
        use crate::config::ConcurrencyMode;
        let program = CounterProgram {
            width: 8,
            rounds: 2,
        };
        let graph = ring_graph(9);
        let mut seq_cfg = DStressConfig::benchmark(2);
        seq_cfg.message_bits = 8;
        let thr_cfg = seq_cfg
            .clone()
            .with_concurrency(ConcurrencyMode::Threaded { threads: 4 });
        let seq = DStressRuntime::new(seq_cfg)
            .execute_streaming(&graph, &program)
            .unwrap();
        let thr = DStressRuntime::new(thr_cfg)
            .execute_streaming(&graph, &program)
            .unwrap();
        assert_runs_identical(&seq, &thr, "sequential vs threaded streaming");
    }

    #[test]
    fn streaming_runs_csr_graphs_from_edge_streams() {
        // The full streaming path: a seeded generator feeds a compact CSR
        // graph, which the bounded-memory schedule executes; the run is
        // reproducible and matches the plaintext reference.
        use crate::program::execute_plaintext;
        use dstress_graph::stream::BarabasiAlbertStream;
        let graph = Graph::from_edge_stream(&mut BarabasiAlbertStream::new(24, 2, 6, 5)).unwrap();
        assert!(graph.is_csr());
        let program = CounterProgram {
            width: 10,
            rounds: 2,
        };
        let mut cfg = DStressConfig::benchmark(2);
        cfg.message_bits = 10;
        let runtime = DStressRuntime::new(cfg);
        let a = runtime.execute_streaming(&graph, &program).unwrap();
        let b = runtime.execute_streaming(&graph, &program).unwrap();
        assert_runs_identical(&a, &b, "csr reproducibility");
        assert_eq!(a.ideal_output, execute_plaintext(&graph, &program));
        // And the materialised schedule agrees on the CSR graph too.
        let c = runtime.execute(&graph, &program).unwrap();
        assert_runs_identical(&a, &c, "csr streaming vs materialised");
    }

    #[test]
    fn transport_kind_does_not_change_results() {
        // The GMW transport backend is bit-invisible: a run whose block,
        // aggregation and noising MPCs exchange their messages over real
        // loopback TCP matches the in-process run in outputs, counts —
        // including measured wire bytes — and traffic.
        use crate::config::TransportKind;
        let graph = ring_graph(5);
        let program = CounterProgram {
            width: 8,
            rounds: 1,
        };
        let mut sim_cfg = DStressConfig::benchmark(2);
        sim_cfg.message_bits = 8;
        let sock_cfg = sim_cfg.clone().with_transport(TransportKind::Socket);
        let sim = DStressRuntime::new(sim_cfg)
            .execute(&graph, &program)
            .unwrap();
        let sock = DStressRuntime::new(sock_cfg)
            .execute(&graph, &program)
            .unwrap();
        assert_runs_identical(&sim, &sock, "sim vs socket transport");
        assert!(sim.phases.total_counts().wire_bytes > 0);
    }

    #[test]
    fn noised_output_is_reproducible_from_seed() {
        let graph = ring_graph(4);
        let program = CounterProgram {
            width: 8,
            rounds: 1,
        };
        let mut cfg = DStressConfig::benchmark(2);
        cfg.message_bits = 8;
        let a = DStressRuntime::new(cfg.clone())
            .execute(&graph, &program)
            .unwrap();
        let b = DStressRuntime::new(cfg).execute(&graph, &program).unwrap();
        assert_eq!(a.noised_output, b.noised_output);
        assert_eq!(a.ideal_output, b.ideal_output);
    }

    /// A unique per-test scratch directory (removed by the returned
    /// guard) so persistence tests never collide.
    fn test_dir(tag: &str) -> crate::store::RunDirGuard {
        crate::store::RunDirGuard::create(
            None,
            tag.bytes().fold(0u64, |a, b| a << 8 | u64::from(b)),
        )
        .unwrap()
    }

    #[test]
    fn spilling_backend_is_bit_identical_to_memory() {
        // 32 vertices × block 3 = 96 state rows and ~290 inbox rows —
        // several segments per store, so a 1-byte budget forces real
        // paging through the spill log.
        let graph = ring_graph(32);
        let program = CounterProgram {
            width: 8,
            rounds: 2,
        };
        let mut mem_cfg = DStressConfig::benchmark(2);
        mem_cfg.message_bits = 8;
        // A 1-byte budget forces the spilling backend with a single
        // resident segment per store — every access pattern pages.
        let spill_cfg = mem_cfg.clone().with_state_budget(1);
        let mem = DStressRuntime::new(mem_cfg)
            .execute(&graph, &program)
            .unwrap();
        let spill = DStressRuntime::new(spill_cfg)
            .execute(&graph, &program)
            .unwrap();
        assert_runs_identical(&mem, &spill, "mem vs spill backend");
        assert_eq!(mem.spill_file_bytes, 0);
        assert!(spill.spill_file_bytes > 0, "a 1-byte budget must spill");
        assert!(spill.store_resident_peak_bytes < mem.store_resident_peak_bytes);
        assert!(mem.store_resident_peak_bytes > 0);

        // The streaming schedule over the spilling backend agrees too.
        let spill_streaming_cfg = DStressConfig::benchmark(2);
        let mut spill_streaming_cfg = spill_streaming_cfg.with_state_budget(1);
        spill_streaming_cfg.message_bits = 8;
        let streaming = DStressRuntime::new(spill_streaming_cfg)
            .execute_streaming(&graph, &program)
            .unwrap();
        assert_runs_identical(&mem, &streaming, "mem vs spill streaming");
    }

    #[test]
    fn checkpointing_does_not_change_the_run() {
        let scratch = test_dir("ckpt-inv");
        let graph = ring_graph(6);
        let program = CounterProgram {
            width: 8,
            rounds: 3,
        };
        let mut plain_cfg = DStressConfig::benchmark(2);
        plain_cfg.message_bits = 8;
        let ckpt_cfg =
            plain_cfg
                .clone()
                .with_checkpoint(crate::config::CheckpointConfig::every_round(
                    scratch.path().join("ckpt"),
                ));
        let plain = DStressRuntime::new(plain_cfg)
            .execute(&graph, &program)
            .unwrap();
        let checkpointed = DStressRuntime::new(ckpt_cfg)
            .execute(&graph, &program)
            .unwrap();
        assert_runs_identical(&plain, &checkpointed, "checkpointing is invisible");
        // Only the newest checkpoint survives pruning.
        assert_eq!(
            crate::store::latest_checkpoint_round(&scratch.path().join("ckpt")).unwrap(),
            Some(3)
        );
        let files = std::fs::read_dir(scratch.path().join("ckpt"))
            .unwrap()
            .count();
        assert_eq!(files, 1, "superseded checkpoints are pruned");
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let scratch = test_dir("kill-res");
        let ckpt_dir = scratch.path().join("ckpt");
        let graph = ring_graph(7);
        let program = CounterProgram {
            width: 8,
            rounds: 3,
        };
        let mut base_cfg = DStressConfig::benchmark(2);
        base_cfg.message_bits = 8;
        let uninterrupted = DStressRuntime::new(base_cfg.clone())
            .execute(&graph, &program)
            .unwrap();

        // Crash after round 1's checkpoint; drop the runtime entirely.
        let crash_cfg = base_cfg
            .clone()
            .with_checkpoint(crate::config::CheckpointConfig::every_round(
                ckpt_dir.clone(),
            ))
            .with_halt_after_round(1);
        let crashed = DStressRuntime::new(crash_cfg).execute(&graph, &program);
        assert!(matches!(crashed, Err(RuntimeError::Halted { round: 1 })));

        // A fresh runtime resumes from the checkpoint and must match the
        // uninterrupted run bit for bit — output, counts, wire bytes and
        // per-node traffic.
        let resume_cfg =
            base_cfg
                .clone()
                .with_checkpoint(crate::config::CheckpointConfig::every_round(
                    ckpt_dir.clone(),
                ));
        let resumed = DStressRuntime::new(resume_cfg)
            .resume(&graph, &program)
            .unwrap();
        assert_runs_identical(&uninterrupted, &resumed, "kill and resume");
        assert_eq!(
            uninterrupted.phases.total_counts().wire_bytes,
            resumed.phases.total_counts().wire_bytes
        );
        assert_eq!(
            uninterrupted.traffic.report().total_wire_bytes,
            resumed.traffic.report().total_wire_bytes
        );

        // The same holds when the interrupted run *and* the resume use
        // the spilling backend.
        let spill_ckpt = scratch.path().join("ckpt-spill");
        let spill_crash = base_cfg
            .clone()
            .with_state_budget(1)
            .with_checkpoint(crate::config::CheckpointConfig::every_round(
                spill_ckpt.clone(),
            ))
            .with_halt_after_round(0);
        assert!(DStressRuntime::new(spill_crash)
            .execute(&graph, &program)
            .is_err());
        let spill_resume = base_cfg
            .with_state_budget(1)
            .with_checkpoint(crate::config::CheckpointConfig::every_round(spill_ckpt));
        let spill_resumed = DStressRuntime::new(spill_resume)
            .resume(&graph, &program)
            .unwrap();
        assert_runs_identical(&uninterrupted, &spill_resumed, "spilling kill and resume");
    }

    #[test]
    fn resume_rejects_missing_and_foreign_checkpoints() {
        let scratch = test_dir("res-rej");
        let graph = ring_graph(5);
        let program = CounterProgram {
            width: 8,
            rounds: 2,
        };
        let mut cfg = DStressConfig::benchmark(2);
        cfg.message_bits = 8;

        // No checkpoint directory configured at all.
        let err = DStressRuntime::new(cfg.clone())
            .resume(&graph, &program)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Checkpoint { .. }));

        // Directory configured but empty.
        let ckpt_dir = scratch.path().join("ckpt");
        let cfg = cfg.with_checkpoint(crate::config::CheckpointConfig::every_round(
            ckpt_dir.clone(),
        ));
        let err = DStressRuntime::new(cfg.clone())
            .resume(&graph, &program)
            .unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Store(StoreError::Corrupt { .. })
        ));

        // A checkpoint from a *different* run shape is rejected by the
        // fingerprint.
        let crash = cfg.clone().with_halt_after_round(0);
        assert!(DStressRuntime::new(crash)
            .execute(&graph, &program)
            .is_err());
        let other_graph = ring_graph(6);
        let err = DStressRuntime::new(cfg)
            .resume(&other_graph, &program)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Checkpoint { .. }));
    }

    /// An executor that fails every window — the error-path probe for the
    /// spill-directory lifecycle.
    struct FailingExecutor;

    impl StepExecutor for FailingExecutor {
        fn run_block_steps(
            &self,
            _ctx: &StepContext<'_>,
            _tasks: Vec<BlockStepTask>,
        ) -> Result<Vec<crate::exec::BlockStepOutcome>, RuntimeError> {
            Err(RuntimeError::Deploy("injected failure".to_string()))
        }

        fn run_transfers(
            &self,
            _ctx: &StepContext<'_>,
            _tasks: Vec<TransferTask>,
        ) -> Result<Vec<crate::exec::TransferOutcome>, RuntimeError> {
            Err(RuntimeError::Deploy("injected failure".to_string()))
        }
    }

    #[test]
    fn spill_directory_is_removed_even_when_a_round_errors() {
        let scratch = test_dir("spill-err");
        let base = scratch.path().join("spill-base");
        std::fs::create_dir_all(&base).unwrap();
        let graph = ring_graph(6);
        let program = CounterProgram {
            width: 8,
            rounds: 2,
        };
        let mut cfg = DStressConfig::benchmark(2)
            .with_state_budget(1)
            .with_spill_dir(base.clone());
        cfg.message_bits = 8;
        let err = DStressRuntime::new(cfg)
            .execute_with(&graph, &program, &FailingExecutor)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Deploy(_)));
        // The run-scoped directory — spill logs included — is gone.
        let leftovers: Vec<_> = std::fs::read_dir(&base)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert!(
            leftovers.is_empty(),
            "orphaned spill state after a failed run: {leftovers:?}"
        );
    }
}
