//! Golden byte-layout fixtures for the wire-format primitives.
//!
//! Each test pins the exact hex encoding of one canonical value, so any
//! accidental change to the wire layout — endianness, varint rules, bit
//! order, length prefixes — fails loudly here before it silently breaks
//! cross-version compatibility.  The protocol crates keep equivalent
//! golden fixtures for their own message types (GMW, transfer, engine).

use dstress_net::wire::{self, hex, Wire};

#[test]
fn golden_fixed_width_integers_are_little_endian() {
    assert_eq!(hex(&0xABu8.encode()), "ab");
    assert_eq!(hex(&0x1234_5678u32.encode()), "78563412");
    assert_eq!(hex(&0x0102_0304_0506_0708u64.encode()), "0807060504030201");
}

#[test]
fn golden_bools_are_single_bytes() {
    assert_eq!(hex(&false.encode()), "00");
    assert_eq!(hex(&true.encode()), "01");
}

#[test]
fn golden_varints_are_leb128() {
    let enc = |v: u64| {
        let mut out = Vec::new();
        wire::put_uvarint(&mut out, v);
        hex(&out)
    };
    assert_eq!(enc(0), "00");
    assert_eq!(enc(127), "7f");
    assert_eq!(enc(128), "8001");
    assert_eq!(enc(300), "ac02");
    assert_eq!(enc(u64::MAX), "ffffffffffffffffff01");
}

#[test]
fn golden_byte_strings_are_length_prefixed() {
    let mut out = Vec::new();
    wire::put_bytes(&mut out, &[0xDE, 0xAD]);
    assert_eq!(hex(&out), "02dead");
}

#[test]
fn golden_bit_planes_pack_lsb_first() {
    let mut out = Vec::new();
    // Bits 0, 3, 8 set out of 9: byte 0 = 0b0000_1001, byte 1 = 0b0000_0001.
    wire::put_bits(
        &mut out,
        &[true, false, false, true, false, false, false, false, true],
    );
    assert_eq!(hex(&out), "0901");
}

#[test]
fn golden_vectors_prefix_a_varint_count() {
    let v: Vec<u32> = vec![1, 2];
    assert_eq!(hex(&v.encode()), "020100000002000000");
    assert_eq!(hex(&Vec::<u64>::new().encode()), "00");
}
