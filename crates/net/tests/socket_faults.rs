//! Fault injection for the socket/frame layer, plus the net-level
//! three-backend agreement check.
//!
//! Every hostile input — torn frames, trailing garbage, oversized length
//! prefixes, mid-message disconnects, a peer that never completes
//! registration — must surface as a *typed* [`TransportError`] within the
//! configured timeout: never a hang, never a panic.  The quiescence-based
//! stall detection inherited from the threaded backend is exercised on
//! real sockets as well.

use dstress_net::socket::{FramedConn, Hello, SocketTransport};
use dstress_net::transport::{
    ActorStatus, Endpoint, NodeActor, SimTransport, ThreadedTransport, Transport, TransportError,
};
use dstress_net::{FrameError, FRAME_MAGIC};
use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// A deadline generous enough for CI yet far below the default stall
/// timeout: every fault in this file must be *diagnosed*, not waited out.
const FAULT_DEADLINE: Duration = Duration::from_secs(5);

/// Builds a connected loopback pair: (raw writer for injecting bytes,
/// framed reader under test).
fn loopback_pair() -> (TcpStream, FramedConn) {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let writer = TcpStream::connect(addr).unwrap();
    let (accepted, _) = listener.accept().unwrap();
    let reader = FramedConn::with_peer(accepted, 7).unwrap();
    (writer, reader)
}

/// Runs `f` and asserts it produced its result within the fault deadline.
fn within_deadline<T>(f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let result = f();
    assert!(
        start.elapsed() < FAULT_DEADLINE,
        "fault took {:?} to surface; must be diagnosed, not timed out",
        start.elapsed()
    );
    result
}

#[test]
fn torn_frame_surfaces_as_typed_error() {
    let (mut writer, mut reader) = loopback_pair();
    // Header claims 100 payload bytes; only 10 arrive before the close.
    let mut bytes = vec![FRAME_MAGIC];
    bytes.extend_from_slice(&100u32.to_le_bytes());
    bytes.extend_from_slice(&[0xAB; 10]);
    writer.write_all(&bytes).unwrap();
    drop(writer);
    let err = within_deadline(|| reader.recv_frame(FAULT_DEADLINE).unwrap_err());
    assert_eq!(
        err,
        TransportError::Frame {
            peer: 7,
            error: FrameError::Torn { buffered: 15 }
        }
    );
}

#[test]
fn mid_message_disconnect_surfaces_as_typed_error() {
    let (mut writer, mut reader) = loopback_pair();
    // One complete frame, then a second torn off mid-payload by an
    // explicit write-side shutdown while the connection stays open.
    let mut conn = FramedConn::new(writer.try_clone().unwrap()).unwrap();
    conn.send_msg(&0x1122_3344_5566_7788u64).unwrap();
    let mut torn = vec![FRAME_MAGIC];
    torn.extend_from_slice(&64u32.to_le_bytes());
    torn.extend_from_slice(&[0xCD; 5]);
    writer.write_all(&torn).unwrap();
    writer.shutdown(Shutdown::Write).unwrap();
    // The complete frame still decodes; the torn tail is a typed error.
    let first: u64 = reader.recv_msg(FAULT_DEADLINE).unwrap();
    assert_eq!(first, 0x1122_3344_5566_7788);
    let err = within_deadline(|| reader.recv_frame(FAULT_DEADLINE).unwrap_err());
    assert_eq!(
        err,
        TransportError::Frame {
            peer: 7,
            error: FrameError::Torn { buffered: 10 }
        }
    );
}

#[test]
fn trailing_garbage_surfaces_as_bad_magic() {
    let (mut writer, mut reader) = loopback_pair();
    let mut conn = FramedConn::new(writer.try_clone().unwrap()).unwrap();
    conn.send_msg(&42u64).unwrap();
    writer.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let first: u64 = reader.recv_msg(FAULT_DEADLINE).unwrap();
    assert_eq!(first, 42);
    let err = within_deadline(|| reader.recv_frame(FAULT_DEADLINE).unwrap_err());
    assert_eq!(
        err,
        TransportError::Frame {
            peer: 7,
            error: FrameError::BadMagic { found: b'G' }
        }
    );
}

#[test]
fn oversized_length_prefix_surfaces_before_any_allocation() {
    let (mut writer, mut reader) = loopback_pair();
    let mut bytes = vec![FRAME_MAGIC];
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    writer.write_all(&bytes).unwrap();
    let err = within_deadline(|| reader.recv_frame(FAULT_DEADLINE).unwrap_err());
    assert!(
        matches!(
            err,
            TransportError::Frame {
                peer: 7,
                error: FrameError::Oversized {
                    length: u32::MAX,
                    ..
                }
            }
        ),
        "unexpected error: {err:?}"
    );
}

#[test]
fn undecodable_payload_surfaces_as_codec_error_not_panic() {
    let (writer, mut reader) = loopback_pair();
    let mut conn = FramedConn::new(writer).unwrap();
    // A 3-byte frame payload can never decode as a u64.
    conn.send_frame(&[1, 2, 3]).unwrap();
    let err = within_deadline(|| reader.recv_msg::<u64>(FAULT_DEADLINE).unwrap_err());
    assert!(
        matches!(err, TransportError::Codec { peer: 7, .. }),
        "unexpected error: {err:?}"
    );
}

#[test]
fn silent_peer_times_out_with_typed_error() {
    // A peer that connects and then never completes registration: the
    // read deadline fires with a typed timeout, not a hang.
    let (_writer, mut reader) = loopback_pair();
    let err = within_deadline(|| {
        reader
            .recv_msg::<Hello>(Duration::from_millis(100))
            .unwrap_err()
    });
    assert_eq!(
        err,
        TransportError::Io {
            context: "read",
            kind: std::io::ErrorKind::TimedOut,
        }
    );
}

#[test]
fn clean_disconnect_before_registration_is_unexpected_eof() {
    let (writer, mut reader) = loopback_pair();
    drop(writer);
    let err = within_deadline(|| reader.recv_msg::<Hello>(FAULT_DEADLINE).unwrap_err());
    assert_eq!(
        err,
        TransportError::Io {
            context: "read",
            kind: std::io::ErrorKind::UnexpectedEof,
        }
    );
}

// ---------------------------------------------------------------------------
// Three-backend agreement and socket stall detection
// ---------------------------------------------------------------------------

/// Every node sends its index to every other node, then sums what it
/// receives from each peer in index order (the transport.rs reference
/// actor, re-stated here for the cross-backend contract).
struct Summer {
    node: usize,
    nodes: usize,
    sent: bool,
    next_peer: usize,
    sum: u64,
}

impl NodeActor<u64> for Summer {
    fn poll(&mut self, ep: &mut dyn Endpoint<u64>) -> ActorStatus {
        if !self.sent {
            let batch: Vec<(usize, u64)> = (0..self.nodes)
                .filter(|&p| p != self.node)
                .map(|p| (p, self.node as u64))
                .collect();
            ep.send_many(batch);
            self.sent = true;
        }
        while self.next_peer < self.nodes {
            if self.next_peer == self.node {
                self.next_peer += 1;
                continue;
            }
            match ep.try_recv_from(self.next_peer) {
                Some(v) => {
                    self.sum += v;
                    self.next_peer += 1;
                }
                None => return ActorStatus::Idle,
            }
        }
        ActorStatus::Done
    }
}

fn run_summers(transport: &dyn Transport<u64>, n: usize) -> (Vec<u64>, dstress_net::WireTally) {
    let mut actors: Vec<Summer> = (0..n)
        .map(|node| Summer {
            node,
            nodes: n,
            sent: false,
            next_peer: 0,
            sum: 0,
        })
        .collect();
    let tally = {
        let mut refs: Vec<&mut dyn NodeActor<u64>> = actors
            .iter_mut()
            .map(|a| a as &mut dyn NodeActor<u64>)
            .collect();
        transport.run(&mut refs).unwrap()
    };
    (actors.iter().map(|a| a.sum).collect(), tally)
}

#[test]
fn socket_backend_matches_sim_and_threaded_including_measured_bytes() {
    for n in [2, 3, 5] {
        let (sim_sums, sim_tally) = run_summers(&SimTransport, n);
        let (thr_sums, thr_tally) = run_summers(&ThreadedTransport::with_threads(2), n);
        for threads in [1, 2, 4] {
            let (sock_sums, sock_tally) = run_summers(&SocketTransport::with_threads(threads), n);
            assert_eq!(sock_sums, sim_sums, "n = {n}, threads = {threads}");
            // The tally records Wire payload bytes only — frame headers
            // are transport overhead — so all three backends measure the
            // same wire_bytes, message for message.
            assert_eq!(sock_tally, sim_tally, "n = {n}, threads = {threads}");
        }
        assert_eq!(thr_sums, sim_sums);
        assert_eq!(thr_tally, sim_tally);
    }
}

/// An actor that waits forever for a message nobody sends.
struct Starved;

impl NodeActor<u64> for Starved {
    fn poll(&mut self, ep: &mut dyn Endpoint<u64>) -> ActorStatus {
        match ep.try_recv_from(0) {
            Some(_) => ActorStatus::Done,
            None => ActorStatus::Idle,
        }
    }
}

#[test]
fn socket_backend_detects_genuine_stall_within_timeout() {
    let mut a = Starved;
    let mut b = Starved;
    let mut refs: Vec<&mut dyn NodeActor<u64>> = vec![&mut a, &mut b];
    let transport = SocketTransport::with_threads(2).with_stall_timeout(Duration::from_millis(100));
    let err = within_deadline(|| transport.run(&mut refs).unwrap_err());
    assert_eq!(err, TransportError::Stalled { done: 0, actors: 2 });
}

#[test]
fn messages_to_finished_socket_actors_do_not_hang_stall_detection() {
    /// Finishes immediately; its sockets may be gone by the time the
    /// starver's late message arrives.
    struct InstantDone;
    impl NodeActor<u64> for InstantDone {
        fn poll(&mut self, _ep: &mut dyn Endpoint<u64>) -> ActorStatus {
            ActorStatus::Done
        }
    }
    struct SendThenStarve {
        sent: bool,
    }
    impl NodeActor<u64> for SendThenStarve {
        fn poll(&mut self, ep: &mut dyn Endpoint<u64>) -> ActorStatus {
            if !self.sent {
                std::thread::sleep(Duration::from_millis(20));
                ep.send(1, 99);
                self.sent = true;
            }
            match ep.try_recv_from(1) {
                Some(_) => ActorStatus::Done,
                None => ActorStatus::Idle,
            }
        }
    }
    let mut starver = SendThenStarve { sent: false };
    let mut instant = InstantDone;
    let mut refs: Vec<&mut dyn NodeActor<u64>> = vec![&mut starver, &mut instant];
    let transport = SocketTransport::with_threads(2).with_stall_timeout(Duration::from_millis(100));
    let err = within_deadline(|| transport.run(&mut refs).unwrap_err());
    assert_eq!(err, TransportError::Stalled { done: 1, actors: 2 });
}
