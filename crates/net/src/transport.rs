//! The transport abstraction: how simulated nodes exchange protocol
//! messages.
//!
//! Protocol components in this workspace are written as *node actors*:
//! resumable state machines that make as much progress as they can, send
//! messages through an [`Endpoint`], and yield ([`ActorStatus::Idle`])
//! whenever they are waiting for a message that has not arrived yet.  A
//! [`Transport`] takes a set of actors (one per simulated node, addressed
//! by dense local indices `0..n`) and drives them to completion.
//!
//! Two backends are provided:
//!
//! * [`SimTransport`] — the deterministic in-process backend.  All actors
//!   run on the calling thread, round-robin, with messages queued in a
//!   [`Mailbox`].  This is the reference backend: its schedule is fully
//!   deterministic, and a stalled protocol (every actor idle with no
//!   message in flight) is reported as [`TransportError::Stalled`] rather
//!   than deadlocking.
//! * [`ThreadedTransport`] — real concurrency.  Nodes are sharded across
//!   a worker pool (sized by [`std::thread::available_parallelism`] by
//!   default) and exchange messages over per-node [`std::sync::mpsc`]
//!   channels.
//!
//! Actors must be written so that their *outputs* do not depend on the
//! schedule: they may only consume messages via
//! [`Endpoint::try_recv_from`] (per-peer FIFO order, which both backends
//! guarantee), never on cross-peer arrival order.  Under that discipline
//! the two backends produce bit-identical results — the property the
//! workspace's determinism suite asserts for the GMW engine.
//!
//! ## Example
//!
//! ```
//! use dstress_net::transport::{
//!     ActorStatus, Endpoint, NodeActor, SimTransport, ThreadedTransport, Transport,
//! };
//!
//! /// Node 0 sends a number to node 1, which doubles and echoes it back.
//! struct Pinger(Option<u64>);
//! struct Echoer(bool);
//!
//! impl NodeActor<u64> for Pinger {
//!     fn poll(&mut self, ep: &mut dyn Endpoint<u64>) -> ActorStatus {
//!         if self.0.is_none() {
//!             ep.send(1, 21);
//!             match ep.try_recv_from(1) {
//!                 Some(v) => self.0 = Some(v),
//!                 None => return ActorStatus::Idle,
//!             }
//!         }
//!         ActorStatus::Done
//!     }
//! }
//!
//! impl NodeActor<u64> for Echoer {
//!     fn poll(&mut self, ep: &mut dyn Endpoint<u64>) -> ActorStatus {
//!         match ep.try_recv_from(0) {
//!             Some(v) => {
//!                 ep.send(0, 2 * v);
//!                 self.0 = true;
//!                 ActorStatus::Done
//!             }
//!             None => ActorStatus::Idle,
//!         }
//!     }
//! }
//!
//! for transport in [
//!     Box::new(SimTransport) as Box<dyn Transport<u64>>,
//!     Box::new(ThreadedTransport::with_threads(2)),
//! ] {
//!     let mut pinger = Pinger(None);
//!     let mut echoer = Echoer(false);
//!     {
//!         let mut actors: Vec<&mut dyn NodeActor<u64>> = vec![&mut pinger, &mut echoer];
//!         transport.run(&mut actors).unwrap();
//!     }
//!     assert_eq!(pinger.0, Some(42));
//! }
//! ```

use crate::mailbox::Mailbox;
use crate::traffic::NodeId;
use core::fmt;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// What an actor reports after a [`NodeActor::poll`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActorStatus {
    /// The actor is blocked waiting for a message that has not arrived.
    Idle,
    /// The actor has finished its protocol role; it will not be polled
    /// again.
    Done,
}

/// A resumable protocol state machine bound to one simulated node.
///
/// `poll` must make as much progress as possible: process every available
/// message, send everything it can, and return [`ActorStatus::Idle`] only
/// when genuinely blocked on a missing message.  Implementations must be
/// schedule-independent: consume messages only through
/// [`Endpoint::try_recv_from`] in an order fixed by the protocol itself.
pub trait NodeActor<M>: Send {
    /// Advances the actor as far as it can go.
    fn poll(&mut self, endpoint: &mut dyn Endpoint<M>) -> ActorStatus;
}

/// A node's handle onto the transport: send to peers, receive from a
/// specific peer.
///
/// Nodes are addressed by dense local indices `0..nodes()`; mapping local
/// indices to global [`NodeId`]s (for traffic accounting) is the actor's
/// business, which keeps the transport payload-agnostic.
pub trait Endpoint<M> {
    /// Number of nodes attached to this transport run.
    fn nodes(&self) -> usize;

    /// Sends `message` to local node `to`.  Sends never block.
    fn send(&mut self, to: usize, message: M);

    /// Sends a batch of messages in one call (the batch entry point used
    /// by round-structured protocols to queue a whole round at once).
    fn send_many(&mut self, batch: Vec<(usize, M)>) {
        for (to, message) in batch {
            self.send(to, message);
        }
    }

    /// Receives the oldest undelivered message *from `peer`*, if any.
    ///
    /// Messages from one peer are always delivered in the order they were
    /// sent; ordering across different peers is unspecified (and actors
    /// must not depend on it).
    fn try_recv_from(&mut self, peer: usize) -> Option<M>;
}

/// Errors reported by a transport run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// Every unfinished actor is idle and no message is in flight (a
    /// protocol bug: the run can never complete).
    Stalled {
        /// Actors that had finished when the stall was detected.
        done: usize,
        /// Total actors in the run.
        actors: usize,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Stalled { done, actors } => write!(
                f,
                "transport stalled: {done}/{actors} actors done, rest idle with no messages in flight"
            ),
        }
    }
}

impl std::error::Error for TransportError {}

/// A backend that drives a set of node actors to completion.
pub trait Transport<M: Send> {
    /// Short backend name, for logs and benchmark tables.
    fn name(&self) -> &'static str;

    /// Runs every actor until all are [`ActorStatus::Done`].
    ///
    /// Actor `i` is local node `i`.  The actors are borrowed, not
    /// consumed, so the caller can extract their results afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Stalled`] if the protocol can never
    /// complete (all remaining actors idle, no messages in flight).
    fn run(&self, actors: &mut [&mut dyn NodeActor<M>]) -> Result<(), TransportError>;
}

// ---------------------------------------------------------------------------
// SimTransport
// ---------------------------------------------------------------------------

/// The deterministic single-threaded backend, built on [`Mailbox`].
///
/// Actors are polled round-robin in index order; messages go through a
/// `Mailbox` (per-recipient FIFO queues).  The schedule — and therefore
/// every observable of a run — is fully deterministic.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimTransport;

struct SimEndpoint<'a, M> {
    node: usize,
    mailbox: &'a mut Mailbox<M>,
    /// Sends plus successful receives, used for stall detection.
    activity: &'a mut u64,
}

impl<M> Endpoint<M> for SimEndpoint<'_, M> {
    fn nodes(&self) -> usize {
        self.mailbox.nodes()
    }

    fn send(&mut self, to: usize, message: M) {
        *self.activity += 1;
        self.mailbox.send(NodeId(self.node), NodeId(to), message);
    }

    fn send_many(&mut self, batch: Vec<(usize, M)>) {
        *self.activity += batch.len() as u64;
        self.mailbox.send_many(
            NodeId(self.node),
            batch.into_iter().map(|(to, m)| (NodeId(to), m)),
        );
    }

    fn try_recv_from(&mut self, peer: usize) -> Option<M> {
        let message = self.mailbox.recv_from(NodeId(self.node), NodeId(peer));
        if message.is_some() {
            *self.activity += 1;
        }
        message
    }
}

impl<M: Send> Transport<M> for SimTransport {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&self, actors: &mut [&mut dyn NodeActor<M>]) -> Result<(), TransportError> {
        let n = actors.len();
        let mut mailbox: Mailbox<M> = Mailbox::new(n);
        let mut done = vec![false; n];
        let mut done_count = 0usize;
        while done_count < n {
            let mut activity = 0u64;
            for (i, actor) in actors.iter_mut().enumerate() {
                if done[i] {
                    continue;
                }
                let mut endpoint = SimEndpoint {
                    node: i,
                    mailbox: &mut mailbox,
                    activity: &mut activity,
                };
                if actor.poll(&mut endpoint) == ActorStatus::Done {
                    done[i] = true;
                    done_count += 1;
                    activity += 1;
                }
            }
            if activity == 0 {
                return Err(TransportError::Stalled {
                    done: done_count,
                    actors: n,
                });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// ThreadedTransport
// ---------------------------------------------------------------------------

/// The multi-threaded backend: per-node mpsc channels, nodes sharded
/// across a worker pool.
///
/// Workers poll their shard of actors in a loop; an actor whose messages
/// have not arrived yet simply yields until they do.  With actors that
/// follow the [`NodeActor`] schedule-independence discipline, the results
/// are bit-identical to [`SimTransport`] — only the wall-clock differs.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedTransport {
    threads: usize,
}

impl ThreadedTransport {
    /// A pool with one worker per available core.
    pub fn new() -> Self {
        ThreadedTransport {
            threads: crate::pool::default_threads(),
        }
    }

    /// A pool with an explicit worker count (at least one is used).
    pub fn with_threads(threads: usize) -> Self {
        ThreadedTransport {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for ThreadedTransport {
    fn default() -> Self {
        ThreadedTransport::new()
    }
}

/// How long a worker tolerates zero progress across its whole shard
/// before declaring the run stalled.  Generous: it only matters for
/// protocol bugs, which the deterministic [`SimTransport`] surfaces first
/// in any well-tested code path.
const STALL_TIMEOUT: Duration = Duration::from_secs(60);

struct ThreadedEndpoint<M> {
    node: usize,
    peers: Vec<mpsc::Sender<(usize, M)>>,
    inbox: mpsc::Receiver<(usize, M)>,
    /// Per-peer reorder buffers: the mpsc channel interleaves senders, but
    /// `try_recv_from` must expose per-peer FIFO streams.
    buffers: Vec<VecDeque<M>>,
    activity: u64,
}

impl<M> Endpoint<M> for ThreadedEndpoint<M> {
    fn nodes(&self) -> usize {
        self.peers.len()
    }

    fn send(&mut self, to: usize, message: M) {
        self.activity += 1;
        // A closed peer channel means that actor already finished; its
        // protocol role no longer needs the message.
        let _ = self.peers[to].send((self.node, message));
    }

    fn try_recv_from(&mut self, peer: usize) -> Option<M> {
        while let Ok((from, message)) = self.inbox.try_recv() {
            self.buffers[from].push_back(message);
        }
        let message = self.buffers[peer].pop_front();
        if message.is_some() {
            self.activity += 1;
        }
        message
    }
}

/// Consecutive no-progress polling passes a worker tolerates before it
/// backs off from `yield_now` spinning to millisecond sleeps (so a peer
/// worker stuck in a long computation — or a stall running out the
/// timeout — does not burn a core).
const SPIN_PASSES_BEFORE_SLEEP: u32 = 256;

/// State shared by the workers of one run, used for *global* stall
/// detection: a run is declared stalled only when every worker is parked
/// idle (or has finished its shard) and no progress event has happened
/// anywhere for [`STALL_TIMEOUT`].  A single busy worker — e.g. one
/// actor deep in a long computation — keeps the whole run alive.
struct WorkerShared {
    /// Progress events (sends, receives, completions) across all workers.
    progress: AtomicU64,
    /// Workers currently parked idle, plus workers that finished.
    idle_workers: AtomicUsize,
    /// Total workers in the run.
    workers: usize,
    /// Set when a stall was detected; all workers bail out.
    failed: AtomicBool,
}

fn run_worker<M>(
    shard: &mut [&mut dyn NodeActor<M>],
    mut endpoints: Vec<ThreadedEndpoint<M>>,
    shared: &WorkerShared,
) -> usize {
    let mut done = vec![false; shard.len()];
    let mut remaining = shard.len();
    let mut parked_idle = false;
    let mut idle_passes = 0u32;
    let mut seen_progress = shared.progress.load(Ordering::Relaxed);
    let mut last_global_change = Instant::now();
    while remaining > 0 {
        if shared.failed.load(Ordering::Relaxed) {
            break;
        }
        let mut progress = false;
        for (k, endpoint) in endpoints.iter_mut().enumerate() {
            if done[k] {
                continue;
            }
            let before = endpoint.activity;
            if shard[k].poll(endpoint) == ActorStatus::Done {
                done[k] = true;
                remaining -= 1;
                progress = true;
            } else if endpoint.activity != before {
                progress = true;
            }
        }
        if progress {
            shared.progress.fetch_add(1, Ordering::Relaxed);
            if parked_idle {
                shared.idle_workers.fetch_sub(1, Ordering::Relaxed);
                parked_idle = false;
            }
            idle_passes = 0;
        } else {
            if !parked_idle {
                shared.idle_workers.fetch_add(1, Ordering::Relaxed);
                parked_idle = true;
            }
            let now_progress = shared.progress.load(Ordering::Relaxed);
            if now_progress != seen_progress {
                seen_progress = now_progress;
                last_global_change = Instant::now();
            } else if shared.idle_workers.load(Ordering::Relaxed) == shared.workers
                && last_global_change.elapsed() > STALL_TIMEOUT
            {
                shared.failed.store(true, Ordering::Relaxed);
                break;
            }
            idle_passes = idle_passes.saturating_add(1);
            if idle_passes > SPIN_PASSES_BEFORE_SLEEP {
                std::thread::sleep(Duration::from_millis(1));
            } else {
                std::thread::yield_now();
            }
        }
    }
    // A finished worker counts as idle so that peers blocked on a true
    // deadlock can still see "everyone idle" and time out.
    if !parked_idle {
        shared.idle_workers.fetch_add(1, Ordering::Relaxed);
    }
    shard.len() - remaining
}

impl<M: Send> Transport<M> for ThreadedTransport {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run(&self, actors: &mut [&mut dyn NodeActor<M>]) -> Result<(), TransportError> {
        let n = actors.len();
        if n == 0 {
            return Ok(());
        }
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel::<(usize, M)>();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut endpoints: Vec<ThreadedEndpoint<M>> = receivers
            .into_iter()
            .enumerate()
            .map(|(node, inbox)| ThreadedEndpoint {
                node,
                peers: senders.clone(),
                inbox,
                buffers: (0..n).map(|_| VecDeque::new()).collect(),
                activity: 0,
            })
            .collect();
        // Drop the template senders so channels close once all endpoints
        // are gone.
        drop(senders);

        let workers = self.threads.clamp(1, n);
        let shard_size = n.div_ceil(workers);
        let shared = WorkerShared {
            progress: AtomicU64::new(0),
            idle_workers: AtomicUsize::new(0),
            workers: n.div_ceil(shard_size),
            failed: AtomicBool::new(false),
        };
        let completed: usize = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            let mut rest: &mut [&mut dyn NodeActor<M>] = actors;
            while !rest.is_empty() {
                let take = shard_size.min(rest.len());
                let (shard, tail) = std::mem::take(&mut rest).split_at_mut(take);
                rest = tail;
                let shard_endpoints: Vec<_> = endpoints.drain(..take).collect();
                let shared = &shared;
                handles.push(scope.spawn(move || run_worker(shard, shard_endpoints, shared)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("transport worker panicked"))
                .sum()
        });
        if shared.failed.load(Ordering::Relaxed) {
            return Err(TransportError::Stalled {
                done: completed,
                actors: n,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every node sends its index to every other node, then sums what it
    /// receives from each peer in index order.
    struct Summer {
        node: usize,
        nodes: usize,
        sent: bool,
        next_peer: usize,
        sum: u64,
    }

    impl Summer {
        fn new(node: usize, nodes: usize) -> Self {
            Summer {
                node,
                nodes,
                sent: false,
                next_peer: 0,
                sum: 0,
            }
        }
    }

    impl NodeActor<u64> for Summer {
        fn poll(&mut self, ep: &mut dyn Endpoint<u64>) -> ActorStatus {
            if !self.sent {
                let batch: Vec<(usize, u64)> = (0..self.nodes)
                    .filter(|&p| p != self.node)
                    .map(|p| (p, self.node as u64))
                    .collect();
                ep.send_many(batch);
                self.sent = true;
            }
            while self.next_peer < self.nodes {
                if self.next_peer == self.node {
                    self.next_peer += 1;
                    continue;
                }
                match ep.try_recv_from(self.next_peer) {
                    Some(v) => {
                        self.sum += v;
                        self.next_peer += 1;
                    }
                    None => return ActorStatus::Idle,
                }
            }
            ActorStatus::Done
        }
    }

    fn run_summers(transport: &dyn Transport<u64>, n: usize) -> Vec<u64> {
        let mut actors: Vec<Summer> = (0..n).map(|i| Summer::new(i, n)).collect();
        {
            let mut refs: Vec<&mut dyn NodeActor<u64>> = actors
                .iter_mut()
                .map(|a| a as &mut dyn NodeActor<u64>)
                .collect();
            transport.run(&mut refs).unwrap();
        }
        actors.iter().map(|a| a.sum).collect()
    }

    #[test]
    fn sim_all_to_all_sums() {
        let sums = run_summers(&SimTransport, 5);
        // Each node receives 0+1+2+3+4 minus its own index.
        for (i, sum) in sums.iter().enumerate() {
            assert_eq!(*sum, 10 - i as u64);
        }
    }

    #[test]
    fn threaded_matches_sim() {
        for threads in [1, 2, 4] {
            let threaded = run_summers(&ThreadedTransport::with_threads(threads), 6);
            let sim = run_summers(&SimTransport, 6);
            assert_eq!(threaded, sim, "threads = {threads}");
        }
    }

    #[test]
    fn empty_run_completes() {
        let mut refs: Vec<&mut dyn NodeActor<u64>> = Vec::new();
        assert!(SimTransport.run(&mut refs).is_ok());
        assert!(ThreadedTransport::new().run(&mut refs).is_ok());
        assert!(ThreadedTransport::default().threads() >= 1);
        assert_eq!(<SimTransport as Transport<u64>>::name(&SimTransport), "sim");
        assert_eq!(
            <ThreadedTransport as Transport<u64>>::name(&ThreadedTransport::new()),
            "threaded"
        );
    }

    /// An actor that waits forever for a message nobody sends.
    struct Starved;

    impl NodeActor<u64> for Starved {
        fn poll(&mut self, ep: &mut dyn Endpoint<u64>) -> ActorStatus {
            match ep.try_recv_from(0) {
                Some(_) => ActorStatus::Done,
                None => ActorStatus::Idle,
            }
        }
    }

    #[test]
    fn sim_detects_stall() {
        let mut a = Starved;
        let mut b = Starved;
        let mut refs: Vec<&mut dyn NodeActor<u64>> = vec![&mut a, &mut b];
        let err = SimTransport.run(&mut refs).unwrap_err();
        assert_eq!(err, TransportError::Stalled { done: 0, actors: 2 });
        assert!(err.to_string().contains("stalled"));
    }
}
