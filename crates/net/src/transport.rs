//! The transport abstraction: how simulated nodes exchange protocol
//! messages.
//!
//! Protocol components in this workspace are written as *node actors*:
//! resumable state machines that make as much progress as they can, send
//! messages through an [`Endpoint`], and yield ([`ActorStatus::Idle`])
//! whenever they are waiting for a message that has not arrived yet.  A
//! [`Transport`] takes a set of actors (one per simulated node, addressed
//! by dense local indices `0..n`) and drives them to completion.
//!
//! Two backends are provided:
//!
//! * [`SimTransport`] — the deterministic in-process backend.  All actors
//!   run on the calling thread, round-robin, with messages queued in a
//!   [`Mailbox`].  This is the reference backend: its schedule is fully
//!   deterministic, and a stalled protocol (every actor idle with no
//!   message in flight) is reported as [`TransportError::Stalled`] rather
//!   than deadlocking.
//! * [`ThreadedTransport`] — real concurrency.  Nodes are sharded across
//!   a worker pool (sized by [`std::thread::available_parallelism`] by
//!   default) and exchange messages over per-node [`std::sync::mpsc`]
//!   channels.
//!
//! Actors must be written so that their *outputs* do not depend on the
//! schedule: they may only consume messages via
//! [`Endpoint::try_recv_from`] (per-peer FIFO order, which both backends
//! guarantee), never on cross-peer arrival order.  Under that discipline
//! the two backends produce bit-identical results — the property the
//! workspace's determinism suite asserts for the GMW engine.
//!
//! ## Example
//!
//! ```
//! use dstress_net::transport::{
//!     ActorStatus, Endpoint, NodeActor, SimTransport, ThreadedTransport, Transport,
//! };
//!
//! /// Node 0 sends a number to node 1, which doubles and echoes it back.
//! struct Pinger(Option<u64>);
//! struct Echoer(bool);
//!
//! impl NodeActor<u64> for Pinger {
//!     fn poll(&mut self, ep: &mut dyn Endpoint<u64>) -> ActorStatus {
//!         if self.0.is_none() {
//!             ep.send(1, 21);
//!             match ep.try_recv_from(1) {
//!                 Some(v) => self.0 = Some(v),
//!                 None => return ActorStatus::Idle,
//!             }
//!         }
//!         ActorStatus::Done
//!     }
//! }
//!
//! impl NodeActor<u64> for Echoer {
//!     fn poll(&mut self, ep: &mut dyn Endpoint<u64>) -> ActorStatus {
//!         match ep.try_recv_from(0) {
//!             Some(v) => {
//!                 ep.send(0, 2 * v);
//!                 self.0 = true;
//!                 ActorStatus::Done
//!             }
//!             None => ActorStatus::Idle,
//!         }
//!     }
//! }
//!
//! for transport in [
//!     Box::new(SimTransport) as Box<dyn Transport<u64>>,
//!     Box::new(ThreadedTransport::with_threads(2)),
//! ] {
//!     let mut pinger = Pinger(None);
//!     let mut echoer = Echoer(false);
//!     {
//!         let mut actors: Vec<&mut dyn NodeActor<u64>> = vec![&mut pinger, &mut echoer];
//!         transport.run(&mut actors).unwrap();
//!     }
//!     assert_eq!(pinger.0, Some(42));
//! }
//! ```

use crate::frame::FrameError;
use crate::mailbox::Mailbox;
use crate::traffic::NodeId;
use crate::wire::{Wire, WireError, WireTally};
use core::fmt;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Encodes a message through the wire format, measures the encoding, and
/// decodes it back — the boundary every transport send passes through.
/// Both backends deliver the *decoded* copy, so a message type whose
/// codec cannot round-trip fails loudly in any test that exchanges it.
///
/// A decode failure here is an encoder/decoder mismatch in the message
/// type itself (never data-dependent), so it panics rather than poisoning
/// the run.
fn through_wire<M: Wire>(message: M) -> (M, u64) {
    let bytes = message.encode();
    let decoded = M::decode_exact(&bytes)
        .expect("wire round-trip failed: the message type's encoder and decoder disagree");
    (decoded, bytes.len() as u64)
}

/// What an actor reports after a [`NodeActor::poll`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActorStatus {
    /// The actor is blocked waiting for a message that has not arrived.
    Idle,
    /// The actor has finished its protocol role; it will not be polled
    /// again.
    Done,
}

/// A resumable protocol state machine bound to one simulated node.
///
/// `poll` must make as much progress as possible: process every available
/// message, send everything it can, and return [`ActorStatus::Idle`] only
/// when genuinely blocked on a missing message.  Implementations must be
/// schedule-independent: consume messages only through
/// [`Endpoint::try_recv_from`] in an order fixed by the protocol itself.
pub trait NodeActor<M>: Send {
    /// Advances the actor as far as it can go.
    fn poll(&mut self, endpoint: &mut dyn Endpoint<M>) -> ActorStatus;
}

/// A node's handle onto the transport: send to peers, receive from a
/// specific peer.
///
/// Nodes are addressed by dense local indices `0..nodes()`; mapping local
/// indices to global [`NodeId`]s (for traffic accounting) is the actor's
/// business, which keeps the transport payload-agnostic.
pub trait Endpoint<M> {
    /// Number of nodes attached to this transport run.
    fn nodes(&self) -> usize;

    /// Sends `message` to local node `to`.  Sends never block.
    fn send(&mut self, to: usize, message: M);

    /// Sends a batch of messages in one call (the batch entry point used
    /// by round-structured protocols to queue a whole round at once).
    fn send_many(&mut self, batch: Vec<(usize, M)>) {
        for (to, message) in batch {
            self.send(to, message);
        }
    }

    /// Receives the oldest undelivered message *from `peer`*, if any.
    ///
    /// Messages from one peer are always delivered in the order they were
    /// sent; ordering across different peers is unspecified (and actors
    /// must not depend on it).
    fn try_recv_from(&mut self, peer: usize) -> Option<M>;
}

/// Errors reported by a transport run.
///
/// The in-process backends can only fail with [`TransportError::Stalled`]
/// (their byte buffers never lie); the socket backend adds the failure
/// modes a real network has: I/O errors, framing violations from hostile
/// or desynchronised peers, payloads that do not decode, and peers that
/// never complete the connection handshake.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// Every unfinished actor is idle and no message is in flight (a
    /// protocol bug: the run can never complete).
    Stalled {
        /// Actors that had finished when the stall was detected.
        done: usize,
        /// Total actors in the run.
        actors: usize,
    },
    /// A socket operation failed.  Only the [`std::io::ErrorKind`] is
    /// kept (with a static context string) so the error stays `Clone`
    /// and comparable in tests.
    Io {
        /// Which operation failed (e.g. `"connect"`, `"read"`).
        context: &'static str,
        /// The kind of I/O failure.
        kind: std::io::ErrorKind,
    },
    /// A peer violated the frame layer: bad magic, oversized length
    /// prefix, or a stream torn mid-frame.
    Frame {
        /// Local index of the offending peer (0 when unknown).
        peer: usize,
        /// The frame-layer violation.
        error: FrameError,
    },
    /// A complete frame arrived but its payload failed to decode as the
    /// expected message type.  Unlike the in-process backends — where a
    /// codec mismatch is a local bug and panics — bytes from a remote
    /// peer are untrusted input and fail typed.
    Codec {
        /// Local index of the offending peer.
        peer: usize,
        /// The wire-format decode failure.
        error: WireError,
    },
    /// A peer failed to complete the connection handshake (hello /
    /// registration) within the deadline, or sent a hello that does not
    /// match the run.
    Handshake {
        /// What went wrong.
        context: &'static str,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Stalled { done, actors } => write!(
                f,
                "transport stalled: {done}/{actors} actors done, rest idle with no messages in flight"
            ),
            TransportError::Io { context, kind } => {
                write!(f, "socket i/o failed during {context}: {kind}")
            }
            TransportError::Frame { peer, error } => {
                write!(f, "frame violation from peer {peer}: {error}")
            }
            TransportError::Codec { peer, error } => {
                write!(f, "undecodable payload from peer {peer}: {error}")
            }
            TransportError::Handshake { context } => {
                write!(f, "handshake failed: {context}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// A backend that drives a set of node actors to completion.
///
/// Messages must implement [`Wire`]: every send is routed through
/// `encode → byte buffer → decode`, and the run returns a [`WireTally`]
/// of the measured encoded bytes per `(from, to)` pair.
pub trait Transport<M: Wire + Send> {
    /// Short backend name, for logs and benchmark tables.
    fn name(&self) -> &'static str;

    /// Runs every actor until all are [`ActorStatus::Done`], returning
    /// the measured wire traffic of the run.
    ///
    /// Actor `i` is local node `i`.  The actors are borrowed, not
    /// consumed, so the caller can extract their results afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Stalled`] if the protocol can never
    /// complete (all remaining actors idle, no messages in flight).
    fn run(&self, actors: &mut [&mut dyn NodeActor<M>]) -> Result<WireTally, TransportError>;
}

// ---------------------------------------------------------------------------
// SimTransport
// ---------------------------------------------------------------------------

/// The deterministic single-threaded backend, built on [`Mailbox`].
///
/// Actors are polled round-robin in index order; messages go through a
/// `Mailbox` (per-recipient FIFO queues).  The schedule — and therefore
/// every observable of a run — is fully deterministic.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimTransport;

struct SimEndpoint<'a, M> {
    node: usize,
    mailbox: &'a mut Mailbox<M>,
    tally: &'a mut WireTally,
    /// Sends plus successful receives, used for stall detection.
    activity: &'a mut u64,
}

impl<M: Wire> Endpoint<M> for SimEndpoint<'_, M> {
    fn nodes(&self) -> usize {
        self.mailbox.nodes()
    }

    fn send(&mut self, to: usize, message: M) {
        *self.activity += 1;
        let (decoded, bytes) = through_wire(message);
        self.tally.record(self.node, to, bytes);
        self.mailbox.send(NodeId(self.node), NodeId(to), decoded);
    }

    fn send_many(&mut self, batch: Vec<(usize, M)>) {
        *self.activity += batch.len() as u64;
        let node = self.node;
        let tally = &mut *self.tally;
        self.mailbox.send_many(
            NodeId(node),
            batch.into_iter().map(|(to, m)| {
                let (decoded, bytes) = through_wire(m);
                tally.record(node, to, bytes);
                (NodeId(to), decoded)
            }),
        );
    }

    fn try_recv_from(&mut self, peer: usize) -> Option<M> {
        let message = self.mailbox.recv_from(NodeId(self.node), NodeId(peer));
        if message.is_some() {
            *self.activity += 1;
        }
        message
    }
}

impl<M: Wire + Send> Transport<M> for SimTransport {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&self, actors: &mut [&mut dyn NodeActor<M>]) -> Result<WireTally, TransportError> {
        let n = actors.len();
        let mut mailbox: Mailbox<M> = Mailbox::new(n);
        let mut tally = WireTally::new(n);
        let mut done = vec![false; n];
        let mut done_count = 0usize;
        while done_count < n {
            let mut activity = 0u64;
            for (i, actor) in actors.iter_mut().enumerate() {
                if done[i] {
                    continue;
                }
                let mut endpoint = SimEndpoint {
                    node: i,
                    mailbox: &mut mailbox,
                    tally: &mut tally,
                    activity: &mut activity,
                };
                if actor.poll(&mut endpoint) == ActorStatus::Done {
                    done[i] = true;
                    done_count += 1;
                    activity += 1;
                }
            }
            if activity == 0 {
                return Err(TransportError::Stalled {
                    done: done_count,
                    actors: n,
                });
            }
        }
        Ok(tally)
    }
}

// ---------------------------------------------------------------------------
// ThreadedTransport
// ---------------------------------------------------------------------------

/// The multi-threaded backend: per-node mpsc channels, nodes sharded
/// across a worker pool.
///
/// Workers poll their shard of actors in a loop; an actor whose messages
/// have not arrived yet simply yields until they do.  With actors that
/// follow the [`NodeActor`] schedule-independence discipline, the results
/// are bit-identical to [`SimTransport`] — only the wall-clock differs.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedTransport {
    threads: usize,
    stall_timeout: Duration,
}

impl ThreadedTransport {
    /// A pool with one worker per available core.
    pub fn new() -> Self {
        ThreadedTransport {
            threads: crate::pool::default_threads(),
            stall_timeout: STALL_TIMEOUT,
        }
    }

    /// A pool with an explicit worker count (at least one is used).
    pub fn with_threads(threads: usize) -> Self {
        ThreadedTransport {
            threads: threads.max(1),
            stall_timeout: STALL_TIMEOUT,
        }
    }

    /// Overrides the stall timeout (how long the run tolerates global
    /// quiescence — every worker parked, no message in any queue — before
    /// failing).  Mostly useful to make stall tests fast.
    pub fn with_stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = timeout;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for ThreadedTransport {
    fn default() -> Self {
        ThreadedTransport::new()
    }
}

/// How long a run tolerates global quiescence before declaring a stall.
/// Generous: it only matters for protocol bugs, which the deterministic
/// [`SimTransport`] surfaces first in any well-tested code path.
pub(crate) const STALL_TIMEOUT: Duration = Duration::from_secs(60);

/// Per-node queue counters shared by a run's endpoints: how many messages
/// were pushed into each node's channel and how many its endpoint has
/// drained out.  `sent == drained` for every node means no message is in
/// flight anywhere — the quiescence half of stall detection.  (Counting
/// per node rather than globally keeps the counters useful for
/// diagnostics and avoids a single hot cacheline under fan-in.)
pub(crate) struct QueueCounters {
    pub(crate) sent: Vec<AtomicU64>,
    pub(crate) drained: Vec<AtomicU64>,
    /// Set once a node's actor is [`ActorStatus::Done`].  A finished
    /// node's channel may never be drained again (its worker may already
    /// have exited), so messages addressed to it are protocol garbage
    /// and must not count as traffic in flight — otherwise one late send
    /// to a finished node would disable stall detection and turn every
    /// genuine stall into an unbounded hang.
    pub(crate) finished: Vec<AtomicBool>,
}

impl QueueCounters {
    pub(crate) fn new(nodes: usize) -> Self {
        QueueCounters {
            sent: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            drained: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            finished: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Whether every message ever sent to a still-running node has been
    /// drained by its recipient.  Racy reads are fine: a message sent
    /// concurrently with this check implies progress, which independently
    /// resets the stall clock.
    pub(crate) fn quiescent(&self) -> bool {
        self.sent
            .iter()
            .zip(&self.drained)
            .zip(&self.finished)
            .all(|((s, d), f)| {
                f.load(Ordering::Relaxed) || s.load(Ordering::Relaxed) == d.load(Ordering::Relaxed)
            })
    }
}

/// Lock-free per-pair wire counters shared by a threaded run's endpoints;
/// folded into a plain [`WireTally`] once every worker has joined.
pub(crate) struct SharedTally {
    nodes: usize,
    bytes: Vec<AtomicU64>,
    messages: Vec<AtomicU64>,
}

impl SharedTally {
    pub(crate) fn new(nodes: usize) -> Self {
        SharedTally {
            nodes,
            bytes: (0..nodes * nodes).map(|_| AtomicU64::new(0)).collect(),
            messages: (0..nodes * nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn record(&self, from: usize, to: usize, bytes: u64) {
        let idx = from * self.nodes + to;
        self.bytes[idx].fetch_add(bytes, Ordering::Relaxed);
        self.messages[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot after all workers joined (the join is the happens-before
    /// edge that makes the relaxed counters complete).
    pub(crate) fn collect(&self) -> WireTally {
        let mut tally = WireTally::new(self.nodes);
        for from in 0..self.nodes {
            for to in 0..self.nodes {
                let idx = from * self.nodes + to;
                tally.add(
                    from,
                    to,
                    self.bytes[idx].load(Ordering::Relaxed),
                    self.messages[idx].load(Ordering::Relaxed),
                );
            }
        }
        tally
    }
}

struct ThreadedEndpoint<M> {
    node: usize,
    peers: Vec<mpsc::Sender<(usize, M)>>,
    inbox: mpsc::Receiver<(usize, M)>,
    /// Per-peer reorder buffers: the mpsc channel interleaves senders, but
    /// `try_recv_from` must expose per-peer FIFO streams.
    buffers: Vec<VecDeque<M>>,
    counters: Arc<QueueCounters>,
    wire: Arc<SharedTally>,
    activity: u64,
}

impl<M> ThreadedEndpoint<M> {
    /// Moves everything from the channel into the per-peer buffers,
    /// updating the drained counter; returns how many messages moved.
    /// Workers call this for their whole shard before parking idle, so a
    /// batched message that is still sitting in a channel is never
    /// mistaken for quiescence.
    fn drain_inbox(&mut self) -> u64 {
        let mut moved = 0;
        while let Ok((from, message)) = self.inbox.try_recv() {
            self.buffers[from].push_back(message);
            moved += 1;
        }
        if moved > 0 {
            self.counters.drained[self.node].fetch_add(moved, Ordering::Relaxed);
        }
        moved
    }
}

impl<M: Wire> Endpoint<M> for ThreadedEndpoint<M> {
    fn nodes(&self) -> usize {
        self.peers.len()
    }

    fn send(&mut self, to: usize, message: M) {
        self.activity += 1;
        let (decoded, bytes) = through_wire(message);
        self.wire.record(self.node, to, bytes);
        self.counters.sent[to].fetch_add(1, Ordering::Relaxed);
        // A closed peer channel means that actor already finished; its
        // protocol role no longer needs the message.
        let _ = self.peers[to].send((self.node, decoded));
    }

    fn send_many(&mut self, batch: Vec<(usize, M)>) {
        self.activity += batch.len() as u64;
        for (to, message) in batch {
            let (decoded, bytes) = through_wire(message);
            self.wire.record(self.node, to, bytes);
            self.counters.sent[to].fetch_add(1, Ordering::Relaxed);
            let _ = self.peers[to].send((self.node, decoded));
        }
    }

    fn try_recv_from(&mut self, peer: usize) -> Option<M> {
        self.drain_inbox();
        let message = self.buffers[peer].pop_front();
        if message.is_some() {
            self.activity += 1;
        }
        message
    }
}

/// Consecutive no-progress polling passes a worker tolerates before it
/// backs off from `yield_now` spinning to millisecond sleeps (so a peer
/// worker stuck in a long computation — or a stall running out the
/// timeout — does not burn a core).
pub(crate) const SPIN_PASSES_BEFORE_SLEEP: u32 = 256;

/// State shared by the workers of one run, used for *global* stall
/// detection.  A run is declared stalled only when the system is provably
/// quiescent: every worker is parked idle (or has finished its shard), no
/// message is in flight in any node's queue ([`QueueCounters`]), and no
/// progress event has happened anywhere for the stall timeout.  A single
/// busy worker — e.g. one actor deep in a long computation between
/// batched rounds — keeps the whole run alive, because workers unpark
/// *before* each polling pass, not after it.
pub(crate) struct WorkerShared {
    /// Progress events (sends, receives, completions) across all workers.
    pub(crate) progress: AtomicU64,
    /// Workers currently parked idle, plus workers that finished.
    pub(crate) idle_workers: AtomicUsize,
    /// Total workers in the run.
    pub(crate) workers: usize,
    /// Per-node sent/drained message counters for the quiescence check.
    pub(crate) counters: Arc<QueueCounters>,
    /// How long global quiescence is tolerated before failing the run.
    pub(crate) stall_timeout: Duration,
    /// Set when the run failed (stall or socket error); all workers
    /// bail out.
    pub(crate) failed: AtomicBool,
    /// The first non-stall failure any worker hit (socket backends only;
    /// a bare `failed` flag with an empty slot means a stall).
    pub(crate) failure: Mutex<Option<TransportError>>,
}

impl WorkerShared {
    pub(crate) fn new(
        counters: Arc<QueueCounters>,
        workers: usize,
        stall_timeout: Duration,
    ) -> Self {
        WorkerShared {
            progress: AtomicU64::new(0),
            idle_workers: AtomicUsize::new(0),
            workers,
            counters,
            stall_timeout,
            failed: AtomicBool::new(false),
            failure: Mutex::new(None),
        }
    }

    /// Records the first failure and tells every worker to bail out.
    pub(crate) fn fail(&self, error: TransportError) {
        let mut slot = self.failure.lock().expect("failure slot poisoned");
        if slot.is_none() {
            *slot = Some(error);
        }
        drop(slot);
        self.failed.store(true, Ordering::Relaxed);
    }

    /// Takes the recorded failure, if any (after all workers joined).
    pub(crate) fn take_failure(&self) -> Option<TransportError> {
        self.failure.lock().expect("failure slot poisoned").take()
    }
}

fn run_worker<M: Wire>(
    shard: &mut [&mut dyn NodeActor<M>],
    mut endpoints: Vec<ThreadedEndpoint<M>>,
    shared: &WorkerShared,
) -> usize {
    let mut done = vec![false; shard.len()];
    let mut remaining = shard.len();
    let mut parked_idle = false;
    let mut idle_passes = 0u32;
    let mut seen_progress = shared.progress.load(Ordering::Relaxed);
    let mut last_global_change = Instant::now();
    while remaining > 0 {
        if shared.failed.load(Ordering::Relaxed) {
            break;
        }
        // Unpark *before* polling: while this worker is inside a pass
        // (possibly a long batched-layer computation), the run must not
        // look globally idle to the other workers.
        if parked_idle {
            shared.idle_workers.fetch_sub(1, Ordering::Relaxed);
            parked_idle = false;
        }
        let mut progress = false;
        for (k, endpoint) in endpoints.iter_mut().enumerate() {
            if done[k] {
                continue;
            }
            let before = endpoint.activity;
            if shard[k].poll(endpoint) == ActorStatus::Done {
                done[k] = true;
                remaining -= 1;
                progress = true;
                // From here on nobody may ever drain this node again (in
                // particular once this worker's whole shard finishes and
                // the worker exits), so exclude it from the quiescence
                // check instead of letting late messages to it block
                // stall detection forever.
                shared.counters.finished[endpoint.node].store(true, Ordering::Relaxed);
            } else if endpoint.activity != before {
                progress = true;
            }
        }
        if !progress {
            // Sweep the shard's channels (including finished actors', so
            // late messages to them do not read as traffic in flight
            // forever).  Anything moved may unblock an actor, so a
            // non-empty sweep counts as progress.
            let drained: u64 = endpoints
                .iter_mut()
                .map(ThreadedEndpoint::drain_inbox)
                .sum();
            progress = drained > 0;
        }
        if progress {
            shared.progress.fetch_add(1, Ordering::Relaxed);
            idle_passes = 0;
        } else {
            shared.idle_workers.fetch_add(1, Ordering::Relaxed);
            parked_idle = true;
            let now_progress = shared.progress.load(Ordering::Relaxed);
            if now_progress != seen_progress {
                seen_progress = now_progress;
                last_global_change = Instant::now();
            } else if shared.idle_workers.load(Ordering::Relaxed) == shared.workers
                && shared.counters.quiescent()
                && last_global_change.elapsed() > shared.stall_timeout
            {
                shared.failed.store(true, Ordering::Relaxed);
                break;
            }
            idle_passes = idle_passes.saturating_add(1);
            if idle_passes > SPIN_PASSES_BEFORE_SLEEP {
                std::thread::sleep(Duration::from_millis(1));
            } else {
                std::thread::yield_now();
            }
        }
    }
    // A finished worker counts as idle so that peers blocked on a true
    // deadlock can still see "everyone idle" and time out.
    if !parked_idle {
        shared.idle_workers.fetch_add(1, Ordering::Relaxed);
    }
    shard.len() - remaining
}

impl<M: Wire + Send> Transport<M> for ThreadedTransport {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run(&self, actors: &mut [&mut dyn NodeActor<M>]) -> Result<WireTally, TransportError> {
        let n = actors.len();
        if n == 0 {
            return Ok(WireTally::new(0));
        }
        let counters = Arc::new(QueueCounters::new(n));
        let wire = Arc::new(SharedTally::new(n));
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel::<(usize, M)>();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut endpoints: Vec<ThreadedEndpoint<M>> = receivers
            .into_iter()
            .enumerate()
            .map(|(node, inbox)| ThreadedEndpoint {
                node,
                peers: senders.clone(),
                inbox,
                buffers: (0..n).map(|_| VecDeque::new()).collect(),
                counters: Arc::clone(&counters),
                wire: Arc::clone(&wire),
                activity: 0,
            })
            .collect();
        // Drop the template senders so channels close once all endpoints
        // are gone.
        drop(senders);

        let workers = self.threads.clamp(1, n);
        let shard_size = n.div_ceil(workers);
        let shared = WorkerShared::new(counters, n.div_ceil(shard_size), self.stall_timeout);
        let completed: usize = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            let mut rest: &mut [&mut dyn NodeActor<M>] = actors;
            while !rest.is_empty() {
                let take = shard_size.min(rest.len());
                let (shard, tail) = std::mem::take(&mut rest).split_at_mut(take);
                rest = tail;
                let shard_endpoints: Vec<_> = endpoints.drain(..take).collect();
                let shared = &shared;
                handles.push(scope.spawn(move || run_worker(shard, shard_endpoints, shared)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("transport worker panicked"))
                .sum()
        });
        if shared.failed.load(Ordering::Relaxed) {
            return Err(TransportError::Stalled {
                done: completed,
                actors: n,
            });
        }
        Ok(wire.collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every node sends its index to every other node, then sums what it
    /// receives from each peer in index order.
    struct Summer {
        node: usize,
        nodes: usize,
        sent: bool,
        next_peer: usize,
        sum: u64,
    }

    impl Summer {
        fn new(node: usize, nodes: usize) -> Self {
            Summer {
                node,
                nodes,
                sent: false,
                next_peer: 0,
                sum: 0,
            }
        }
    }

    impl NodeActor<u64> for Summer {
        fn poll(&mut self, ep: &mut dyn Endpoint<u64>) -> ActorStatus {
            if !self.sent {
                let batch: Vec<(usize, u64)> = (0..self.nodes)
                    .filter(|&p| p != self.node)
                    .map(|p| (p, self.node as u64))
                    .collect();
                ep.send_many(batch);
                self.sent = true;
            }
            while self.next_peer < self.nodes {
                if self.next_peer == self.node {
                    self.next_peer += 1;
                    continue;
                }
                match ep.try_recv_from(self.next_peer) {
                    Some(v) => {
                        self.sum += v;
                        self.next_peer += 1;
                    }
                    None => return ActorStatus::Idle,
                }
            }
            ActorStatus::Done
        }
    }

    fn run_summers(transport: &dyn Transport<u64>, n: usize) -> Vec<u64> {
        let mut actors: Vec<Summer> = (0..n).map(|i| Summer::new(i, n)).collect();
        {
            let mut refs: Vec<&mut dyn NodeActor<u64>> = actors
                .iter_mut()
                .map(|a| a as &mut dyn NodeActor<u64>)
                .collect();
            transport.run(&mut refs).unwrap();
        }
        actors.iter().map(|a| a.sum).collect()
    }

    #[test]
    fn sim_all_to_all_sums() {
        let sums = run_summers(&SimTransport, 5);
        // Each node receives 0+1+2+3+4 minus its own index.
        for (i, sum) in sums.iter().enumerate() {
            assert_eq!(*sum, 10 - i as u64);
        }
    }

    #[test]
    fn threaded_matches_sim() {
        for threads in [1, 2, 4] {
            let threaded = run_summers(&ThreadedTransport::with_threads(threads), 6);
            let sim = run_summers(&SimTransport, 6);
            assert_eq!(threaded, sim, "threads = {threads}");
        }
    }

    #[test]
    fn tally_measures_encoded_bytes_identically_on_both_backends() {
        // Every Summer message is one u64 = 8 encoded bytes; n = 5 nodes
        // send to every peer exactly once.
        let run_tally = |transport: &dyn Transport<u64>| {
            let mut actors: Vec<Summer> = (0..5).map(|i| Summer::new(i, 5)).collect();
            let mut refs: Vec<&mut dyn NodeActor<u64>> = actors
                .iter_mut()
                .map(|a| a as &mut dyn NodeActor<u64>)
                .collect();
            transport.run(&mut refs).unwrap()
        };
        let sim = run_tally(&SimTransport);
        let threaded = run_tally(&ThreadedTransport::with_threads(3));
        assert_eq!(sim, threaded);
        assert_eq!(sim.total_messages(), 5 * 4);
        assert_eq!(sim.total_bytes(), 5 * 4 * 8);
        assert_eq!(sim.bytes_between(0, 1), 8);
        assert_eq!(sim.bytes_between(0, 0), 0);
        assert_eq!(sim.sent_bytes(2), 4 * 8);
        assert_eq!(sim.received_bytes(2), 4 * 8);
    }

    #[test]
    fn empty_run_completes() {
        let mut refs: Vec<&mut dyn NodeActor<u64>> = Vec::new();
        assert!(SimTransport.run(&mut refs).is_ok());
        assert!(ThreadedTransport::new().run(&mut refs).is_ok());
        assert!(ThreadedTransport::default().threads() >= 1);
        assert_eq!(<SimTransport as Transport<u64>>::name(&SimTransport), "sim");
        assert_eq!(
            <ThreadedTransport as Transport<u64>>::name(&ThreadedTransport::new()),
            "threaded"
        );
    }

    /// An actor that waits forever for a message nobody sends.
    struct Starved;

    impl NodeActor<u64> for Starved {
        fn poll(&mut self, ep: &mut dyn Endpoint<u64>) -> ActorStatus {
            match ep.try_recv_from(0) {
                Some(_) => ActorStatus::Done,
                None => ActorStatus::Idle,
            }
        }
    }

    #[test]
    fn sim_detects_stall() {
        let mut a = Starved;
        let mut b = Starved;
        let mut refs: Vec<&mut dyn NodeActor<u64>> = vec![&mut a, &mut b];
        let err = SimTransport.run(&mut refs).unwrap_err();
        assert_eq!(err, TransportError::Stalled { done: 0, actors: 2 });
        assert!(err.to_string().contains("stalled"));
    }

    #[test]
    fn threaded_detects_genuine_stall() {
        // Two actors each waiting for a message nobody sends: the system
        // is quiescent (no message in any queue), every worker parks, and
        // the timeout fires.
        let mut a = Starved;
        let mut b = Starved;
        let mut refs: Vec<&mut dyn NodeActor<u64>> = vec![&mut a, &mut b];
        let transport =
            ThreadedTransport::with_threads(2).with_stall_timeout(Duration::from_millis(50));
        let err = transport.run(&mut refs).unwrap_err();
        assert!(matches!(
            err,
            TransportError::Stalled { done: 0, actors: 2 }
        ));
    }

    /// Node 2 kicks node 0; node 0 then "computes" for longer than the
    /// stall timeout before emitting a large batched payload to node 1;
    /// node 1 consumes the batch.
    enum Batcher {
        Kicker,
        SlowProducer {
            batch: usize,
            payload: usize,
        },
        Consumer {
            received: usize,
            expected: usize,
            sum: u64,
        },
    }

    impl NodeActor<Vec<u64>> for Batcher {
        fn poll(&mut self, ep: &mut dyn Endpoint<Vec<u64>>) -> ActorStatus {
            match self {
                Batcher::Kicker => {
                    ep.send(0, vec![1]);
                    ActorStatus::Done
                }
                Batcher::SlowProducer { batch, payload } => {
                    if ep.try_recv_from(2).is_none() {
                        return ActorStatus::Idle;
                    }
                    // A long computation between rounds: the run must not
                    // be declared stalled while this worker is busy, even
                    // though every *other* worker is parked idle.
                    std::thread::sleep(Duration::from_millis(150));
                    let messages: Vec<(usize, Vec<u64>)> = (0..*batch)
                        .map(|i| (1usize, vec![i as u64; *payload]))
                        .collect();
                    ep.send_many(messages);
                    ActorStatus::Done
                }
                Batcher::Consumer {
                    received,
                    expected,
                    sum,
                } => {
                    while *received < *expected {
                        match ep.try_recv_from(0) {
                            Some(payload) => {
                                *sum += payload.iter().sum::<u64>();
                                *received += 1;
                            }
                            None => return ActorStatus::Idle,
                        }
                    }
                    ActorStatus::Done
                }
            }
        }
    }

    /// Regression test for spurious stalls: with the old idle accounting
    /// (workers unparked only *after* a pass with progress), a worker
    /// stuck in a long computation still counted as idle, so the timeout
    /// could fire with batched messages still in flight.  The quiescence
    /// check plus unpark-before-pass must ride out a computation much
    /// longer than the stall timeout.
    #[test]
    fn large_batched_payloads_do_not_trip_stall_detection() {
        let (batch, payload) = (64usize, 4096usize);
        let mut producer = Batcher::SlowProducer { batch, payload };
        let mut consumer = Batcher::Consumer {
            received: 0,
            expected: batch,
            sum: 0,
        };
        let mut kicker = Batcher::Kicker;
        let mut refs: Vec<&mut dyn NodeActor<Vec<u64>>> =
            vec![&mut producer, &mut consumer, &mut kicker];
        let transport =
            ThreadedTransport::with_threads(3).with_stall_timeout(Duration::from_millis(40));
        transport.run(&mut refs).unwrap();
        let Batcher::Consumer { received, sum, .. } = consumer else {
            unreachable!();
        };
        assert_eq!(received, batch);
        // sum of i * payload for i in 0..batch
        let expected: u64 = (0..batch as u64).map(|i| i * payload as u64).sum();
        assert_eq!(sum, expected);
    }

    /// A message sent to a node whose worker has already *exited* (so
    /// nobody can ever drain its channel again) must not count as
    /// traffic in flight, or a genuine stall would hang forever instead
    /// of timing out.
    #[test]
    fn messages_to_exited_workers_do_not_hang_stall_detection() {
        /// Node 1: finishes on its very first poll, so its worker exits.
        struct InstantDone;
        impl NodeActor<u64> for InstantDone {
            fn poll(&mut self, _ep: &mut dyn Endpoint<u64>) -> ActorStatus {
                ActorStatus::Done
            }
        }
        /// Node 0: sends to the long-gone node 1, then waits forever for
        /// a reply nobody will send.
        struct SendThenStarve {
            sent: bool,
        }
        impl NodeActor<u64> for SendThenStarve {
            fn poll(&mut self, ep: &mut dyn Endpoint<u64>) -> ActorStatus {
                if !self.sent {
                    // Give node 1's worker time to exit first, so the
                    // message lands in a channel nobody will ever drain.
                    std::thread::sleep(Duration::from_millis(20));
                    ep.send(1, 99);
                    self.sent = true;
                }
                match ep.try_recv_from(1) {
                    Some(_) => ActorStatus::Done,
                    None => ActorStatus::Idle,
                }
            }
        }
        let mut starver = SendThenStarve { sent: false };
        let mut instant = InstantDone;
        let mut refs: Vec<&mut dyn NodeActor<u64>> = vec![&mut starver, &mut instant];
        let transport =
            ThreadedTransport::with_threads(2).with_stall_timeout(Duration::from_millis(50));
        let err = transport.run(&mut refs).unwrap_err();
        assert!(matches!(
            err,
            TransportError::Stalled { done: 1, actors: 2 }
        ));
    }

    /// A message that its recipient will never consume must not be read
    /// as "in flight" forever — the idle sweep drains it into the reorder
    /// buffers so a genuinely stalled run still times out.
    #[test]
    fn unconsumed_messages_do_not_mask_a_stall() {
        struct FireAndForget;
        impl NodeActor<u64> for FireAndForget {
            fn poll(&mut self, ep: &mut dyn Endpoint<u64>) -> ActorStatus {
                ep.send(0, 7);
                ActorStatus::Done
            }
        }
        // Node 0 only ever waits on a message from itself, so node 1's
        // message sits in node 0's buffers unconsumed.
        let mut starved = Starved;
        let mut sender = FireAndForget;
        let mut refs: Vec<&mut dyn NodeActor<u64>> = vec![&mut starved, &mut sender];
        let transport =
            ThreadedTransport::with_threads(2).with_stall_timeout(Duration::from_millis(50));
        let err = transport.run(&mut refs).unwrap_err();
        assert!(matches!(
            err,
            TransportError::Stalled { done: 1, actors: 2 }
        ));
    }
}
