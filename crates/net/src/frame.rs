//! Length-prefixed framing for [`crate::wire::Wire`] payloads on a byte
//! stream.
//!
//! TCP delivers a byte stream, not messages; this module restores message
//! boundaries with the smallest possible self-describing envelope:
//!
//! ```text
//! +--------+-----------------+-------------------+
//! | 0xD5   | length (u32 LE) | payload (length)  |
//! +--------+-----------------+-------------------+
//! ```
//!
//! The magic byte catches desynchronised streams (trailing garbage, a
//! peer speaking a different protocol) immediately instead of letting a
//! bogus length prefix stall the connection, and the length field is
//! capped at [`MAX_FRAME_PAYLOAD`] so a hostile or corrupted prefix can
//! never drive an unbounded allocation.
//!
//! Decoding is incremental: a [`FrameDecoder`] is fed whatever chunks the
//! socket produces (`push`) and yields complete frames (`next_frame`)
//! whenever enough bytes have arrived.  On connection close,
//! [`FrameDecoder::finish`] turns a half-received frame into a typed
//! [`FrameError::Torn`] instead of silently dropping bytes.
//!
//! The frame header is *transport overhead*, not protocol traffic: the
//! socket transport's [`crate::wire::WireTally`] records only the
//! `Wire`-encoded payload length, so measured `wire_bytes` stay
//! byte-identical across the sim, threaded, and socket backends.

use core::fmt;

/// First byte of every frame.  `0xD5` — "DStress, version 5 seed" — is
/// outside ASCII so an HTTP client or stray text stream fails the magic
/// check on its very first byte.
pub const FRAME_MAGIC: u8 = 0xD5;

/// Bytes of framing overhead per message: magic plus `u32` length.
pub const FRAME_HEADER_LEN: usize = 5;

/// Upper bound a decoder accepts for a frame payload (64 MiB).  Larger
/// prefixes are rejected as [`FrameError::Oversized`] *before* any
/// allocation happens.
pub const MAX_FRAME_PAYLOAD: u32 = 64 << 20;

/// Errors produced by the frame layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The stream position where a frame should start held a byte other
    /// than [`FRAME_MAGIC`]: the stream is desynchronised or the peer is
    /// not speaking this protocol.
    BadMagic {
        /// The byte found where the magic was expected.
        found: u8,
    },
    /// A length prefix exceeded the decoder's payload cap.
    Oversized {
        /// The length the prefix claimed.
        length: u32,
        /// The decoder's configured cap.
        max: u32,
    },
    /// The stream ended in the middle of a frame (header or payload).
    Torn {
        /// Bytes of the unfinished frame that had arrived.
        buffered: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { found } => {
                write!(
                    f,
                    "bad frame magic: expected 0x{FRAME_MAGIC:02x}, found 0x{found:02x}"
                )
            }
            FrameError::Oversized { length, max } => {
                write!(f, "frame payload length {length} exceeds cap {max}")
            }
            FrameError::Torn { buffered } => {
                write!(f, "stream closed mid-frame with {buffered} bytes buffered")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Wraps a payload in a frame: magic, `u32` little-endian length, bytes.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    encode_frame_into(&mut out, payload);
    out
}

/// Appends a framed copy of `payload` to `out` (the allocation-reusing
/// form of [`encode_frame`]).
pub fn encode_frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.push(FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Incremental frame decoder: feed it stream chunks, pop complete frames.
///
/// The decoder buffers at most one frame plus whatever partial bytes the
/// last `push` left behind; consumed bytes are compacted away so a
/// long-lived connection does not grow the buffer without bound.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Index of the first unconsumed byte in `buf`.
    start: usize,
    max_payload: u32,
}

impl FrameDecoder {
    /// A decoder with the default [`MAX_FRAME_PAYLOAD`] cap.
    pub fn new() -> Self {
        FrameDecoder::with_max_payload(MAX_FRAME_PAYLOAD)
    }

    /// A decoder with an explicit payload cap (useful to make oversize
    /// tests cheap, or to tighten limits on registration channels where
    /// only small control frames are legitimate).
    pub fn with_max_payload(max_payload: u32) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            max_payload,
        }
    }

    /// Feeds a chunk of stream bytes into the decoder.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `start` is consumed.
        if self.start > 0 && (self.start == self.buf.len() || self.start >= 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame's payload, if one has fully arrived.
    ///
    /// Returns `Ok(None)` when more bytes are needed.  Errors are sticky
    /// in practice — a desynchronised stream has no recovery point — so
    /// callers should drop the connection on the first error.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let pending = &self.buf[self.start..];
        if pending.is_empty() {
            return Ok(None);
        }
        if pending[0] != FRAME_MAGIC {
            return Err(FrameError::BadMagic { found: pending[0] });
        }
        if pending.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let length = u32::from_le_bytes([pending[1], pending[2], pending[3], pending[4]]);
        if length > self.max_payload {
            return Err(FrameError::Oversized {
                length,
                max: self.max_payload,
            });
        }
        let total = FRAME_HEADER_LEN + length as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let payload = pending[FRAME_HEADER_LEN..total].to_vec();
        self.start += total;
        Ok(Some(payload))
    }

    /// Bytes currently buffered but not yet consumed as complete frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Declares the stream closed: a partial frame still buffered is a
    /// torn frame ([`FrameError::Torn`]); an empty buffer is a clean
    /// close.
    pub fn finish(&self) -> Result<(), FrameError> {
        match self.buffered() {
            0 => Ok(()),
            buffered => Err(FrameError::Torn { buffered }),
        }
    }
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::hex;

    #[test]
    fn golden_frame_header() {
        // Magic 0xD5, u32 LE length, raw payload.  Pinned as hex so any
        // accidental header change breaks loudly.
        assert_eq!(hex(&encode_frame(&[])), "d500000000");
        assert_eq!(hex(&encode_frame(&[0xAA, 0xBB])), "d502000000aabb");
        assert_eq!(
            hex(&encode_frame(&[0x01, 0x02, 0x03, 0x04, 0x05])),
            "d5050000000102030405"
        );
    }

    #[test]
    fn round_trips_frames_across_arbitrary_chunk_boundaries() {
        let payloads: Vec<Vec<u8>> = vec![
            vec![],
            vec![0x42],
            (0..=255u8).collect(),
            vec![FRAME_MAGIC; 300], // payload bytes that look like magic
        ];
        let mut stream = Vec::new();
        for p in &payloads {
            encode_frame_into(&mut stream, p);
        }
        // Feed the byte stream one byte at a time — the worst possible
        // chunking a socket can produce.
        let mut decoder = FrameDecoder::new();
        let mut out = Vec::new();
        for byte in &stream {
            decoder.push(std::slice::from_ref(byte));
            while let Some(frame) = decoder.next_frame().unwrap() {
                out.push(frame);
            }
        }
        assert_eq!(out, payloads);
        decoder.finish().unwrap();
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn torn_frame_is_reported_on_close() {
        let full = encode_frame(&[7; 100]);
        let mut decoder = FrameDecoder::new();
        decoder.push(&full[..20]); // header + 15 of 100 payload bytes
        assert_eq!(decoder.next_frame().unwrap(), None);
        assert_eq!(decoder.finish(), Err(FrameError::Torn { buffered: 20 }));
        // A torn *header* is just as torn.
        let mut decoder = FrameDecoder::new();
        decoder.push(&full[..3]);
        assert_eq!(decoder.next_frame().unwrap(), None);
        assert_eq!(decoder.finish(), Err(FrameError::Torn { buffered: 3 }));
    }

    #[test]
    fn trailing_garbage_fails_the_magic_check() {
        let mut stream = encode_frame(&[1, 2, 3]);
        stream.extend_from_slice(b"GET / HTTP/1.0\r\n");
        let mut decoder = FrameDecoder::new();
        decoder.push(&stream);
        assert_eq!(decoder.next_frame().unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(
            decoder.next_frame(),
            Err(FrameError::BadMagic { found: b'G' })
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut decoder = FrameDecoder::with_max_payload(1024);
        let mut header = vec![FRAME_MAGIC];
        header.extend_from_slice(&(1025u32).to_le_bytes());
        decoder.push(&header);
        assert_eq!(
            decoder.next_frame(),
            Err(FrameError::Oversized {
                length: 1025,
                max: 1024
            })
        );
        // The default cap rejects a hostile 4 GiB prefix the same way.
        let mut decoder = FrameDecoder::new();
        let mut header = vec![FRAME_MAGIC];
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        decoder.push(&header);
        assert_eq!(
            decoder.next_frame(),
            Err(FrameError::Oversized {
                length: u32::MAX,
                max: MAX_FRAME_PAYLOAD
            })
        );
    }

    #[test]
    fn buffer_compaction_keeps_memory_bounded() {
        let frame = encode_frame(&[9; 64]);
        let mut decoder = FrameDecoder::new();
        for _ in 0..10_000 {
            decoder.push(&frame);
            assert!(decoder.next_frame().unwrap().is_some());
        }
        // Consumed bytes must not accumulate: after compaction the live
        // buffer is at most a few frames, not 10_000 of them.
        assert!(decoder.buf.capacity() < 16 * frame.len() + 8192);
        decoder.finish().unwrap();
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Any sequence of payloads, cut into arbitrary chunks,
            /// decodes back to exactly the same sequence.
            #[test]
            fn prop_frames_round_trip_under_arbitrary_chunking(
                payloads in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 0..128),
                    0..8,
                ),
                chunk in 1usize..64,
            ) {
                let mut stream = Vec::new();
                for p in &payloads {
                    encode_frame_into(&mut stream, p);
                }
                let mut decoder = FrameDecoder::new();
                let mut out = Vec::new();
                for piece in stream.chunks(chunk) {
                    decoder.push(piece);
                    while let Some(frame) = decoder.next_frame().unwrap() {
                        out.push(frame);
                    }
                }
                prop_assert_eq!(out, payloads);
                prop_assert!(decoder.finish().is_ok());
            }

            /// Corrupting the magic byte of any frame in a stream is
            /// always rejected as `BadMagic`, never misparsed.
            #[test]
            fn prop_corrupt_magic_is_rejected(
                payload in proptest::collection::vec(any::<u8>(), 0..64),
                wrong in any::<u8>(),
            ) {
                prop_assume!(wrong != FRAME_MAGIC);
                let mut stream = encode_frame(&payload);
                stream[0] = wrong;
                let mut decoder = FrameDecoder::new();
                decoder.push(&stream);
                prop_assert_eq!(
                    decoder.next_frame(),
                    Err(FrameError::BadMagic { found: wrong })
                );
            }

            /// Truncating a framed stream anywhere strictly inside the
            /// frame is reported as `Torn` on close, with the buffered
            /// count matching the cut.
            #[test]
            fn prop_any_truncation_is_torn(
                payload in proptest::collection::vec(any::<u8>(), 1..64),
                frac in 0.0f64..1.0,
            ) {
                let stream = encode_frame(&payload);
                let cut = 1 + ((stream.len() - 2) as f64 * frac) as usize;
                let mut decoder = FrameDecoder::new();
                decoder.push(&stream[..cut]);
                prop_assert_eq!(decoder.next_frame().unwrap(), None);
                prop_assert_eq!(
                    decoder.finish(),
                    Err(FrameError::Torn { buffered: cut })
                );
            }
        }
    }

    #[test]
    fn errors_display_usefully() {
        assert!(FrameError::BadMagic { found: 0x47 }
            .to_string()
            .contains("0x47"));
        assert!(FrameError::Oversized { length: 9, max: 8 }
            .to_string()
            .contains('9'));
        assert!(FrameError::Torn { buffered: 3 }.to_string().contains('3'));
    }
}
