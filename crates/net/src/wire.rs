//! The hand-rolled wire format every protocol message travels through.
//!
//! The simulated network used to hand protocol messages around as Rust
//! objects and account their sizes from the analytical cost model.  This
//! module is the real serialisation layer that replaced that: a [`Wire`]
//! trait (`encode_into` / `decode`) plus the primitive building blocks —
//! little-endian fixed-width integers, LEB128 varints, length-prefixed
//! byte strings and bit-packed boolean planes — that the protocol crates
//! compose their message layouts from.
//!
//! Both transport backends route **every** [`crate::transport::Endpoint`]
//! send through `encode → byte buffer → decode`, so a message that cannot
//! round-trip fails loudly in every test that exchanges it, and the byte
//! counts recorded in a [`WireTally`] are *measured* (the length of the
//! actual encoding), not modeled.
//!
//! ## Layout conventions
//!
//! * Multi-byte integers are little-endian.
//! * Varints are unsigned LEB128 (7 bits per byte, high bit = continue),
//!   at most 10 bytes; overlong encodings of ≥ 2^64 are rejected.
//! * Byte strings are a varint length followed by the raw bytes.
//! * Bit planes pack `bool`s LSB-first, eight per byte; unused padding
//!   bits in the final byte must be zero (decoders reject garbage there).
//! * Every decoder consumes exactly what the encoder produced; the
//!   [`Wire::decode_exact`] entry point additionally rejects trailing
//!   bytes.
//!
//! ## Example
//!
//! ```
//! use dstress_net::wire::{self, Wire};
//!
//! let mut buf = Vec::new();
//! wire::put_uvarint(&mut buf, 300);
//! wire::put_bits(&mut buf, &[true, false, true]);
//! let mut rd: &[u8] = &buf;
//! assert_eq!(wire::get_uvarint(&mut rd).unwrap(), 300);
//! assert_eq!(wire::get_bits(&mut rd, 3).unwrap(), vec![true, false, true]);
//! assert!(rd.is_empty());
//!
//! // Containers of `Wire` values round-trip through the trait itself.
//! let v: Vec<u64> = vec![1, 2, 3];
//! assert_eq!(Vec::<u64>::decode_exact(&v.encode()).unwrap(), v);
//! ```

use core::fmt;

/// Errors produced while decoding a wire buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes that were actually available.
        available: usize,
    },
    /// A full value was decoded but bytes remained
    /// (only reported by [`Wire::decode_exact`]).
    Trailing {
        /// Undecoded bytes left in the buffer.
        remaining: usize,
    },
    /// A message tag byte did not name any known variant.
    BadTag {
        /// The offending tag.
        tag: u8,
        /// What was being decoded.
        what: &'static str,
    },
    /// A varint ran past 10 bytes or encoded a value ≥ 2^64.
    VarintOverflow,
    /// A field held a value its type forbids (non-0/1 bool byte, set
    /// padding bits in a bit plane, out-of-range width, …).
    Invalid {
        /// What was being decoded.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(
                    f,
                    "wire buffer truncated: needed {needed} bytes, {available} available"
                )
            }
            WireError::Trailing { remaining } => {
                write!(
                    f,
                    "wire buffer has {remaining} trailing bytes after the value"
                )
            }
            WireError::BadTag { tag, what } => write!(f, "unknown {what} tag {tag:#04x}"),
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::Invalid { what } => write!(f, "invalid {what} field"),
        }
    }
}

impl std::error::Error for WireError {}

/// A value with a defined wire encoding.
///
/// `decode` consumes its encoding from the front of `buf` (advancing the
/// slice), so composite messages decode field by field; `decode_exact`
/// is the message-boundary entry point that also rejects trailing bytes.
pub trait Wire: Sized {
    /// Appends the value's encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decodes a value from the front of `buf`, advancing it past the
    /// consumed bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the buffer is truncated or malformed.
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;

    /// The value's encoding as a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes a value that must span the *entire* buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Trailing`] if bytes remain after the value,
    /// or any error of [`Wire::decode`].
    fn decode_exact(mut buf: &[u8]) -> Result<Self, WireError> {
        let value = Self::decode(&mut buf)?;
        if buf.is_empty() {
            Ok(value)
        } else {
            Err(WireError::Trailing {
                remaining: buf.len(),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive readers/writers
// ---------------------------------------------------------------------------

/// Takes `n` raw bytes off the front of `buf` — the bounds-checked
/// consumption primitive every other reader builds on, public so
/// downstream codecs with fixed-width fields (e.g. group elements) can
/// share it instead of re-implementing the check.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] if fewer than `n` bytes remain.
pub fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if buf.len() < n {
        return Err(WireError::Truncated {
            needed: n,
            available: buf.len(),
        });
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

/// Writes one raw byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Reads one raw byte.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] on an empty buffer.
pub fn get_u8(buf: &mut &[u8]) -> Result<u8, WireError> {
    Ok(take(buf, 1)?[0])
}

/// Writes a little-endian `u32`.
pub fn put_u32_le(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian `u32`.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] if fewer than 4 bytes remain.
pub fn get_u32_le(buf: &mut &[u8]) -> Result<u32, WireError> {
    let bytes = take(buf, 4)?;
    Ok(u32::from_le_bytes(bytes.try_into().expect("took 4 bytes")))
}

/// Writes a little-endian `u64`.
pub fn put_u64_le(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian `u64`.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] if fewer than 8 bytes remain.
pub fn get_u64_le(buf: &mut &[u8]) -> Result<u64, WireError> {
    let bytes = take(buf, 8)?;
    Ok(u64::from_le_bytes(bytes.try_into().expect("took 8 bytes")))
}

/// Writes an unsigned LEB128 varint (1 byte for values < 128).
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads an unsigned LEB128 varint.
///
/// # Errors
///
/// Returns [`WireError::VarintOverflow`] past 10 bytes or 64 bits, and
/// [`WireError::Truncated`] if the continuation runs off the buffer.
pub fn get_uvarint(buf: &mut &[u8]) -> Result<u64, WireError> {
    let mut value = 0u64;
    for shift in (0..64).step_by(7) {
        let byte = get_u8(buf)?;
        let chunk = (byte & 0x7F) as u64;
        if shift == 63 && chunk > 1 {
            return Err(WireError::VarintOverflow);
        }
        value |= chunk << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(WireError::VarintOverflow)
}

/// The encoded size of a varint, for closed-form length formulas that
/// must match [`put_uvarint`] byte for byte.
pub fn uvarint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Writes a length-prefixed byte string (varint length + raw bytes).
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_uvarint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Reads a length-prefixed byte string.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] if the declared length exceeds the
/// remaining buffer, plus any varint error.
pub fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, WireError> {
    let len = get_uvarint(buf)? as usize;
    Ok(take(buf, len)?.to_vec())
}

/// Packs `bits` LSB-first, eight per byte (the length is *not* encoded;
/// composite messages carry it in their own header).  Padding bits in the
/// final byte are zero, and [`get_bits`] rejects anything else.
pub fn put_bits(out: &mut Vec<u8>, bits: &[bool]) {
    let mut byte = 0u8;
    for (i, &bit) in bits.iter().enumerate() {
        if bit {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if bits.len() % 8 != 0 {
        out.push(byte);
    }
}

/// The packed size of an `n`-bit plane.
pub fn bits_len(n: usize) -> usize {
    n.div_ceil(8)
}

/// Unpacks an `n`-bit plane written by [`put_bits`].
///
/// # Errors
///
/// Returns [`WireError::Truncated`] if the plane runs off the buffer and
/// [`WireError::Invalid`] if any padding bit of the final byte is set.
pub fn get_bits(buf: &mut &[u8], n: usize) -> Result<Vec<bool>, WireError> {
    let bytes = take(buf, bits_len(n))?;
    let pad = bits_len(n) * 8 - n;
    if pad > 0 && bytes[bytes.len() - 1] >> (8 - pad) != 0 {
        return Err(WireError::Invalid {
            what: "bit-plane padding",
        });
    }
    Ok((0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect())
}

/// Renders a buffer as lowercase hex, for golden byte-layout fixtures.
pub fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

// ---------------------------------------------------------------------------
// Wire impls for primitives and containers
// ---------------------------------------------------------------------------

impl Wire for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u8(out, *self as u8);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match get_u8(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid { what: "bool" }),
        }
    }
}

impl Wire for u8 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u8(out, *self);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        get_u8(buf)
    }
}

impl Wire for u32 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u32_le(out, *self);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        get_u32_le(buf)
    }
}

impl Wire for u64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u64_le(out, *self);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        get_u64_le(buf)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.len() as u64);
        for item in self {
            item.encode_into(out);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let len = get_uvarint(buf)? as usize;
        // Guard allocation against a lying length prefix: every element
        // costs at least one byte.
        if len > buf.len() {
            return Err(WireError::Truncated {
                needed: len,
                available: buf.len(),
            });
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(buf)?);
        }
        Ok(items)
    }
}

// ---------------------------------------------------------------------------
// Measured byte accounting
// ---------------------------------------------------------------------------

/// Measured wire traffic of one transport run: encoded bytes and message
/// counts per ordered `(from, to)` pair of local node indices.
///
/// Both transport backends fill one of these as they encode messages at
/// the send boundary; [`crate::transport::Transport::run`] returns it so
/// protocol executors can attribute *measured* bytes to real node
/// identities next to the cost model's analytical totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireTally {
    nodes: usize,
    bytes: Vec<u64>,
    messages: Vec<u64>,
}

impl WireTally {
    /// An empty tally over `nodes` local nodes.
    pub fn new(nodes: usize) -> Self {
        WireTally {
            nodes,
            bytes: vec![0; nodes * nodes],
            messages: vec![0; nodes * nodes],
        }
    }

    /// Number of local nodes the tally covers.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Records one encoded message of `bytes` bytes from `from` to `to`.
    pub fn record(&mut self, from: usize, to: usize, bytes: u64) {
        self.add(from, to, bytes, 1);
    }

    /// Adds `messages` messages totalling `bytes` bytes to a pair's
    /// counters (bulk entry point for backends that batch their counts).
    pub fn add(&mut self, from: usize, to: usize, bytes: u64, messages: u64) {
        let idx = from * self.nodes + to;
        self.bytes[idx] += bytes;
        self.messages[idx] += messages;
    }

    /// Measured bytes sent from `from` to `to`.
    pub fn bytes_between(&self, from: usize, to: usize) -> u64 {
        self.bytes[from * self.nodes + to]
    }

    /// Measured messages sent from `from` to `to`.
    pub fn messages_between(&self, from: usize, to: usize) -> u64 {
        self.messages[from * self.nodes + to]
    }

    /// Measured bytes sent by one node (all peers).
    pub fn sent_bytes(&self, node: usize) -> u64 {
        (0..self.nodes).map(|to| self.bytes_between(node, to)).sum()
    }

    /// Measured bytes received by one node (all peers).
    pub fn received_bytes(&self, node: usize) -> u64 {
        (0..self.nodes)
            .map(|from| self.bytes_between(from, node))
            .sum()
    }

    /// Total measured bytes across all pairs.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total measured messages across all pairs.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Iterates over all pairs with non-zero traffic as
    /// `(from, to, bytes, messages)`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, u64, u64)> + '_ {
        (0..self.nodes * self.nodes).filter_map(move |idx| {
            let (bytes, messages) = (self.bytes[idx], self.messages[idx]);
            (messages > 0).then_some((idx / self.nodes, idx % self.nodes, bytes, messages))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_boundaries() {
        for (value, len) in [
            (0u64, 1),
            (1, 1),
            (127, 1),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u32::MAX as u64, 5),
            (u64::MAX, 10),
        ] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, value);
            assert_eq!(buf.len(), len, "value {value}");
            assert_eq!(uvarint_len(value), len, "value {value}");
            let mut rd: &[u8] = &buf;
            assert_eq!(get_uvarint(&mut rd).unwrap(), value);
            assert!(rd.is_empty());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 11 continuation bytes: more than a u64 can hold.
        let overlong = [0xFFu8; 11];
        assert_eq!(
            get_uvarint(&mut &overlong[..]),
            Err(WireError::VarintOverflow)
        );
        // 10th byte carrying more than the single remaining bit.
        let mut too_big = [0x80u8; 10];
        too_big[9] = 0x02;
        assert_eq!(
            get_uvarint(&mut &too_big[..]),
            Err(WireError::VarintOverflow)
        );
        // A continuation bit with nothing after it.
        let cut = [0x80u8];
        assert!(matches!(
            get_uvarint(&mut &cut[..]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn bit_planes_pack_lsb_first_and_reject_dirty_padding() {
        let bits = [true, false, false, true, true, false, true, false, true];
        let mut buf = Vec::new();
        put_bits(&mut buf, &bits);
        assert_eq!(buf, vec![0b0101_1001, 0b0000_0001]);
        assert_eq!(bits_len(bits.len()), 2);
        let mut rd: &[u8] = &buf;
        assert_eq!(get_bits(&mut rd, 9).unwrap(), bits);

        // Same bytes decoded at a width that leaves padding: the set
        // high bit must be rejected, not silently dropped.
        let dirty = [0b1101_1001u8];
        assert_eq!(
            get_bits(&mut &dirty[..], 7),
            Err(WireError::Invalid {
                what: "bit-plane padding"
            })
        );
        // Empty plane costs zero bytes.
        let mut empty = Vec::new();
        put_bits(&mut empty, &[]);
        assert!(empty.is_empty());
        assert_eq!(get_bits(&mut &empty[..], 0).unwrap(), Vec::<bool>::new());
    }

    #[test]
    fn primitive_wire_impls_round_trip() {
        assert!(bool::decode_exact(&true.encode()).unwrap());
        assert!(!bool::decode_exact(&false.encode()).unwrap());
        assert_eq!(u8::decode_exact(&0xAB_u8.encode()).unwrap(), 0xAB);
        assert_eq!(
            u32::decode_exact(&0xDEAD_BEEF_u32.encode()).unwrap(),
            0xDEAD_BEEF
        );
        assert_eq!(
            u64::decode_exact(&0x0123_4567_89AB_CDEF_u64.encode()).unwrap(),
            0x0123_4567_89AB_CDEF
        );
        assert_eq!(
            bool::decode_exact(&[2]),
            Err(WireError::Invalid { what: "bool" })
        );
    }

    #[test]
    fn decode_exact_rejects_trailing_garbage() {
        let mut buf = 7u32.encode();
        buf.push(0x99);
        assert_eq!(
            u32::decode_exact(&buf),
            Err(WireError::Trailing { remaining: 1 })
        );
    }

    #[test]
    fn vec_round_trips_and_guards_length_lies() {
        let v: Vec<u64> = vec![0, 1, u64::MAX];
        assert_eq!(Vec::<u64>::decode_exact(&v.encode()).unwrap(), v);
        let nested: Vec<Vec<u32>> = vec![vec![], vec![1, 2]];
        assert_eq!(
            Vec::<Vec<u32>>::decode_exact(&nested.encode()).unwrap(),
            nested
        );

        // A length prefix claiming far more elements than bytes remain
        // must fail fast instead of allocating.
        let mut lying = Vec::new();
        put_uvarint(&mut lying, 1 << 40);
        assert!(matches!(
            Vec::<u8>::decode(&mut &lying[..]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn wire_errors_display() {
        for (err, needle) in [
            (
                WireError::Truncated {
                    needed: 4,
                    available: 1,
                },
                "truncated",
            ),
            (WireError::Trailing { remaining: 2 }, "trailing"),
            (
                WireError::BadTag {
                    tag: 9,
                    what: "message",
                },
                "tag",
            ),
            (WireError::VarintOverflow, "varint"),
            (WireError::Invalid { what: "bool" }, "invalid"),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn tally_accumulates_per_pair() {
        let mut tally = WireTally::new(3);
        tally.record(0, 1, 10);
        tally.record(0, 1, 5);
        tally.record(2, 0, 7);
        assert_eq!(tally.nodes(), 3);
        assert_eq!(tally.bytes_between(0, 1), 15);
        assert_eq!(tally.messages_between(0, 1), 2);
        assert_eq!(tally.sent_bytes(0), 15);
        assert_eq!(tally.received_bytes(0), 7);
        assert_eq!(tally.total_bytes(), 22);
        assert_eq!(tally.total_messages(), 3);
        let pairs: Vec<_> = tally.pairs().collect();
        assert_eq!(pairs, vec![(0, 1, 15, 2), (2, 0, 7, 1)]);
    }

    #[test]
    fn hex_renders_lowercase() {
        assert_eq!(hex(&[0x00, 0xAB, 0x10]), "00ab10");
        assert_eq!(hex(&[]), "");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_uvarint_round_trips(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            prop_assert_eq!(buf.len(), uvarint_len(v));
            let mut rd: &[u8] = &buf;
            prop_assert_eq!(get_uvarint(&mut rd).unwrap(), v);
            prop_assert!(rd.is_empty());
        }

        #[test]
        fn prop_bits_round_trip(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
            let mut buf = Vec::new();
            put_bits(&mut buf, &bits);
            prop_assert_eq!(buf.len(), bits_len(bits.len()));
            let mut rd: &[u8] = &buf;
            prop_assert_eq!(get_bits(&mut rd, bits.len()).unwrap(), bits);
            prop_assert!(rd.is_empty());
        }

        #[test]
        fn prop_vec_u64_round_trips(v in proptest::collection::vec(any::<u64>(), 0..32)) {
            prop_assert_eq!(Vec::<u64>::decode_exact(&v.encode()).unwrap(), v);
        }

        #[test]
        fn prop_truncated_buffers_error_not_panic(v in proptest::collection::vec(any::<u64>(), 1..16)) {
            let full = v.encode();
            for cut in 0..full.len() {
                prop_assert!(Vec::<u64>::decode_exact(&full[..cut]).is_err());
            }
        }
    }
}
