//! A minimal worker pool for embarrassingly-parallel simulation work.
//!
//! The engine uses this to execute independent blocks concurrently and the
//! benchmark harness uses it to fan figure sweeps out over parameter
//! points.  The pool is deliberately tiny: scoped threads, a shared work
//! queue, results returned in input order so that callers stay
//! deterministic regardless of scheduling.
//!
//! ## Example
//!
//! ```
//! use dstress_net::pool::{default_threads, parallel_map};
//!
//! let squares = parallel_map((0u64..8).collect(), 4, |_idx, x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! assert!(default_threads() >= 1);
//! ```

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Mutex;

/// Splits `0..total` into consecutive index windows of at most `window`
/// elements — the block-scheduling primitive of the streaming engine:
/// each window is the set of blocks materialised in flight at once, so
/// `window` directly bounds peak working memory while the global index
/// order (and therefore every derived task seed) stays identical to a
/// single-window run.
///
/// A `window` of zero is treated as one; `usize::MAX` yields a single
/// window (the fully materialised schedule).
///
/// ## Example
///
/// ```
/// use dstress_net::pool::windowed;
///
/// let spans: Vec<_> = windowed(7, 3).collect();
/// assert_eq!(spans, vec![0..3, 3..6, 6..7]);
/// assert_eq!(windowed(7, usize::MAX).count(), 1);
/// assert_eq!(windowed(0, 4).count(), 0);
/// ```
pub fn windowed(total: usize, window: usize) -> impl Iterator<Item = Range<usize>> {
    let window = window.max(1);
    let mut start = 0;
    std::iter::from_fn(move || {
        if start >= total {
            return None;
        }
        let end = start.saturating_add(window).min(total);
        let span = start..end;
        start = end;
        Some(span)
    })
}

/// One worker per available hardware thread (at least one).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on a pool of `threads` workers and returns
/// the results in input order.
///
/// `f` receives `(index, item)` so callers can derive per-task seeds from
/// the input position.  With `threads <= 1` (or a single item) everything
/// runs inline on the calling thread — the deterministic "sequential"
/// mode is literally the same code path with a pool of one.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("pool queue poisoned").pop_front();
                let Some((index, item)) = job else { break };
                let result = f(index, item);
                results.lock().expect("pool results poisoned")[index] = Some(result);
            });
        }
    });
    results
        .into_inner()
        .expect("pool results poisoned")
        .into_iter()
        .map(|r| r.expect("every slot filled by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..100u64).collect(), 8, |i, x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn inline_when_single_threaded() {
        let out = parallel_map(vec![1, 2, 3], 1, |_i, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = parallel_map(Vec::<u32>::new(), 4, |_i, x| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(vec![7], 4, |_i, x| x), vec![7]);
    }

    #[test]
    fn windows_partition_the_range_in_order() {
        assert_eq!(windowed(10, 4).collect::<Vec<_>>(), vec![0..4, 4..8, 8..10]);
        assert_eq!(windowed(4, 4).collect::<Vec<_>>(), vec![0..4]);
        assert_eq!(windowed(3, 0).count(), 3, "window 0 behaves as 1");
        assert_eq!(windowed(5, usize::MAX).collect::<Vec<_>>(), vec![0..5]);
        assert_eq!(windowed(0, 1).count(), 0);
        // Windows tile the range exactly once, in order.
        let mut seen = Vec::new();
        for span in windowed(23, 5) {
            seen.extend(span);
        }
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_results() {
        let items: Vec<u64> = (0..64).collect();
        let seq = parallel_map(items.clone(), 1, |i, x| x.wrapping_mul(i as u64 + 1));
        let par = parallel_map(items, 4, |i, x| x.wrapping_mul(i as u64 + 1));
        assert_eq!(seq, par);
    }
}
