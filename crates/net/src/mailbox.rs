//! Typed in-memory message passing between simulated nodes.
//!
//! Protocol code that needs to *deliver* values (not only account for
//! them) uses a [`Mailbox`], which is a deterministic, round-structured
//! post office: senders deposit messages addressed to a node, and the
//! recipient drains its queue in FIFO order.  Delivery order is fully
//! deterministic (insertion order), which keeps every simulation
//! reproducible.

use crate::traffic::NodeId;
use std::collections::VecDeque;

/// A typed message queue per node.
#[derive(Clone, Debug)]
pub struct Mailbox<T> {
    queues: Vec<VecDeque<(NodeId, T)>>,
    delivered: u64,
}

impl<T> Mailbox<T> {
    /// Creates a mailbox system for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Mailbox {
            queues: (0..nodes).map(|_| VecDeque::new()).collect(),
            delivered: 0,
        }
    }

    /// Number of nodes this mailbox serves.
    pub fn nodes(&self) -> usize {
        self.queues.len()
    }

    /// Sends `message` from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a valid node id (an internal wiring error in
    /// the simulation, never data-dependent).
    pub fn send(&mut self, from: NodeId, to: NodeId, message: T) {
        self.queues[to.0].push_back((from, message));
        self.delivered += 1;
    }

    /// Sends a batch of messages from `from` in one call — the batch
    /// entry point used by the transport layer to queue a whole protocol
    /// round at once.
    pub fn send_many<I: IntoIterator<Item = (NodeId, T)>>(&mut self, from: NodeId, batch: I) {
        for (to, message) in batch {
            self.send(from, to, message);
        }
    }

    /// Receives the oldest pending message for `node`, if any.
    pub fn recv(&mut self, node: NodeId) -> Option<(NodeId, T)> {
        self.queues[node.0].pop_front()
    }

    /// Receives the oldest pending message for `node` that was sent by
    /// `from`, preserving per-sender FIFO order.
    pub fn recv_from(&mut self, node: NodeId, from: NodeId) -> Option<T> {
        let queue = &mut self.queues[node.0];
        let position = queue.iter().position(|(sender, _)| *sender == from)?;
        queue.remove(position).map(|(_, message)| message)
    }

    /// Drains every pending message for `node`.
    pub fn drain(&mut self, node: NodeId) -> Vec<(NodeId, T)> {
        self.queues[node.0].drain(..).collect()
    }

    /// Number of messages currently queued for `node`.
    pub fn pending(&self, node: NodeId) -> usize {
        self.queues[node.0].len()
    }

    /// Total messages ever sent through this mailbox.
    pub fn total_delivered(&self) -> u64 {
        self.delivered
    }

    /// Returns `true` if no node has pending messages.
    pub fn is_idle(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_per_node() {
        let mut mb: Mailbox<u32> = Mailbox::new(3);
        mb.send(NodeId(0), NodeId(2), 10);
        mb.send(NodeId(1), NodeId(2), 20);
        assert_eq!(mb.pending(NodeId(2)), 2);
        assert_eq!(mb.recv(NodeId(2)), Some((NodeId(0), 10)));
        assert_eq!(mb.recv(NodeId(2)), Some((NodeId(1), 20)));
        assert_eq!(mb.recv(NodeId(2)), None);
    }

    #[test]
    fn drain_collects_all() {
        let mut mb: Mailbox<&str> = Mailbox::new(2);
        mb.send(NodeId(0), NodeId(1), "a");
        mb.send(NodeId(0), NodeId(1), "b");
        let msgs = mb.drain(NodeId(1));
        assert_eq!(msgs, vec![(NodeId(0), "a"), (NodeId(0), "b")]);
        assert!(mb.is_idle());
    }

    #[test]
    fn counters() {
        let mut mb: Mailbox<()> = Mailbox::new(2);
        assert!(mb.is_idle());
        mb.send(NodeId(0), NodeId(1), ());
        mb.send(NodeId(1), NodeId(0), ());
        assert_eq!(mb.total_delivered(), 2);
        assert_eq!(mb.nodes(), 2);
        assert!(!mb.is_idle());
    }

    #[test]
    fn send_many_batches() {
        let mut mb: Mailbox<u8> = Mailbox::new(3);
        mb.send_many(
            NodeId(0),
            [(NodeId(1), 1u8), (NodeId(2), 2), (NodeId(1), 3)],
        );
        assert_eq!(mb.total_delivered(), 3);
        assert_eq!(mb.drain(NodeId(1)), vec![(NodeId(0), 1), (NodeId(0), 3)]);
        assert_eq!(mb.recv(NodeId(2)), Some((NodeId(0), 2)));
    }

    #[test]
    fn recv_from_is_per_sender_fifo() {
        let mut mb: Mailbox<u8> = Mailbox::new(3);
        mb.send(NodeId(1), NodeId(0), 10);
        mb.send(NodeId(2), NodeId(0), 20);
        mb.send(NodeId(1), NodeId(0), 11);
        // Skips node 2's message, preserves node 1's order.
        assert_eq!(mb.recv_from(NodeId(0), NodeId(1)), Some(10));
        assert_eq!(mb.recv_from(NodeId(0), NodeId(1)), Some(11));
        assert_eq!(mb.recv_from(NodeId(0), NodeId(1)), None);
        assert_eq!(mb.recv_from(NodeId(0), NodeId(2)), Some(20));
        assert!(mb.is_idle());
    }

    #[test]
    fn separate_queues() {
        let mut mb: Mailbox<u8> = Mailbox::new(3);
        mb.send(NodeId(0), NodeId(1), 1);
        mb.send(NodeId(0), NodeId(2), 2);
        assert_eq!(mb.pending(NodeId(1)), 1);
        assert_eq!(mb.pending(NodeId(2)), 1);
        assert_eq!(mb.pending(NodeId(0)), 0);
        assert_eq!(mb.recv(NodeId(1)).unwrap().1, 1);
        assert_eq!(mb.recv(NodeId(2)).unwrap().1, 2);
    }
}
