//! Simulated network substrate for the DStress reproduction.
//!
//! The original DStress prototype ran on up to 100 EC2 instances; its
//! evaluation reports two quantities per experiment: *computation time*
//! and *per-node traffic*.  This crate provides the bookkeeping that lets
//! our in-process reproduction report the same quantities:
//!
//! * [`traffic`] — a per-node (and per-pair) byte/message accountant.
//!   Every protocol component in the workspace records its sends here, so
//!   the traffic numbers in Figures 4–6 are measured, not estimated.
//! * [`mailbox`] — a typed, deterministic message-passing facility for
//!   protocol code that wants to exchange actual values between simulated
//!   nodes (rather than only account for them).  It is the queue behind
//!   [`transport::SimTransport`].
//! * [`transport`] — the [`transport::Transport`] abstraction: protocol
//!   code written as per-node actors runs unchanged on the deterministic
//!   in-process backend ([`transport::SimTransport`]), on a real worker
//!   pool with per-node channels ([`transport::ThreadedTransport`]), or
//!   over real TCP connections ([`socket::SocketTransport`]).
//! * [`frame`] — length-prefixed framing that restores message boundaries
//!   on a TCP byte stream, with typed errors for torn frames, trailing
//!   garbage, and oversized length prefixes.
//! * [`socket`] — the TCP backend and [`socket::FramedConn`], the framed
//!   non-blocking connection the master/worker deployment layer reuses.
//! * [`wire`] — the hand-rolled wire format ([`wire::Wire`], varints,
//!   bit-packed planes).  Both transport backends route every send
//!   through `encode → bytes → decode` and return a [`wire::WireTally`]
//!   of the *measured* encoded bytes per node pair.
//! * [`pool`] — the worker pool used to execute independent simulation
//!   tasks (blocks, sweep points) concurrently with deterministic results.
//! * [`cost`] — the calibrated cost model used to convert operation counts
//!   (exponentiations, oblivious transfers, bytes, rounds) into projected
//!   wall-clock time on the paper's reference hardware, which is how the
//!   paper-scale projection of Figure 6 is produced.
//!
//! ## Example
//!
//! ```
//! use dstress_net::{NodeId, TrafficAccountant};
//!
//! let mut traffic = TrafficAccountant::new();
//! traffic.record(NodeId(0), NodeId(1), 128);
//! traffic.record(NodeId(1), NodeId(0), 64);
//! assert_eq!(traffic.node(NodeId(0)).total_bytes(), 192);
//! assert_eq!(traffic.report().total_bytes, 192);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod frame;
pub mod mailbox;
pub mod pool;
pub mod socket;
pub mod traffic;
pub mod transport;
pub mod wire;

pub use cost::{CostModel, OperationCounts};
pub use frame::{FrameDecoder, FrameError, FRAME_HEADER_LEN, FRAME_MAGIC, MAX_FRAME_PAYLOAD};
pub use mailbox::Mailbox;
pub use socket::{FramedConn, Hello, SocketTransport};
pub use traffic::{NodeId, TrafficAccountant, TrafficReport};
pub use transport::{
    ActorStatus, Endpoint, NodeActor, SimTransport, ThreadedTransport, Transport, TransportError,
};
pub use wire::{Wire, WireError, WireTally};
