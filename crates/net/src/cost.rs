//! Calibrated cost model for paper-scale projections.
//!
//! Our reproduction executes the real protocol in process, so it measures
//! *counts* exactly (exponentiations, oblivious transfers, AND gates,
//! bytes, rounds) but cannot reproduce the wall-clock time of the paper's
//! EC2 deployment directly.  Following the paper's own §5.5 methodology —
//! which projects the cost of the full U.S. banking system from
//! microbenchmark measurements — we convert operation counts to projected
//! time through a [`CostModel`] whose per-operation constants are
//! calibrated against the prototype's published microbenchmarks
//! (Figures 3–5).
//!
//! The defaults in [`CostModel::paper_reference`] correspond to a single
//! m3.xlarge-class core in 2017 and the same-region EC2 network used in
//! the paper.  The model is deliberately simple (linear in every count);
//! the paper's own projection makes the same conservative assumption that
//! nodes do not overlap computations from different blocks.

use crate::wire::{self, Wire, WireError};
use serde::{Deserialize, Serialize};

/// Counts of the primitive operations performed by a protocol component.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperationCounts {
    /// Variable-base modular exponentiations (square-and-multiply; ElGamal
    /// key terms, ciphertext adjustments, key re-randomisations).
    pub exponentiations: u64,
    /// Fixed-base exponentiations served from a windowed precomputation
    /// table (generator powers, precomputed certificate keys, per-receiver
    /// decryption tables). Split out so the kernel A/B is measurable.
    pub fixed_base_exponentiations: u64,
    /// Group multiplications outside of exponentiations (homomorphic
    /// ciphertext aggregation).
    pub group_multiplications: u64,
    /// Base oblivious transfers (public-key OTs).
    pub base_ots: u64,
    /// Extended oblivious transfers (IKNP-style, symmetric crypto only).
    pub extended_ots: u64,
    /// AND gates evaluated under GMW (per party: share computation work).
    pub and_gates: u64,
    /// XOR/NOT gates evaluated under GMW (negligible but counted).
    pub free_gates: u64,
    /// Bytes sent over the network according to the *analytical* model
    /// (per-primitive wire-cost formulas; what the cost projection uses).
    pub bytes_sent: u64,
    /// Bytes *measured* on the simulated wire: the summed lengths of the
    /// actual message encodings produced by the [`crate::wire`] layer.
    /// Reconciling this against `bytes_sent` is what `repro -- bytes`
    /// reports.
    pub wire_bytes: u64,
    /// Protocol communication rounds (sequential message exchanges).
    pub rounds: u64,
}

impl OperationCounts {
    /// Adds another set of counts to this one.
    pub fn add(&mut self, other: &OperationCounts) {
        self.exponentiations += other.exponentiations;
        self.fixed_base_exponentiations += other.fixed_base_exponentiations;
        self.group_multiplications += other.group_multiplications;
        self.base_ots += other.base_ots;
        self.extended_ots += other.extended_ots;
        self.and_gates += other.and_gates;
        self.free_gates += other.free_gates;
        self.bytes_sent += other.bytes_sent;
        self.wire_bytes += other.wire_bytes;
        self.rounds += other.rounds;
    }

    /// Merges another set of counts into this one.
    ///
    /// Counts are pure sums, so merging is order-independent — the
    /// property the concurrent runtime relies on when each worker thread
    /// accounts its own operations and the totals are merged at phase
    /// end without a global lock.
    pub fn merge(&mut self, other: &OperationCounts) {
        self.add(other);
    }

    /// Returns the sum of two sets of counts.
    pub fn combined(&self, other: &OperationCounts) -> OperationCounts {
        let mut out = *self;
        out.add(other);
        out
    }

    /// Scales every count by an integer factor (e.g. "per iteration" to
    /// "per run").
    pub fn scaled(&self, factor: u64) -> OperationCounts {
        OperationCounts {
            exponentiations: self.exponentiations * factor,
            fixed_base_exponentiations: self.fixed_base_exponentiations * factor,
            group_multiplications: self.group_multiplications * factor,
            base_ots: self.base_ots * factor,
            extended_ots: self.extended_ots * factor,
            and_gates: self.and_gates * factor,
            free_gates: self.free_gates * factor,
            bytes_sent: self.bytes_sent * factor,
            wire_bytes: self.wire_bytes * factor,
            rounds: self.rounds * factor,
        }
    }
}

impl Wire for OperationCounts {
    fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_uvarint(out, self.exponentiations);
        wire::put_uvarint(out, self.fixed_base_exponentiations);
        wire::put_uvarint(out, self.group_multiplications);
        wire::put_uvarint(out, self.base_ots);
        wire::put_uvarint(out, self.extended_ots);
        wire::put_uvarint(out, self.and_gates);
        wire::put_uvarint(out, self.free_gates);
        wire::put_uvarint(out, self.bytes_sent);
        wire::put_uvarint(out, self.wire_bytes);
        wire::put_uvarint(out, self.rounds);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(OperationCounts {
            exponentiations: wire::get_uvarint(buf)?,
            fixed_base_exponentiations: wire::get_uvarint(buf)?,
            group_multiplications: wire::get_uvarint(buf)?,
            base_ots: wire::get_uvarint(buf)?,
            extended_ots: wire::get_uvarint(buf)?,
            and_gates: wire::get_uvarint(buf)?,
            free_gates: wire::get_uvarint(buf)?,
            bytes_sent: wire::get_uvarint(buf)?,
            wire_bytes: wire::get_uvarint(buf)?,
            rounds: wire::get_uvarint(buf)?,
        })
    }
}

/// Per-operation cost constants (seconds and bytes-per-second).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Seconds per modular exponentiation (384-bit EC scalar mult class).
    pub seconds_per_exponentiation: f64,
    /// Seconds per *fixed-base* exponentiation served from a windowed
    /// precomputation table — roughly an eighth of a variable-base
    /// exponentiation at the 8-bit window the kernels use.
    pub seconds_per_fixed_base_exponentiation: f64,
    /// Seconds per plain group multiplication.
    pub seconds_per_group_multiplication: f64,
    /// Seconds per base (public-key) oblivious transfer.
    pub seconds_per_base_ot: f64,
    /// Seconds per extended oblivious transfer.
    pub seconds_per_extended_ot: f64,
    /// Seconds of local computation per AND gate per party (share updates,
    /// PRG calls, table lookups).
    pub seconds_per_and_gate: f64,
    /// Seconds per free (XOR/NOT) gate.
    pub seconds_per_free_gate: f64,
    /// Network bandwidth in bytes per second available to one node.
    pub bandwidth_bytes_per_second: f64,
    /// One-way network latency per protocol round, in seconds.
    pub latency_per_round: f64,
}

impl CostModel {
    /// Cost constants calibrated to the paper's prototype environment
    /// (m3.xlarge instances, same-region EC2, secp384r1, GMW with OT
    /// extension).  See `EXPERIMENTS.md` for the calibration fit.
    pub fn paper_reference() -> Self {
        CostModel {
            // ~0.9 ms per 384-bit exponentiation (OpenSSL on 2.5 GHz Xeon).
            seconds_per_exponentiation: 0.9e-3,
            // One table multiply per exponent byte with an 8-bit window.
            seconds_per_fixed_base_exponentiation: 0.11e-3,
            seconds_per_group_multiplication: 2.0e-6,
            // Base OTs are a handful of exponentiations.
            seconds_per_base_ot: 3.0e-3,
            // OT extension amortises to symmetric crypto per OT (the
            // prototype's Java implementation, per the Fig. 3 calibration).
            seconds_per_extended_ot: 20.0e-6,
            // Per-gate bookkeeping in the GMW engine (Java prototype).
            seconds_per_and_gate: 200.0e-6,
            seconds_per_free_gate: 0.4e-6,
            // ~1 Gbit/s effective within an EC2 region.
            bandwidth_bytes_per_second: 125.0e6,
            // Same-region round-trip latency ~0.5 ms one way.
            latency_per_round: 0.5e-3,
        }
    }

    /// Estimates the wall-clock seconds a single node spends executing the
    /// counted operations, assuming no overlap between computation and
    /// communication (the paper's own conservative assumption in §5.5).
    pub fn estimate_seconds(&self, counts: &OperationCounts) -> f64 {
        let compute = counts.exponentiations as f64 * self.seconds_per_exponentiation
            + counts.fixed_base_exponentiations as f64 * self.seconds_per_fixed_base_exponentiation
            + counts.group_multiplications as f64 * self.seconds_per_group_multiplication
            + counts.base_ots as f64 * self.seconds_per_base_ot
            + counts.extended_ots as f64 * self.seconds_per_extended_ot
            + counts.and_gates as f64 * self.seconds_per_and_gate
            + counts.free_gates as f64 * self.seconds_per_free_gate;
        let network = counts.bytes_sent as f64 / self.bandwidth_bytes_per_second
            + counts.rounds as f64 * self.latency_per_round;
        compute + network
    }

    /// Estimates only the network component of the cost.
    pub fn estimate_network_seconds(&self, counts: &OperationCounts) -> f64 {
        counts.bytes_sent as f64 / self.bandwidth_bytes_per_second
            + counts.rounds as f64 * self.latency_per_round
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_add_and_scale() {
        let a = OperationCounts {
            exponentiations: 10,
            fixed_base_exponentiations: 4,
            bytes_sent: 100,
            wire_bytes: 90,
            rounds: 2,
            ..Default::default()
        };
        let b = OperationCounts {
            exponentiations: 5,
            and_gates: 7,
            ..Default::default()
        };
        let c = a.combined(&b);
        assert_eq!(c.exponentiations, 15);
        assert_eq!(c.fixed_base_exponentiations, 4);
        assert_eq!(c.and_gates, 7);
        assert_eq!(c.bytes_sent, 100);
        assert_eq!(c.wire_bytes, 90);
        let s = c.scaled(3);
        assert_eq!(s.exponentiations, 45);
        assert_eq!(s.wire_bytes, 270);
        assert_eq!(s.rounds, 6);
    }

    #[test]
    fn counts_round_trip_the_wire() {
        let counts = OperationCounts {
            exponentiations: 1,
            fixed_base_exponentiations: 10,
            group_multiplications: 128,
            base_ots: 3,
            extended_ots: 4,
            and_gates: 5,
            free_gates: 6,
            bytes_sent: 7,
            wire_bytes: 8,
            rounds: 9,
        };
        let encoded = counts.encode();
        // Ten uvarints; 128 costs two bytes.
        assert_eq!(crate::wire::hex(&encoded), "010a800103040506070809");
        assert_eq!(OperationCounts::decode_exact(&encoded).unwrap(), counts);
        for cut in 0..encoded.len() {
            assert!(OperationCounts::decode_exact(&encoded[..cut]).is_err());
        }
    }

    #[test]
    fn estimate_is_monotone_in_counts() {
        let model = CostModel::paper_reference();
        let small = OperationCounts {
            exponentiations: 10,
            ..Default::default()
        };
        let large = OperationCounts {
            exponentiations: 1000,
            ..Default::default()
        };
        assert!(model.estimate_seconds(&large) > model.estimate_seconds(&small));
        assert_eq!(model.estimate_seconds(&OperationCounts::default()), 0.0);
    }

    #[test]
    fn exponentiation_cost_matches_constant() {
        let model = CostModel::paper_reference();
        let counts = OperationCounts {
            exponentiations: 1000,
            ..Default::default()
        };
        let t = model.estimate_seconds(&counts);
        assert!(
            (t - 0.9).abs() < 1e-9,
            "1000 exponentiations ≈ 0.9 s, got {t}"
        );
    }

    #[test]
    fn fixed_base_exponentiations_are_cheaper() {
        let model = CostModel::paper_reference();
        let fixed = OperationCounts {
            fixed_base_exponentiations: 1000,
            ..Default::default()
        };
        let variable = OperationCounts {
            exponentiations: 1000,
            ..Default::default()
        };
        let t_fixed = model.estimate_seconds(&fixed);
        assert!((t_fixed - 0.11).abs() < 1e-9, "got {t_fixed}");
        assert!(model.estimate_seconds(&variable) > 5.0 * t_fixed);
    }

    #[test]
    fn network_component() {
        let model = CostModel::paper_reference();
        let counts = OperationCounts {
            bytes_sent: 125_000_000,
            rounds: 1000,
            ..Default::default()
        };
        let net = model.estimate_network_seconds(&counts);
        assert!(
            (net - 1.5).abs() < 1e-9,
            "1 s bandwidth + 0.5 s latency, got {net}"
        );
        assert_eq!(model.estimate_seconds(&counts), net);
    }

    #[test]
    fn default_is_paper_reference() {
        assert_eq!(CostModel::default(), CostModel::paper_reference());
    }
}
