//! [`SocketTransport`]: the third [`Transport`] backend — real TCP.
//!
//! Where [`crate::transport::SimTransport`] queues messages in memory and
//! [`crate::transport::ThreadedTransport`] uses mpsc channels, this
//! backend moves every message through an actual kernel socket: each pair
//! of nodes shares one loopback TCP connection, messages travel as
//! length-prefixed frames ([`crate::frame`]) carrying the exact
//! [`Wire`]-encoded payload the other backends account, and the returned
//! [`WireTally`] records the *payload* bytes only — so measured
//! `wire_bytes` are byte-identical across all three backends while the
//! frame header is charged to transport overhead.
//!
//! There is no async runtime in this workspace (the shims environment has
//! no tokio), and none is needed: streams are switched to non-blocking
//! mode and polled readiness-style by the same worker-loop machinery the
//! threaded backend uses — actors are polled until idle, sockets are
//! drained/flushed on every pass, and the PR 3 quiescence check (per-node
//! sent/drained counters plus parked-worker accounting) turns a genuine
//! protocol stall into a typed [`TransportError::Stalled`] instead of a
//! hang.  Socket-specific failures — torn frames, trailing garbage,
//! oversized length prefixes, undecodable payloads, I/O errors — surface
//! as the typed [`TransportError`] variants rather than panics, because
//! bytes read from a socket are untrusted input even on loopback.
//!
//! The module also exposes [`FramedConn`], the single-connection building
//! block (non-blocking stream + frame codec + write buffer), which the
//! deployment layer reuses for master↔worker control connections.

use crate::frame::{encode_frame_into, FrameDecoder};
use crate::transport::{
    ActorStatus, Endpoint, NodeActor, QueueCounters, SharedTally, Transport, TransportError,
    WorkerShared, SPIN_PASSES_BEFORE_SLEEP, STALL_TIMEOUT,
};
use crate::wire::{get_u32_le, get_u8, put_u32_le, put_u8, Wire, WireError, WireTally};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long [`SocketTransport`] waits for mesh peers to complete the
/// hello handshake before failing the run.
pub const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// The first frame on every mesh connection: who is calling whom, and
/// how many nodes the caller thinks the run has.  A connection whose
/// hello does not match the run topology is rejected with
/// [`TransportError::Handshake`] before any protocol bytes flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Local index of the connecting node.
    pub from: u32,
    /// Local index of the accepting node.
    pub to: u32,
    /// Total nodes in the run (topology cross-check).
    pub nodes: u32,
}

/// Tag byte opening an encoded [`Hello`] (`'H'`).
pub const HELLO_TAG: u8 = 0x48;

impl Wire for Hello {
    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u8(out, HELLO_TAG);
        put_u32_le(out, self.from);
        put_u32_le(out, self.to);
        put_u32_le(out, self.nodes);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let tag = get_u8(input)?;
        if tag != HELLO_TAG {
            return Err(WireError::BadTag {
                tag,
                what: "socket hello",
            });
        }
        Ok(Hello {
            from: get_u32_le(input)?,
            to: get_u32_le(input)?,
            nodes: get_u32_le(input)?,
        })
    }
}

/// I/O error kinds that mean "the peer is gone", which the transport
/// treats like a closed mpsc channel (the threaded backend's analogue)
/// rather than a run-failing error: a finished actor's worker may drop
/// its sockets while slower peers still hold late messages for it.
fn peer_gone(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
    )
}

// ---------------------------------------------------------------------------
// FramedConn
// ---------------------------------------------------------------------------

/// One non-blocking TCP connection speaking length-prefixed frames.
///
/// This is the building block under both the [`SocketTransport`] mesh and
/// the master↔worker deployment protocol: a stream in non-blocking mode,
/// an incremental [`FrameDecoder`] on the read side, and an elastic write
/// buffer on the write side so sends never block an actor.
#[derive(Debug)]
pub struct FramedConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    outbuf: VecDeque<u8>,
    /// Local index of the peer, used to label typed errors.
    peer: usize,
    /// Read side saw EOF (clean close after the torn-frame check).
    closed: bool,
}

impl FramedConn {
    /// Wraps a stream (peer label 0), switching it to non-blocking mode.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        FramedConn::with_peer(stream, 0)
    }

    /// Wraps a stream with an explicit peer label for error reporting.
    pub fn with_peer(stream: TcpStream, peer: usize) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(FramedConn {
            stream,
            decoder: FrameDecoder::new(),
            outbuf: VecDeque::new(),
            peer,
            closed: false,
        })
    }

    /// The peer label this connection reports errors against.
    pub fn peer(&self) -> usize {
        self.peer
    }

    /// Whether the read side has seen a clean EOF.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Bytes queued on the write side but not yet accepted by the kernel.
    pub fn pending_out(&self) -> usize {
        self.outbuf.len()
    }

    /// Queues `payload` as one frame and flushes as much as the socket
    /// will take without blocking.
    pub fn send_frame(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        let mut framed = Vec::new();
        encode_frame_into(&mut framed, payload);
        self.outbuf.extend(framed);
        self.flush().map(|_| ())
    }

    /// Encodes a [`Wire`] message and queues it as one frame; returns the
    /// encoded payload length (the number a [`WireTally`] records).
    pub fn send_msg<M: Wire>(&mut self, message: &M) -> Result<u64, TransportError> {
        let payload = message.encode();
        self.send_frame(&payload)?;
        Ok(payload.len() as u64)
    }

    /// Writes buffered bytes until the kernel would block; returns how
    /// many bytes were accepted.
    pub fn flush(&mut self) -> Result<u64, TransportError> {
        let mut written = 0u64;
        while !self.outbuf.is_empty() {
            let (head, _) = self.outbuf.as_slices();
            match self.stream.write(head) {
                Ok(0) => {
                    return Err(TransportError::Io {
                        context: "write",
                        kind: ErrorKind::WriteZero,
                    })
                }
                Ok(k) => {
                    self.outbuf.drain(..k);
                    written += k as u64;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(TransportError::Io {
                        context: "write",
                        kind: e.kind(),
                    })
                }
            }
        }
        Ok(written)
    }

    /// Flushes until the write buffer is empty or `timeout` expires.
    pub fn flush_blocking(&mut self, timeout: Duration) -> Result<(), TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            self.flush()?;
            if self.outbuf.is_empty() {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(TransportError::Io {
                    context: "flush",
                    kind: ErrorKind::TimedOut,
                });
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Non-blocking receive: reads whatever the socket has, returns the
    /// next complete frame payload if one has arrived.
    ///
    /// All frame-layer violations come back as typed errors: bad magic
    /// (trailing garbage), oversized length prefixes, and — on EOF — a
    /// torn frame.  A clean EOF just marks the connection closed.
    pub fn poll_frame(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let peer = self.peer;
        let framed = |error| TransportError::Frame { peer, error };
        if let Some(frame) = self.decoder.next_frame().map_err(framed)? {
            return Ok(Some(frame));
        }
        let mut scratch = [0u8; 16 * 1024];
        while !self.closed {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.closed = true;
                    self.decoder.finish().map_err(framed)?;
                }
                Ok(k) => {
                    self.decoder.push(&scratch[..k]);
                    if let Some(frame) = self.decoder.next_frame().map_err(framed)? {
                        return Ok(Some(frame));
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if peer_gone(e.kind()) => {
                    // A reset loses bytes in flight: apply the same torn
                    // check a clean close gets.
                    self.closed = true;
                    self.decoder.finish().map_err(framed)?;
                }
                Err(e) => {
                    return Err(TransportError::Io {
                        context: "read",
                        kind: e.kind(),
                    })
                }
            }
        }
        Ok(None)
    }

    /// Blocking receive with a deadline: the next frame payload, a typed
    /// frame/I/O error, `UnexpectedEof` if the peer closed first, or
    /// `TimedOut` if nothing arrives in time.
    pub fn recv_frame(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        let deadline = Instant::now() + timeout;
        let mut idle_passes = 0u32;
        loop {
            if let Some(frame) = self.poll_frame()? {
                return Ok(frame);
            }
            if self.closed {
                return Err(TransportError::Io {
                    context: "read",
                    kind: ErrorKind::UnexpectedEof,
                });
            }
            if Instant::now() >= deadline {
                return Err(TransportError::Io {
                    context: "read",
                    kind: ErrorKind::TimedOut,
                });
            }
            idle_passes = idle_passes.saturating_add(1);
            if idle_passes > SPIN_PASSES_BEFORE_SLEEP {
                std::thread::sleep(Duration::from_millis(1));
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Blocking receive of one [`Wire`] message with a deadline.  Decode
    /// failures are typed [`TransportError::Codec`] errors — socket bytes
    /// are untrusted input, never a panic.
    pub fn recv_msg<M: Wire>(&mut self, timeout: Duration) -> Result<M, TransportError> {
        let payload = self.recv_frame(timeout)?;
        M::decode_exact(&payload).map_err(|error| TransportError::Codec {
            peer: self.peer,
            error,
        })
    }
}

// ---------------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------------

/// The TCP loopback backend: one real socket per node pair, frames on the
/// wire, the same actor contract and stall detection as the other
/// backends.
#[derive(Clone, Copy, Debug)]
pub struct SocketTransport {
    threads: usize,
    stall_timeout: Duration,
    handshake_timeout: Duration,
}

impl SocketTransport {
    /// A pool with one worker per available core.
    pub fn new() -> Self {
        SocketTransport {
            threads: crate::pool::default_threads(),
            stall_timeout: STALL_TIMEOUT,
            handshake_timeout: HANDSHAKE_TIMEOUT,
        }
    }

    /// A pool with an explicit worker count (at least one is used).
    pub fn with_threads(threads: usize) -> Self {
        SocketTransport {
            threads: threads.max(1),
            ..SocketTransport::new()
        }
    }

    /// Overrides the stall timeout (how long the run tolerates global
    /// quiescence before failing).
    pub fn with_stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = timeout;
        self
    }

    /// Overrides the mesh handshake deadline.
    pub fn with_handshake_timeout(mut self, timeout: Duration) -> Self {
        self.handshake_timeout = timeout;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Builds the full loopback mesh: node `i` dials node `j` for every
    /// `i < j` and introduces itself with a [`Hello`] frame, which the
    /// acceptor validates against the run topology.
    fn connect_mesh(&self, n: usize) -> Result<Vec<Vec<Option<FramedConn>>>, TransportError> {
        let io_err = |context: &'static str| {
            move |e: std::io::Error| TransportError::Io {
                context,
                kind: e.kind(),
            }
        };
        let mut links: Vec<Vec<Option<FramedConn>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        if n < 2 {
            return Ok(links);
        }
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind(("127.0.0.1", 0)))
            .collect::<std::io::Result<_>>()
            .map_err(io_err("bind"))?;
        let addrs: Vec<std::net::SocketAddr> = listeners
            .iter()
            .map(TcpListener::local_addr)
            .collect::<std::io::Result<_>>()
            .map_err(io_err("local_addr"))?;
        #[allow(clippy::needless_range_loop)] // i and j both index `links` symmetrically
        for i in 0..n {
            for j in (i + 1)..n {
                let client = TcpStream::connect(addrs[j]).map_err(io_err("connect"))?;
                let mut dialed = FramedConn::with_peer(client, j).map_err(io_err("configure"))?;
                dialed.send_msg(&Hello {
                    from: i as u32,
                    to: j as u32,
                    nodes: n as u32,
                })?;
                dialed.flush_blocking(self.handshake_timeout)?;
                let (server, _) = listeners[j].accept().map_err(io_err("accept"))?;
                let mut accepted = FramedConn::with_peer(server, i).map_err(io_err("configure"))?;
                let hello: Hello =
                    accepted
                        .recv_msg(self.handshake_timeout)
                        .map_err(|e| match e {
                            TransportError::Io {
                                kind: ErrorKind::TimedOut | ErrorKind::UnexpectedEof,
                                ..
                            } => TransportError::Handshake {
                                context: "peer never completed the hello handshake",
                            },
                            other => other,
                        })?;
                if hello.from != i as u32 || hello.to != j as u32 || hello.nodes != n as u32 {
                    return Err(TransportError::Handshake {
                        context: "hello does not match the run topology",
                    });
                }
                links[i][j] = Some(dialed);
                links[j][i] = Some(accepted);
            }
        }
        Ok(links)
    }
}

impl Default for SocketTransport {
    fn default() -> Self {
        SocketTransport::new()
    }
}

/// A node's endpoint onto the socket mesh: per-peer framed connections
/// plus per-peer reorder buffers of already-decoded messages.
struct SocketEndpoint<M> {
    node: usize,
    links: Vec<Option<FramedConn>>,
    buffers: Vec<VecDeque<M>>,
    counters: Arc<QueueCounters>,
    wire: Arc<SharedTally>,
    activity: u64,
    /// First socket failure hit by this endpoint; the worker loop lifts
    /// it into the run's shared failure slot.
    error: Option<TransportError>,
}

impl<M: Wire> SocketEndpoint<M> {
    fn set_error(&mut self, error: TransportError) {
        if self.error.is_none() {
            self.error = Some(error);
        }
    }

    /// Reads everything `peer`'s socket has, decodes complete frames into
    /// the reorder buffer; returns how many messages arrived.
    fn pump(&mut self, peer: usize) -> u64 {
        if peer == self.node {
            return 0;
        }
        let Some(link) = self.links[peer].as_mut() else {
            return 0;
        };
        let mut moved = 0u64;
        loop {
            match link.poll_frame() {
                Ok(Some(payload)) => match M::decode_exact(&payload) {
                    Ok(message) => {
                        self.buffers[peer].push_back(message);
                        moved += 1;
                    }
                    Err(error) => {
                        self.set_error(TransportError::Codec { peer, error });
                        break;
                    }
                },
                Ok(None) => break,
                Err(error) => {
                    self.set_error(error);
                    break;
                }
            }
        }
        if moved > 0 {
            self.counters.drained[self.node].fetch_add(moved, Ordering::Relaxed);
        }
        moved
    }

    /// Pumps every peer connection; returns how many messages moved
    /// (the socket analogue of the threaded backend's channel sweep).
    fn sweep(&mut self) -> u64 {
        (0..self.buffers.len()).map(|peer| self.pump(peer)).sum()
    }

    /// Flushes every peer connection's write buffer; returns bytes the
    /// kernel accepted.  Peers that vanished (worker exited after its
    /// actor finished) are dropped silently, mirroring the threaded
    /// backend's closed-channel sends.
    fn flush_all(&mut self) -> u64 {
        let mut written = 0u64;
        for peer in 0..self.links.len() {
            let Some(link) = self.links[peer].as_mut() else {
                continue;
            };
            match link.flush() {
                Ok(k) => written += k,
                Err(TransportError::Io { kind, .. }) if peer_gone(kind) => {
                    self.links[peer] = None;
                }
                Err(error) => self.set_error(error),
            }
        }
        written
    }

    /// Bytes still queued for peers whose actors have not finished (the
    /// only bytes worth waiting on during the end-of-shard flush).
    fn pending_to_unfinished(&self) -> usize {
        self.links
            .iter()
            .enumerate()
            .filter_map(|(peer, link)| link.as_ref().map(|l| (peer, l)))
            .filter(|(peer, _)| !self.counters.finished[*peer].load(Ordering::Relaxed))
            .map(|(_, link)| link.pending_out())
            .sum()
    }
}

impl<M: Wire> Endpoint<M> for SocketEndpoint<M> {
    fn nodes(&self) -> usize {
        self.buffers.len()
    }

    fn send(&mut self, to: usize, message: M) {
        self.activity += 1;
        if to == self.node {
            // Self-sends never touch a socket; deliver through the same
            // encode → decode boundary the in-process backends use.
            let payload = message.encode();
            let decoded = M::decode_exact(&payload)
                .expect("wire round-trip failed: the message type's encoder and decoder disagree");
            self.wire.record(to, to, payload.len() as u64);
            self.counters.sent[to].fetch_add(1, Ordering::Relaxed);
            self.buffers[to].push_back(decoded);
            self.counters.drained[to].fetch_add(1, Ordering::Relaxed);
            return;
        }
        let payload = message.encode();
        self.wire.record(self.node, to, payload.len() as u64);
        self.counters.sent[to].fetch_add(1, Ordering::Relaxed);
        if let Some(link) = self.links[to].as_mut() {
            match link.send_frame(&payload) {
                Ok(()) => {}
                Err(TransportError::Io { kind, .. }) if peer_gone(kind) => {
                    self.links[to] = None;
                }
                Err(error) => self.set_error(error),
            }
        }
    }

    fn try_recv_from(&mut self, peer: usize) -> Option<M> {
        self.pump(peer);
        let message = self.buffers[peer].pop_front();
        if message.is_some() {
            self.activity += 1;
        }
        message
    }
}

/// The socket worker loop: the threaded backend's poll/park/stall cycle
/// with socket draining and flushing folded into the idle sweep, and
/// typed socket errors lifted into the run's shared failure slot.
fn run_socket_worker<M: Wire>(
    shard: &mut [&mut dyn NodeActor<M>],
    mut endpoints: Vec<SocketEndpoint<M>>,
    shared: &WorkerShared,
) -> usize {
    let mut done = vec![false; shard.len()];
    let mut remaining = shard.len();
    let mut parked_idle = false;
    let mut idle_passes = 0u32;
    let mut seen_progress = shared.progress.load(Ordering::Relaxed);
    let mut last_global_change = Instant::now();
    'run: while remaining > 0 {
        if shared.failed.load(Ordering::Relaxed) {
            break;
        }
        // Unpark *before* polling, as in the threaded backend: a worker
        // inside a long pass must not look idle to its peers.
        if parked_idle {
            shared.idle_workers.fetch_sub(1, Ordering::Relaxed);
            parked_idle = false;
        }
        let mut progress = false;
        for (k, endpoint) in endpoints.iter_mut().enumerate() {
            if done[k] {
                continue;
            }
            let before = endpoint.activity;
            if shard[k].poll(endpoint) == ActorStatus::Done {
                done[k] = true;
                remaining -= 1;
                progress = true;
                shared.counters.finished[endpoint.node].store(true, Ordering::Relaxed);
            } else if endpoint.activity != before {
                progress = true;
            }
        }
        if !progress {
            // Idle sweep: drain every socket (including finished actors',
            // so late messages to them do not fill kernel buffers and
            // stall senders) and push out any back-pressured writes.
            let drained: u64 = endpoints.iter_mut().map(SocketEndpoint::sweep).sum();
            let flushed: u64 = endpoints.iter_mut().map(SocketEndpoint::flush_all).sum();
            progress = drained > 0 || flushed > 0;
        }
        for endpoint in endpoints.iter_mut() {
            if let Some(error) = endpoint.error.take() {
                shared.fail(error);
                break 'run;
            }
        }
        if progress {
            shared.progress.fetch_add(1, Ordering::Relaxed);
            idle_passes = 0;
        } else {
            shared.idle_workers.fetch_add(1, Ordering::Relaxed);
            parked_idle = true;
            let now_progress = shared.progress.load(Ordering::Relaxed);
            if now_progress != seen_progress {
                seen_progress = now_progress;
                last_global_change = Instant::now();
            } else if shared.idle_workers.load(Ordering::Relaxed) == shared.workers
                && shared.counters.quiescent()
                && last_global_change.elapsed() > shared.stall_timeout
            {
                shared.failed.store(true, Ordering::Relaxed);
                break;
            }
            idle_passes = idle_passes.saturating_add(1);
            if idle_passes > SPIN_PASSES_BEFORE_SLEEP {
                std::thread::sleep(Duration::from_millis(1));
            } else {
                std::thread::yield_now();
            }
        }
    }
    if !parked_idle {
        shared.idle_workers.fetch_add(1, Ordering::Relaxed);
    }
    // Before dropping the shard's sockets, push out bytes that running
    // peers still need; bytes addressed to finished nodes are theirs to
    // ignore.  Bounded by the stall timeout so a wedged peer cannot pin
    // this worker forever.
    let deadline = Instant::now() + shared.stall_timeout;
    while !shared.failed.load(Ordering::Relaxed) && Instant::now() < deadline {
        let pending: usize = endpoints
            .iter()
            .map(SocketEndpoint::pending_to_unfinished)
            .sum();
        if pending == 0 {
            break;
        }
        let flushed: u64 = endpoints.iter_mut().map(SocketEndpoint::flush_all).sum();
        // Keep draining too: a peer blocked writing to us frees its own
        // write buffer only if we read.
        let drained: u64 = endpoints.iter_mut().map(SocketEndpoint::sweep).sum();
        for endpoint in endpoints.iter_mut() {
            if let Some(error) = endpoint.error.take() {
                shared.fail(error);
            }
        }
        if flushed == 0 && drained == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    shard.len() - remaining
}

impl<M: Wire + Send> Transport<M> for SocketTransport {
    fn name(&self) -> &'static str {
        "socket"
    }

    fn run(&self, actors: &mut [&mut dyn NodeActor<M>]) -> Result<WireTally, TransportError> {
        let n = actors.len();
        if n == 0 {
            return Ok(WireTally::new(0));
        }
        let links = self.connect_mesh(n)?;
        let counters = Arc::new(QueueCounters::new(n));
        let wire = Arc::new(SharedTally::new(n));
        let mut endpoints: Vec<SocketEndpoint<M>> = links
            .into_iter()
            .enumerate()
            .map(|(node, links)| SocketEndpoint {
                node,
                links,
                buffers: (0..n).map(|_| VecDeque::new()).collect(),
                counters: Arc::clone(&counters),
                wire: Arc::clone(&wire),
                activity: 0,
                error: None,
            })
            .collect();
        let workers = self.threads.clamp(1, n);
        let shard_size = n.div_ceil(workers);
        let shared = WorkerShared::new(counters, n.div_ceil(shard_size), self.stall_timeout);
        let completed: usize = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            let mut rest: &mut [&mut dyn NodeActor<M>] = actors;
            while !rest.is_empty() {
                let take = shard_size.min(rest.len());
                let (shard, tail) = std::mem::take(&mut rest).split_at_mut(take);
                rest = tail;
                let shard_endpoints: Vec<_> = endpoints.drain(..take).collect();
                let shared = &shared;
                handles
                    .push(scope.spawn(move || run_socket_worker(shard, shard_endpoints, shared)));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("socket transport worker panicked"))
                .sum()
        });
        if shared.failed.load(Ordering::Relaxed) {
            return Err(shared.take_failure().unwrap_or(TransportError::Stalled {
                done: completed,
                actors: n,
            }));
        }
        Ok(wire.collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::hex;

    #[test]
    fn hello_golden_fixture_and_rejection() {
        let hello = Hello {
            from: 1,
            to: 2,
            nodes: 5,
        };
        let bytes = hello.encode();
        assert_eq!(hex(&bytes), "48010000000200000005000000");
        assert_eq!(Hello::decode_exact(&bytes).unwrap(), hello);
        // Wrong tag byte.
        let mut bad = bytes.clone();
        bad[0] = 0x47;
        assert!(matches!(
            Hello::decode_exact(&bad),
            Err(WireError::BadTag { tag: 0x47, .. })
        ));
        // Truncations at every split point.
        for cut in 0..bytes.len() {
            assert!(Hello::decode_exact(&bytes[..cut]).is_err(), "cut = {cut}");
        }
        // Trailing byte.
        let mut long = bytes;
        long.push(0);
        assert!(matches!(
            Hello::decode_exact(&long),
            Err(WireError::Trailing { remaining: 1 })
        ));
    }

    #[test]
    fn default_transport_has_workers() {
        let transport = SocketTransport::default();
        assert!(transport.threads() >= 1);
        assert_eq!(
            <SocketTransport as Transport<u64>>::name(&transport),
            "socket"
        );
    }
}
