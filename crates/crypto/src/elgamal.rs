//! ElGamal and exponential ElGamal encryption.
//!
//! DStress needs an encryption scheme with two unusual properties (§3 of
//! the paper): an *additive homomorphism* and a way to *re-randomise public
//! keys*.  Exponential ElGamal provides both:
//!
//! * Encrypting `g^m` instead of `m` turns ElGamal's multiplicative
//!   homomorphism into an additive one — the product of two ciphertexts
//!   decrypts to the sum of the plaintexts.
//! * A public key `h = g^x` can be re-randomised to `h^r = g^{xr}` without
//!   knowledge of `x`; a ciphertext produced under the re-randomised key is
//!   decryptable with the original secret key after its ephemeral component
//!   is raised to the same `r` (the *adjust* step of the transfer protocol).
//!
//! The module also implements the multi-recipient optimisation of
//! Kurosawa \[44\] used by the prototype (§5.1): when a sender encrypts the
//! `L` bits of a sub-share to the same recipient, a single ephemeral key is
//! reused across all `L` bits, at the cost of the recipient providing `L`
//! distinct public keys.

use crate::error::CryptoError;
use crate::group::{Group, GroupElem};
use dstress_math::rng::DetRng;
use dstress_math::U256;

/// An ElGamal secret key: an exponent `x ∈ Z_q`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SecretKey(pub(crate) U256);

/// An ElGamal public key: the group element `h = g^x`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PublicKey(pub(crate) GroupElem);

/// A secret/public key pair.
#[derive(Clone, Copy, Debug)]
pub struct KeyPair {
    /// The secret exponent.
    pub secret: SecretKey,
    /// The public element `g^x`.
    pub public: PublicKey,
}

/// An ElGamal ciphertext `(c1, c2) = (g^y, m · h^y)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ciphertext {
    /// The ephemeral component `g^y`.
    pub c1: GroupElem,
    /// The masked message `m · h^y`.
    pub c2: GroupElem,
}

impl SecretKey {
    /// Returns the raw exponent (used only by the trusted-party setup,
    /// which never leaves the local node in the real deployment).
    pub fn exponent(&self) -> U256 {
        self.0
    }
}

impl PublicKey {
    /// Returns the underlying group element.
    pub fn element(&self) -> GroupElem {
        self.0
    }

    /// Constructs a public key from a raw group element (e.g. one read
    /// from a block certificate).
    pub fn from_element(e: GroupElem) -> Self {
        PublicKey(e)
    }
}

impl KeyPair {
    /// Generates a fresh key pair.
    pub fn generate(group: &Group, rng: &mut dyn DetRng) -> Self {
        let x = group.random_nonzero_exponent(rng);
        let h = group.generator_pow(&x);
        KeyPair {
            secret: SecretKey(x),
            public: PublicKey(h),
        }
    }
}

/// Number of bytes on the wire for a ciphertext in the given group
/// (two group elements).
pub fn ciphertext_bytes(group: &Group) -> usize {
    2 * group.element_bytes()
}

/// Encrypts a group element under `pk`.
pub fn encrypt(
    group: &Group,
    pk: &PublicKey,
    message: GroupElem,
    rng: &mut dyn DetRng,
) -> Ciphertext {
    let y = group.random_nonzero_exponent(rng);
    encrypt_with_ephemeral(group, pk, message, &y)
}

/// Encrypts a group element under `pk` using a caller-supplied ephemeral
/// exponent (the multi-recipient optimisation reuses one ephemeral across
/// several encryptions).
pub fn encrypt_with_ephemeral(
    group: &Group,
    pk: &PublicKey,
    message: GroupElem,
    ephemeral: &U256,
) -> Ciphertext {
    let c1 = group.generator_pow(ephemeral);
    let shared = group.pow(pk.0, ephemeral);
    let c2 = group.mul(message, shared);
    Ciphertext { c1, c2 }
}

/// Decrypts a ciphertext with the matching secret key, returning the
/// encrypted group element.
///
/// # Errors
///
/// Returns [`CryptoError::MalformedCiphertext`] if the ciphertext contains
/// a non-invertible component.
pub fn decrypt(group: &Group, sk: &SecretKey, ct: &Ciphertext) -> Result<GroupElem, CryptoError> {
    let shared = group.pow(ct.c1, &sk.0);
    let shared_inv = group.inv(shared)?;
    Ok(group.mul(ct.c2, shared_inv))
}

/// Fused decryption: computes `c2 · c1^(q − x)` in a single exponentiation
/// instead of an exponentiation followed by a Fermat inversion (itself a
/// full exponentiation).
///
/// Valid whenever `c1` lies in the order-`q` subgroup — true for every
/// ciphertext the protocol produces — because there `c1^(q−x)` *is* the
/// inverse of `c1^x`, making this bit-identical to [`decrypt`] at roughly
/// half the cost.
pub fn decrypt_fused(group: &Group, sk: &SecretKey, ct: &Ciphertext) -> GroupElem {
    let neg = group.q().wrapping_sub(&sk.0.rem(&group.q()));
    group.mul(ct.c2, group.pow(ct.c1, &neg))
}

/// Encrypts the small non-negative integer `m` as `g^m` (exponential
/// ElGamal).  The result supports [`homomorphic_add`].
pub fn encrypt_exponent(group: &Group, pk: &PublicKey, m: u64, rng: &mut dyn DetRng) -> Ciphertext {
    encrypt(group, pk, group.encode_exponent(m), rng)
}

/// Homomorphically adds two exponential-ElGamal ciphertexts: the result
/// decrypts to `g^{m1 + m2}`.
pub fn homomorphic_add(group: &Group, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
    Ciphertext {
        c1: group.mul(a.c1, b.c1),
        c2: group.mul(a.c2, b.c2),
    }
}

/// Homomorphically adds the *plaintext* constant `m` (encoded as `g^m`)
/// into a ciphertext without re-encrypting.  Used by the transfer protocol
/// when vertex `i` folds geometric noise into the forwarded sums.
pub fn homomorphic_add_plaintext(group: &Group, ct: &Ciphertext, m: u64) -> Ciphertext {
    Ciphertext {
        c1: ct.c1,
        c2: group.mul(ct.c2, group.encode_exponent(m)),
    }
}

/// Re-randomises a public key: `h ↦ h^r`.
///
/// The neighbor key `r` is chosen by the *vertex owner* during setup; the
/// members of the neighbouring block only ever see the re-randomised key,
/// so they cannot recognise the key's owner (§3.4).
pub fn rerandomize_public_key(group: &Group, pk: &PublicKey, r: &U256) -> PublicKey {
    PublicKey(group.pow(pk.0, r))
}

/// Adjusts a ciphertext that was produced under a re-randomised key
/// `h^r` so that it decrypts under the *original* secret key: the
/// ephemeral component is raised to `r` (§3).
pub fn adjust_ciphertext(group: &Group, ct: &Ciphertext, r: &U256) -> Ciphertext {
    Ciphertext {
        c1: group.pow(ct.c1, r),
        c2: ct.c2,
    }
}

/// Encrypts each bit of `bits` to the corresponding public key in `pks`,
/// reusing a single ephemeral key across all of them (Kurosawa
/// multi-recipient optimisation, §5.1 of the paper).
///
/// # Errors
///
/// Returns [`CryptoError::ShareCountMismatch`] if `bits` and `pks` have
/// different lengths.
pub fn encrypt_bits_multi_recipient(
    group: &Group,
    pks: &[PublicKey],
    bits: &[bool],
    rng: &mut dyn DetRng,
) -> Result<Vec<Ciphertext>, CryptoError> {
    if pks.len() != bits.len() {
        return Err(CryptoError::ShareCountMismatch {
            expected: pks.len(),
            actual: bits.len(),
        });
    }
    let ephemeral = group.random_nonzero_exponent(rng);
    Ok(bits
        .iter()
        .zip(pks.iter())
        .map(|(&bit, pk)| {
            encrypt_with_ephemeral(group, pk, group.encode_exponent(bit as u64), &ephemeral)
        })
        .collect())
}

/// The same multi-recipient encryption as [`encrypt_bits_multi_recipient`]
/// with a caller-supplied ephemeral, computing the shared component
/// `c1 = g^y` **once** instead of once per bit.
///
/// Bit-identical to the per-bit path (each ciphertext's values are the same
/// group elements); the kernel-enabled transfer protocol uses this to avoid
/// `L − 1` redundant generator exponentiations per sub-share.
///
/// # Errors
///
/// Returns [`CryptoError::ShareCountMismatch`] if `bits` and `pks` have
/// different lengths.
pub fn encrypt_bits_shared_c1(
    group: &Group,
    pks: &[PublicKey],
    bits: &[bool],
    ephemeral: &U256,
) -> Result<Vec<Ciphertext>, CryptoError> {
    if pks.len() != bits.len() {
        return Err(CryptoError::ShareCountMismatch {
            expected: pks.len(),
            actual: bits.len(),
        });
    }
    let c1 = group.generator_pow(ephemeral);
    Ok(bits
        .iter()
        .zip(pks.iter())
        .map(|(&bit, pk)| {
            let shared = group.pow(pk.0, ephemeral);
            Ciphertext {
                c1,
                c2: group.mul(group.encode_exponent(bit as u64), shared),
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dlog::DlogTable;
    use dstress_math::rng::{DetRng, SplitMix64, Xoshiro256};
    use proptest::prelude::*;

    fn setup() -> (Group, KeyPair, Xoshiro256) {
        let group = Group::sim64();
        let mut rng = Xoshiro256::new(0xE16A);
        let kp = KeyPair::generate(&group, &mut rng);
        (group, kp, rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (group, kp, mut rng) = setup();
        for m in [0u64, 1, 7, 255, 4096] {
            let msg = group.encode_exponent(m);
            let ct = encrypt(&group, &kp.public, msg, &mut rng);
            assert_eq!(decrypt(&group, &kp.secret, &ct).unwrap(), msg);
        }
    }

    #[test]
    fn encrypt_is_randomised() {
        let (group, kp, mut rng) = setup();
        let msg = group.encode_exponent(42);
        let c1 = encrypt(&group, &kp.public, msg, &mut rng);
        let c2 = encrypt(&group, &kp.public, msg, &mut rng);
        assert_ne!(c1, c2, "two encryptions of the same message must differ");
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let (group, kp, mut rng) = setup();
        let other = KeyPair::generate(&group, &mut rng);
        let msg = group.encode_exponent(9);
        let ct = encrypt(&group, &kp.public, msg, &mut rng);
        assert_ne!(decrypt(&group, &other.secret, &ct).unwrap(), msg);
    }

    #[test]
    fn additive_homomorphism() {
        let (group, kp, mut rng) = setup();
        let table = DlogTable::new(&group, 1000);
        let ca = encrypt_exponent(&group, &kp.public, 123, &mut rng);
        let cb = encrypt_exponent(&group, &kp.public, 456, &mut rng);
        let sum = homomorphic_add(&group, &ca, &cb);
        let decrypted = decrypt(&group, &kp.secret, &sum).unwrap();
        assert_eq!(table.lookup(&group, decrypted).unwrap(), 579);
    }

    #[test]
    fn plaintext_addition() {
        let (group, kp, mut rng) = setup();
        let table = DlogTable::new(&group, 100);
        let ct = encrypt_exponent(&group, &kp.public, 30, &mut rng);
        let ct = homomorphic_add_plaintext(&group, &ct, 12);
        let decrypted = decrypt(&group, &kp.secret, &ct).unwrap();
        assert_eq!(table.lookup(&group, decrypted).unwrap(), 42);
    }

    #[test]
    fn key_rerandomisation_roundtrip() {
        let (group, kp, mut rng) = setup();
        let r = group.random_nonzero_exponent(&mut rng);
        let randomized = rerandomize_public_key(&group, &kp.public, &r);
        assert_ne!(randomized.element(), kp.public.element());

        let msg = group.encode_exponent(77);
        let ct = encrypt(&group, &randomized, msg, &mut rng);
        // Without adjustment the original key cannot decrypt.
        assert_ne!(decrypt(&group, &kp.secret, &ct).unwrap(), msg);
        // After adjusting the ephemeral component it can.
        let adjusted = adjust_ciphertext(&group, &ct, &r);
        assert_eq!(decrypt(&group, &kp.secret, &adjusted).unwrap(), msg);
    }

    #[test]
    fn adjustment_commutes_with_homomorphic_add() {
        // The transfer protocol aggregates ciphertexts *before* vertex j
        // adjusts them; the result must equal adjusting first and adding
        // afterwards.
        let (group, kp, mut rng) = setup();
        let r = group.random_nonzero_exponent(&mut rng);
        let randomized = rerandomize_public_key(&group, &kp.public, &r);
        let table = DlogTable::new(&group, 100);

        // Same ephemeral reuse pattern as the real protocol is not needed
        // here; independent ephemerals also work.
        let ca = encrypt_exponent(&group, &randomized, 5, &mut rng);
        let cb = encrypt_exponent(&group, &randomized, 11, &mut rng);
        let aggregated_then_adjusted =
            adjust_ciphertext(&group, &homomorphic_add(&group, &ca, &cb), &r);
        let adjusted_then_aggregated = homomorphic_add(
            &group,
            &adjust_ciphertext(&group, &ca, &r),
            &adjust_ciphertext(&group, &cb, &r),
        );
        let da = decrypt(&group, &kp.secret, &aggregated_then_adjusted).unwrap();
        let db = decrypt(&group, &kp.secret, &adjusted_then_aggregated).unwrap();
        assert_eq!(table.lookup(&group, da).unwrap(), 16);
        assert_eq!(table.lookup(&group, db).unwrap(), 16);
    }

    #[test]
    fn multi_recipient_encryption() {
        let (group, _, mut rng) = setup();
        let table = DlogTable::new(&group, 2);
        let keys: Vec<KeyPair> = (0..12)
            .map(|_| KeyPair::generate(&group, &mut rng))
            .collect();
        let pks: Vec<PublicKey> = keys.iter().map(|k| k.public).collect();
        let bits: Vec<bool> = (0..12).map(|i| i % 3 == 0).collect();
        let cts = encrypt_bits_multi_recipient(&group, &pks, &bits, &mut rng).unwrap();
        assert_eq!(cts.len(), 12);
        // All ciphertexts share the ephemeral component.
        assert!(cts.iter().all(|c| c.c1 == cts[0].c1));
        for ((ct, key), &bit) in cts.iter().zip(keys.iter()).zip(bits.iter()) {
            let m = decrypt(&group, &key.secret, ct).unwrap();
            assert_eq!(table.lookup(&group, m).unwrap(), bit as u64);
        }
    }

    #[test]
    fn fused_decrypt_matches_plain_decrypt() {
        for group in [Group::sim64(), Group::prod256()] {
            let mut rng = Xoshiro256::new(0xF0);
            let kp = KeyPair::generate(&group, &mut rng);
            for m in [0u64, 1, 99, 5000] {
                let ct = encrypt_exponent(&group, &kp.public, m, &mut rng);
                assert_eq!(
                    decrypt_fused(&group, &kp.secret, &ct),
                    decrypt(&group, &kp.secret, &ct).unwrap()
                );
            }
        }
    }

    #[test]
    fn shared_c1_encryption_matches_per_bit_path() {
        let (group, _, mut rng) = setup();
        let keys: Vec<KeyPair> = (0..8)
            .map(|_| KeyPair::generate(&group, &mut rng))
            .collect();
        let pks: Vec<PublicKey> = keys.iter().map(|k| k.public).collect();
        let bits: Vec<bool> = (0..8).map(|i| i % 2 == 1).collect();
        let mut rng_a = Xoshiro256::new(77);
        let mut rng_b = rng_a.clone();
        let per_bit = encrypt_bits_multi_recipient(&group, &pks, &bits, &mut rng_a).unwrap();
        let ephemeral = group.random_nonzero_exponent(&mut rng_b);
        let shared = encrypt_bits_shared_c1(&group, &pks, &bits, &ephemeral).unwrap();
        assert_eq!(per_bit, shared, "both paths must be bit-identical");
        // Both consumed the same single RNG draw.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn multi_recipient_length_mismatch() {
        let (group, kp, mut rng) = setup();
        let err = encrypt_bits_multi_recipient(&group, &[kp.public], &[true, false], &mut rng)
            .unwrap_err();
        assert!(matches!(err, CryptoError::ShareCountMismatch { .. }));
    }

    #[test]
    fn works_on_prod256_group() {
        let group = Group::prod256();
        let mut rng = SplitMix64::new(9);
        let kp = KeyPair::generate(&group, &mut rng);
        let msg = group.encode_exponent(321);
        let ct = encrypt(&group, &kp.public, msg, &mut rng);
        assert_eq!(decrypt(&group, &kp.secret, &ct).unwrap(), msg);
        assert_eq!(ciphertext_bytes(&group), 64);
        assert_eq!(ciphertext_bytes(&Group::sim64()), 16);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_roundtrip(seed in any::<u64>(), m in 0u64..10_000) {
            let group = Group::sim64();
            let mut rng = Xoshiro256::new(seed);
            let kp = KeyPair::generate(&group, &mut rng);
            let msg = group.encode_exponent(m);
            let ct = encrypt(&group, &kp.public, msg, &mut rng);
            prop_assert_eq!(decrypt(&group, &kp.secret, &ct).unwrap(), msg);
        }

        #[test]
        fn prop_homomorphism(seed in any::<u64>(), a in 0u64..500, b in 0u64..500) {
            let group = Group::sim64();
            let mut rng = Xoshiro256::new(seed);
            let kp = KeyPair::generate(&group, &mut rng);
            let ca = encrypt_exponent(&group, &kp.public, a, &mut rng);
            let cb = encrypt_exponent(&group, &kp.public, b, &mut rng);
            let sum = homomorphic_add(&group, &ca, &cb);
            let expected = group.encode_exponent(a + b);
            prop_assert_eq!(decrypt(&group, &kp.secret, &sum).unwrap(), expected);
        }

        #[test]
        fn prop_rerandomisation(seed in any::<u64>(), m in 0u64..1000) {
            let group = Group::sim64();
            let mut rng = Xoshiro256::new(seed);
            let kp = KeyPair::generate(&group, &mut rng);
            let r = group.random_nonzero_exponent(&mut rng);
            let pk_r = rerandomize_public_key(&group, &kp.public, &r);
            let msg = group.encode_exponent(m);
            let ct = encrypt(&group, &pk_r, msg, &mut rng);
            let adjusted = adjust_ciphertext(&group, &ct, &r);
            prop_assert_eq!(decrypt(&group, &kp.secret, &adjusted).unwrap(), msg);
        }
    }
}
