//! Safe-prime Schnorr groups for ElGamal.
//!
//! DStress needs a cyclic group of prime order `q` with generator `g` in
//! which the decisional Diffie–Hellman problem is assumed hard.  The
//! original prototype used the NIST P-384 elliptic curve; we use the
//! order-`q` subgroup of `Z_p^*` for a safe prime `p = 2q + 1` (quadratic
//! residues), which supports every operation the protocol needs —
//! exponentiation, the additive homomorphism of exponential ElGamal and
//! public-key re-randomisation — with arithmetic we implement ourselves.
//!
//! Two parameter sets are provided: [`GroupKind::Prod256`], a 256-bit group
//! used by the cryptographic micro-benchmarks, and [`GroupKind::Sim64`], a
//! 64-bit group used by the large end-to-end simulations where wall-clock
//! time matters more than cryptographic strength (the protocol logic is
//! identical; only the constants shrink).

use crate::error::CryptoError;
use crate::kernels::FixedBasePow;
use dstress_math::field::{FpCtx, FpElem};
use dstress_math::prime::verify_group_parameters;
use dstress_math::rng::DetRng;
use dstress_math::U256;
use std::sync::{Arc, OnceLock};

/// Window width of the lazily built generator table; 8 bits keeps the
/// table at `⌈|q|/8⌉ × 255` elements (≈ 255 KiB for the 256-bit group)
/// while cutting a generator exponentiation to one multiply per byte of
/// the exponent.
pub(crate) const GENERATOR_WINDOW_BITS: u32 = 8;

/// Pre-defined group parameter sets.
///
/// Both sets were generated with
/// `cargo run -p dstress-math --example gen_group_params` (deterministic
/// safe-prime search, seed `0xD57E55`) and are verified by tests via
/// [`dstress_math::prime::verify_group_parameters`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GroupKind {
    /// 256-bit safe-prime group: the "production strength" parameter set.
    Prod256,
    /// 64-bit safe-prime group: fast parameters for large simulations.
    Sim64,
}

/// Hex constants for the 256-bit group.
const PROD256_P: &str = "86245b7eedfbd049a95b6d87011df329a4b1a963749d303c1644f5a0d5f871d3";
const PROD256_Q: &str = "43122dbf76fde824d4adb6c3808ef994d258d4b1ba4e981e0b227ad06afc38e9";
const PROD256_G: &str = "4f5b929f8e241afaa948afaa55e8c6aa94614b6a2b3ffb41a7a19ec1afeb172a";

/// Hex constants for the 64-bit simulation group.
const SIM64_P: &str = "eb6a55e00d142ed7";
const SIM64_Q: &str = "75b52af0068a176b";
const SIM64_G: &str = "9c1e83fca7e405bf";

/// An element of the ElGamal group (a quadratic residue mod `p`).
///
/// Elements are stored in Montgomery form; they are only meaningful
/// relative to the [`Group`] that produced them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GroupElem(pub(crate) FpElem);

/// A safe-prime Schnorr group together with its arithmetic contexts.
///
/// The struct is cheaply cloneable (the contexts are shared through
/// [`Arc`]s) so every simulated node can hold its own handle.
#[derive(Clone, Debug)]
pub struct Group {
    kind: GroupKind,
    p: U256,
    q: U256,
    generator: GroupElem,
    p_ctx: Arc<FpCtx>,
    q_ctx: Arc<FpCtx>,
    /// Windowed table for [`Group::generator_pow`], built on first use and
    /// shared by every clone of the group handle.
    gen_table: Arc<OnceLock<FixedBasePow>>,
}

impl Group {
    /// Instantiates one of the pre-defined groups.
    ///
    /// # Panics
    ///
    /// Panics only if the embedded constants are corrupt (checked by tests).
    pub fn new(kind: GroupKind) -> Self {
        let (p_hex, q_hex, g_hex) = match kind {
            GroupKind::Prod256 => (PROD256_P, PROD256_Q, PROD256_G),
            GroupKind::Sim64 => (SIM64_P, SIM64_Q, SIM64_G),
        };
        let p = U256::from_hex(p_hex).expect("embedded prime constant is valid hex");
        let q = U256::from_hex(q_hex).expect("embedded order constant is valid hex");
        let g = U256::from_hex(g_hex).expect("embedded generator constant is valid hex");
        Self::from_parameters(kind, p, q, g).expect("embedded group constants are consistent")
    }

    /// The 256-bit parameter set.
    pub fn prod256() -> Self {
        Self::new(GroupKind::Prod256)
    }

    /// The 64-bit simulation parameter set.
    pub fn sim64() -> Self {
        Self::new(GroupKind::Sim64)
    }

    /// Builds a group from explicit parameters after validating them.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Math`] if the parameters are not a consistent
    /// safe-prime group.
    pub fn from_parameters(
        kind: GroupKind,
        p: U256,
        q: U256,
        generator: U256,
    ) -> Result<Self, CryptoError> {
        if !verify_group_parameters(&p, &q, &generator) {
            return Err(CryptoError::Math(dstress_math::MathError::InvalidModulus));
        }
        let p_ctx = Arc::new(FpCtx::new(p)?);
        let q_ctx = Arc::new(FpCtx::new(q)?);
        let generator = GroupElem(p_ctx.to_elem(generator)?);
        Ok(Group {
            kind,
            p,
            q,
            generator,
            p_ctx,
            q_ctx,
            gen_table: Arc::new(OnceLock::new()),
        })
    }

    /// Which parameter set this group uses.
    pub fn kind(&self) -> GroupKind {
        self.kind
    }

    /// The group modulus `p`.
    pub fn p(&self) -> U256 {
        self.p
    }

    /// The subgroup order `q`.
    pub fn q(&self) -> U256 {
        self.q
    }

    /// The generator `g` of the order-`q` subgroup.
    pub fn generator(&self) -> GroupElem {
        self.generator
    }

    /// The group identity element.
    pub fn identity(&self) -> GroupElem {
        GroupElem(self.p_ctx.one())
    }

    /// Size in bytes of a serialised group element.
    ///
    /// This is what the traffic accounting uses: 8 bytes for the simulation
    /// group and 32 bytes for the 256-bit group.  (The paper's prototype
    /// used 48-byte secp384r1 coordinates; the cost model in `dstress-core`
    /// can scale to that element size when projecting paper-scale numbers.)
    pub fn element_bytes(&self) -> usize {
        match self.kind {
            GroupKind::Prod256 => 32,
            GroupKind::Sim64 => 8,
        }
    }

    /// Group operation (multiplication mod `p`).
    pub fn mul(&self, a: GroupElem, b: GroupElem) -> GroupElem {
        GroupElem(self.p_ctx.mul(a.0, b.0))
    }

    /// Group inverse.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MalformedCiphertext`] for the zero element,
    /// which is not a member of the group.
    pub fn inv(&self, a: GroupElem) -> Result<GroupElem, CryptoError> {
        self.p_ctx
            .inv(a.0)
            .map(GroupElem)
            .map_err(|_| CryptoError::MalformedCiphertext)
    }

    /// Exponentiation `a^e` where `e` is an exponent in `Z_q` (given as an
    /// integer; values larger than `q` simply wrap, as exponents live mod `q`).
    pub fn pow(&self, a: GroupElem, e: &U256) -> GroupElem {
        GroupElem(self.p_ctx.pow(a.0, e))
    }

    /// `g^e` for the group generator, served from a windowed fixed-base
    /// table (built lazily on first use). Bit-identical to
    /// `pow(generator(), e)` — the kernel-equivalence proptests pin this.
    pub fn generator_pow(&self, e: &U256) -> GroupElem {
        self.generator_table().pow(e)
    }

    /// The shared fixed-base table for the generator.
    pub fn generator_table(&self) -> &FixedBasePow {
        self.gen_table.get_or_init(|| {
            FixedBasePow::from_parts(
                Arc::clone(&self.p_ctx),
                self.q,
                self.generator.0,
                GENERATOR_WINDOW_BITS,
            )
        })
    }

    /// Encodes a small non-negative integer `m` as the group element `g^m`
    /// (the exponential-ElGamal message encoding).
    pub fn encode_exponent(&self, m: u64) -> GroupElem {
        self.generator_pow(&U256::from_u64(m))
    }

    /// Samples a uniformly random exponent in `Z_q`.
    pub fn random_exponent(&self, rng: &mut dyn DetRng) -> U256 {
        dstress_math::field::random_below(rng, &self.q)
    }

    /// Samples a uniformly random *non-zero* exponent in `Z_q`.
    pub fn random_nonzero_exponent(&self, rng: &mut dyn DetRng) -> U256 {
        loop {
            let e = self.random_exponent(rng);
            if !e.is_zero() {
                return e;
            }
        }
    }

    /// Converts a group element to its canonical integer representation
    /// (used for serialisation and for discrete-log table keys).
    pub fn elem_to_int(&self, a: GroupElem) -> U256 {
        self.p_ctx.to_int(a.0)
    }

    /// Parses a canonical integer back into a group element.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Math`] if the value is not in `[0, p)`.
    pub fn elem_from_int(&self, v: U256) -> Result<GroupElem, CryptoError> {
        Ok(GroupElem(self.p_ctx.to_elem(v)?))
    }

    /// Exponent-ring context (`Z_q`), used for arithmetic on exponents.
    pub fn exponent_ctx(&self) -> &FpCtx {
        &self.q_ctx
    }

    /// Group-arithmetic context (`Z_p`), used by the exponentiation kernels.
    pub(crate) fn p_ctx(&self) -> &FpCtx {
        &self.p_ctx
    }

    /// Shared handle to the group-arithmetic context.
    pub(crate) fn p_ctx_arc(&self) -> Arc<FpCtx> {
        Arc::clone(&self.p_ctx)
    }

    /// Adds two exponents modulo `q`.
    pub fn add_exponents(&self, a: &U256, b: &U256) -> U256 {
        let ea = self.q_ctx.to_elem_reduced(*a);
        let eb = self.q_ctx.to_elem_reduced(*b);
        self.q_ctx.to_int(self.q_ctx.add(ea, eb))
    }

    /// Multiplies two exponents modulo `q` (used for key re-randomisation).
    pub fn mul_exponents(&self, a: &U256, b: &U256) -> U256 {
        let ea = self.q_ctx.to_elem_reduced(*a);
        let eb = self.q_ctx.to_elem_reduced(*b);
        self.q_ctx.to_int(self.q_ctx.mul(ea, eb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_math::rng::SplitMix64;
    use dstress_math::U256;

    #[test]
    fn embedded_parameters_are_valid() {
        for kind in [GroupKind::Sim64, GroupKind::Prod256] {
            let g = Group::new(kind);
            assert_eq!(g.kind(), kind);
            assert!(verify_group_parameters(
                &g.p(),
                &g.q(),
                &g.elem_to_int(g.generator())
            ));
        }
    }

    #[test]
    fn generator_has_order_q() {
        let g = Group::sim64();
        assert_eq!(g.pow(g.generator(), &g.q()), g.identity());
        assert_ne!(g.generator(), g.identity());
    }

    #[test]
    fn element_bytes() {
        assert_eq!(Group::sim64().element_bytes(), 8);
        assert_eq!(Group::prod256().element_bytes(), 32);
    }

    #[test]
    fn pow_addition_law() {
        let g = Group::sim64();
        let mut rng = SplitMix64::new(1);
        let a = g.random_exponent(&mut rng);
        let b = g.random_exponent(&mut rng);
        let lhs = g.mul(g.generator_pow(&a), g.generator_pow(&b));
        let rhs = g.generator_pow(&g.add_exponents(&a, &b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn pow_multiplication_law() {
        let g = Group::prod256();
        let mut rng = SplitMix64::new(2);
        let a = g.random_exponent(&mut rng);
        let b = g.random_exponent(&mut rng);
        let lhs = g.pow(g.generator_pow(&a), &b);
        let rhs = g.generator_pow(&g.mul_exponents(&a, &b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn inverse_cancels() {
        let g = Group::sim64();
        let mut rng = SplitMix64::new(3);
        let x = g.generator_pow(&g.random_nonzero_exponent(&mut rng));
        let inv = g.inv(x).unwrap();
        assert_eq!(g.mul(x, inv), g.identity());
    }

    #[test]
    fn elem_int_roundtrip() {
        let g = Group::prod256();
        let mut rng = SplitMix64::new(4);
        let x = g.generator_pow(&g.random_exponent(&mut rng));
        assert_eq!(g.elem_from_int(g.elem_to_int(x)).unwrap(), x);
    }

    #[test]
    fn elem_from_int_rejects_out_of_range() {
        let g = Group::sim64();
        assert!(g.elem_from_int(g.p()).is_err());
    }

    #[test]
    fn from_parameters_rejects_garbage() {
        let err = Group::from_parameters(
            GroupKind::Sim64,
            U256::from_u64(15),
            U256::from_u64(7),
            U256::from_u64(2),
        );
        assert!(err.is_err());
    }

    #[test]
    fn encode_exponent_is_homomorphic() {
        let g = Group::sim64();
        assert_eq!(
            g.mul(g.encode_exponent(3), g.encode_exponent(4)),
            g.encode_exponent(7)
        );
        assert_eq!(g.encode_exponent(0), g.identity());
    }

    #[test]
    fn generator_pow_table_matches_plain_pow() {
        for kind in [GroupKind::Sim64, GroupKind::Prod256] {
            let g = Group::new(kind);
            let mut rng = SplitMix64::new(6);
            for _ in 0..20 {
                let e = g.random_exponent(&mut rng);
                assert_eq!(g.generator_pow(&e), g.pow(g.generator(), &e), "{kind:?}");
            }
            assert_eq!(g.generator_pow(&U256::ZERO), g.identity());
            // Clones share the same lazily built table.
            let clone = g.clone();
            assert_eq!(
                clone.generator_table().memory_bytes(),
                g.generator_table().memory_bytes()
            );
        }
    }

    #[test]
    fn random_exponent_below_q() {
        let g = Group::sim64();
        let mut rng = SplitMix64::new(5);
        for _ in 0..50 {
            assert!(g.random_exponent(&mut rng) < g.q());
            assert!(!g.random_nonzero_exponent(&mut rng).is_zero());
        }
    }
}
