//! Cryptographic primitives for the DStress reproduction.
//!
//! The original prototype used OpenSSL ElGamal over the secp384r1 curve;
//! this crate provides an equivalent, self-contained implementation over a
//! safe-prime Schnorr group (see `DESIGN.md` for the substitution
//! argument).  It exposes exactly the primitives the DStress protocol
//! needs:
//!
//! * [`group`] — group parameter sets: a 256-bit group for the crypto
//!   micro-benchmarks and a fast 64-bit *simulation* group for the large
//!   end-to-end runs.
//! * [`elgamal`] — ElGamal and *exponential* ElGamal with the two unusual
//!   properties DStress relies on (§3 of the paper): an additive
//!   homomorphism and public-key re-randomisation, plus the Kurosawa
//!   multi-recipient optimisation used by the prototype (§5.1).
//! * [`dlog`] — fingerprint-keyed lookup tables and signed
//!   baby-step/giant-step discrete-log recovery for decrypting
//!   exponential-ElGamal ciphertexts that carry small sums.
//! * [`kernels`] — fast exponentiation kernels: windowed fixed-base
//!   tables, Straus/Pippenger multi-exponentiation and precomputed
//!   re-randomisation factors, all pinned bit-identical to the naive
//!   square-and-multiply path.
//! * [`sharing`] — XOR secret sharing, sub-share splitting and bit
//!   decomposition: the `⊕`-sharing substrate used by the blocks and the
//!   message transfer protocol.
//!
//! ## Example
//!
//! ```
//! use dstress_crypto::elgamal::{decrypt, encrypt, homomorphic_add};
//! use dstress_crypto::{Group, KeyPair};
//! use dstress_math::rng::Xoshiro256;
//!
//! let group = Group::sim64();
//! let mut rng = Xoshiro256::new(7);
//! let kp = KeyPair::generate(&group, &mut rng);
//!
//! // Exponential ElGamal is additively homomorphic.
//! let ca = encrypt(&group, &kp.public, group.encode_exponent(21), &mut rng);
//! let cb = encrypt(&group, &kp.public, group.encode_exponent(21), &mut rng);
//! let sum = homomorphic_add(&group, &ca, &cb);
//! assert_eq!(
//!     decrypt(&group, &kp.secret, &sum).unwrap(),
//!     group.encode_exponent(42),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dlog;
pub mod elgamal;
pub mod error;
pub mod group;
pub mod kernels;
pub mod sharing;

pub use dlog::DlogTable;
pub use elgamal::{Ciphertext, KeyPair, PublicKey, SecretKey};
pub use error::CryptoError;
pub use group::{Group, GroupElem, GroupKind};
pub use kernels::{multi_pow, FixedBasePow, TransferKernels};
pub use sharing::{split_xor, xor_reconstruct, BitMessage};
