//! Discrete-logarithm recovery for exponential ElGamal.
//!
//! Exponential ElGamal encrypts `g^m`; after decryption the recipient holds
//! the group element `g^m` and must recover `m`.  This is only feasible
//! when `m` lies in a small known range.  The paper notes (§3, Appendix B)
//! that the prototype pre-computes a lookup table of `g^c` for all
//! candidate values `c`, and that the table size bounds how much geometric
//! noise can be added before decryption fails (the failure probability
//! `P_fail`).
//!
//! Two mechanisms are provided:
//!
//! * [`DlogTable`] — an exact mirror of the prototype's lookup table,
//!   covering `0..=max`.
//! * [`baby_step_giant_step`] — an O(√R) search used by tests and by the
//!   aggregation step, where the range is larger but still bounded.

use crate::error::CryptoError;
use crate::group::{Group, GroupElem};
use dstress_math::U256;
use std::collections::HashMap;

/// A precomputed table mapping `g^m ↦ m` for `m` in a small window.
///
/// The window is `[0, max]` for [`DlogTable::new`] and `[-max, max]` for
/// [`DlogTable::new_signed`]; the signed variant is what the message
/// transfer protocol uses, because the even geometric noise added to the
/// forwarded bit-sums can be negative (Appendix B sizes this window as
/// `N_l` entries).
#[derive(Clone, Debug)]
pub struct DlogTable {
    table: HashMap<U256, i64>,
    max: u64,
    signed: bool,
}

impl DlogTable {
    /// Builds a table covering exponents `0..=max`.
    pub fn new(group: &Group, max: u64) -> Self {
        let mut table = HashMap::with_capacity(max as usize + 1);
        let mut acc = group.identity();
        let g = group.generator();
        for m in 0..=max {
            table.insert(group.elem_to_int(acc), m as i64);
            acc = group.mul(acc, g);
        }
        DlogTable {
            table,
            max,
            signed: false,
        }
    }

    /// Builds a table covering exponents `-max ..= max` (so `2·max + 1`
    /// entries).
    pub fn new_signed(group: &Group, max: u64) -> Self {
        let mut table = HashMap::with_capacity(2 * max as usize + 1);
        let g = group.generator();
        let g_inv = group.inv(g).expect("generator is invertible");
        let mut acc = group.identity();
        for m in 0..=max {
            table.insert(group.elem_to_int(acc), m as i64);
            acc = group.mul(acc, g);
        }
        let mut acc = g_inv;
        for m in 1..=max {
            table.insert(group.elem_to_int(acc), -(m as i64));
            acc = group.mul(acc, g_inv);
        }
        DlogTable {
            table,
            max,
            signed: true,
        }
    }

    /// The largest exponent magnitude the table can recover.
    pub fn max_exponent(&self) -> u64 {
        self.max
    }

    /// Returns `true` if the table covers negative exponents.
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Number of entries in the table (the paper's `N_l`).
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Looks up the discrete log of `elem` as a non-negative value.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::DlogOutOfRange`] when the exponent is not in
    /// the covered range — the event the paper calls a decryption failure —
    /// or when the recovered exponent is negative.
    pub fn lookup(&self, group: &Group, elem: GroupElem) -> Result<u64, CryptoError> {
        match self.lookup_signed(group, elem) {
            Ok(v) if v >= 0 => Ok(v as u64),
            _ => Err(CryptoError::DlogOutOfRange { searched: self.max }),
        }
    }

    /// Looks up the discrete log of `elem`, allowing negative exponents
    /// when the table was built with [`DlogTable::new_signed`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::DlogOutOfRange`] when the exponent is not in
    /// the covered range.
    pub fn lookup_signed(&self, group: &Group, elem: GroupElem) -> Result<i64, CryptoError> {
        self.table
            .get(&group.elem_to_int(elem))
            .copied()
            .ok_or(CryptoError::DlogOutOfRange { searched: self.max })
    }

    /// Approximate memory footprint of the table in bytes, as used by the
    /// Appendix B sizing argument (each entry stores a group element key
    /// plus a 64-bit exponent).
    pub fn memory_bytes(&self, group: &Group) -> usize {
        self.entries() * (group.element_bytes() + 8)
    }
}

/// Recovers `m` such that `g^m == elem` for `m ∈ [0, bound)` using
/// baby-step/giant-step in O(√bound) time and memory.
///
/// # Errors
///
/// Returns [`CryptoError::DlogOutOfRange`] if no such `m` exists in range.
pub fn baby_step_giant_step(
    group: &Group,
    elem: GroupElem,
    bound: u64,
) -> Result<u64, CryptoError> {
    if bound == 0 {
        return Err(CryptoError::DlogOutOfRange { searched: 0 });
    }
    let m = (bound as f64).sqrt().ceil() as u64;
    // Baby steps: g^j for j in [0, m).
    let mut baby = HashMap::with_capacity(m as usize);
    let g = group.generator();
    let mut acc = group.identity();
    for j in 0..m {
        baby.entry(group.elem_to_int(acc)).or_insert(j);
        acc = group.mul(acc, g);
    }
    // Giant steps: elem * (g^{-m})^i.
    let g_m = group.pow(g, &U256::from_u64(m));
    let g_m_inv = group.inv(g_m)?;
    let mut gamma = elem;
    for i in 0..m {
        if let Some(&j) = baby.get(&group.elem_to_int(gamma)) {
            let result = i * m + j;
            if result < bound {
                return Ok(result);
            }
        }
        gamma = group.mul(gamma, g_m_inv);
    }
    Err(CryptoError::DlogOutOfRange { searched: bound })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_recovers_all_entries() {
        let group = Group::sim64();
        let table = DlogTable::new(&group, 200);
        assert_eq!(table.entries(), 201);
        assert_eq!(table.max_exponent(), 200);
        for m in [0u64, 1, 2, 50, 199, 200] {
            assert_eq!(table.lookup(&group, group.encode_exponent(m)).unwrap(), m);
        }
    }

    #[test]
    fn table_rejects_out_of_range() {
        let group = Group::sim64();
        let table = DlogTable::new(&group, 10);
        let err = table.lookup(&group, group.encode_exponent(11)).unwrap_err();
        assert_eq!(err, CryptoError::DlogOutOfRange { searched: 10 });
    }

    #[test]
    fn signed_table_recovers_negative_exponents() {
        let group = Group::sim64();
        let table = DlogTable::new_signed(&group, 50);
        assert!(table.is_signed());
        assert_eq!(table.entries(), 101);
        for m in [-50i64, -7, -1, 0, 1, 13, 50] {
            let elem = if m >= 0 {
                group.encode_exponent(m as u64)
            } else {
                group
                    .inv(group.encode_exponent((-m) as u64))
                    .expect("group elements are invertible")
            };
            assert_eq!(table.lookup_signed(&group, elem).unwrap(), m);
        }
        // Unsigned lookup rejects negative exponents.
        let neg = group.inv(group.encode_exponent(3)).unwrap();
        assert!(table.lookup(&group, neg).is_err());
        // Out of range either way.
        assert!(table
            .lookup_signed(&group, group.encode_exponent(51))
            .is_err());
    }

    #[test]
    fn table_memory_estimate() {
        let group = Group::sim64();
        let table = DlogTable::new(&group, 100);
        assert_eq!(table.memory_bytes(&group), 101 * 16);
    }

    #[test]
    fn bsgs_recovers_values() {
        let group = Group::sim64();
        for m in [0u64, 1, 17, 999, 12345, 65535] {
            let elem = group.encode_exponent(m);
            assert_eq!(baby_step_giant_step(&group, elem, 70_000).unwrap(), m);
        }
    }

    #[test]
    fn bsgs_rejects_out_of_range() {
        let group = Group::sim64();
        let elem = group.encode_exponent(1000);
        assert!(baby_step_giant_step(&group, elem, 100).is_err());
        assert!(baby_step_giant_step(&group, elem, 0).is_err());
    }

    #[test]
    fn bsgs_matches_table_on_prod_group() {
        let group = Group::prod256();
        let table = DlogTable::new(&group, 64);
        for m in [0u64, 3, 31, 64] {
            let elem = group.encode_exponent(m);
            assert_eq!(
                table.lookup(&group, elem).unwrap(),
                baby_step_giant_step(&group, elem, 65).unwrap()
            );
        }
    }
}
