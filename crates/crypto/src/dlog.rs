//! Discrete-logarithm recovery for exponential ElGamal.
//!
//! Exponential ElGamal encrypts `g^m`; after decryption the recipient holds
//! the group element `g^m` and must recover `m`.  This is only feasible
//! when `m` lies in a small known range.  The paper notes (§3, Appendix B)
//! that the prototype pre-computes a lookup table of `g^c` for all
//! candidate values `c`, and that the table size bounds how much geometric
//! noise can be added before decryption fails (the failure probability
//! `P_fail`).
//!
//! Two mechanisms are provided:
//!
//! * [`DlogTable`] — the prototype's lookup table, keyed on a truncated
//!   64-bit *fingerprint* of each group element (16 bytes per entry instead
//!   of a full element plus exponent). Hits are verified against the full
//!   element by re-encoding the candidate through the generator's
//!   fixed-base table, so fingerprint collisions can never produce a wrong
//!   answer; build-time collisions fall back to an exact side map.
//! * [`baby_step_giant_step`] / [`baby_step_giant_step_signed`] — O(√R)
//!   searches over unsigned and signed ranges. A table built with
//!   [`DlogTable::with_search_range`] uses the signed search as a fallback
//!   when a lookup misses, widening the usable plaintext range far past
//!   what the table itself stores.

use crate::error::CryptoError;
use crate::group::{Group, GroupElem};
use dstress_math::U256;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Truncated fingerprint of a canonical group element: its low 64 bits.
///
/// For the 64-bit simulation group this is the *whole* element, so
/// collisions cannot occur at all; for the 256-bit group collisions are
/// birthday-rare and handled by verification plus the overflow map.
fn fingerprint(canonical: &U256) -> u64 {
    canonical.as_u64()
}

/// A precomputed table mapping `g^m ↦ m` for `m` in a small window.
///
/// The window is `[0, max]` for [`DlogTable::new`] and `[-max, max]` for
/// [`DlogTable::new_signed`]; the signed variant is what the message
/// transfer protocol uses, because the even geometric noise added to the
/// forwarded bit-sums can be negative (Appendix B sizes this window as
/// `N_l` entries).
#[derive(Clone, Debug)]
pub struct DlogTable {
    /// fingerprint(g^m) ↦ m for every window exponent (first writer wins).
    table: HashMap<u64, i64>,
    /// Exact-keyed entries whose fingerprint collided at build time.
    overflow: HashMap<U256, i64>,
    max: u64,
    signed: bool,
    /// Magnitude bound for the BSGS fallback search, when enabled.
    search_range: Option<u64>,
}

impl DlogTable {
    /// Builds a table covering exponents `0..=max`.
    pub fn new(group: &Group, max: u64) -> Self {
        Self::build(group, max, false)
    }

    /// Builds a table covering exponents `-max ..= max` (so `2·max + 1`
    /// entries).
    pub fn new_signed(group: &Group, max: u64) -> Self {
        Self::build(group, max, true)
    }

    fn build(group: &Group, max: u64, signed: bool) -> Self {
        let entries = if signed {
            2 * max as usize + 1
        } else {
            max as usize + 1
        };
        let mut this = DlogTable {
            table: HashMap::with_capacity(entries),
            overflow: HashMap::new(),
            max,
            signed,
            search_range: None,
        };
        let g = group.generator();
        let mut acc = group.identity();
        for m in 0..=max {
            this.insert(group.elem_to_int(acc), m as i64);
            acc = group.mul(acc, g);
        }
        if signed {
            let g_inv = group.inv(g).expect("generator is invertible");
            let mut acc = g_inv;
            for m in 1..=max {
                this.insert(group.elem_to_int(acc), -(m as i64));
                acc = group.mul(acc, g_inv);
            }
        }
        this
    }

    fn insert(&mut self, canonical: U256, m: i64) {
        let fp = fingerprint(&canonical);
        match self.table.entry(fp) {
            Entry::Vacant(slot) => {
                slot.insert(m);
            }
            Entry::Occupied(_) => {
                self.overflow.insert(canonical, m);
            }
        }
    }

    /// Enables a baby-step/giant-step fallback over `[-range, range]` for
    /// lookups that miss the table.
    pub fn with_search_range(mut self, range: u64) -> Self {
        self.search_range = Some(range);
        self
    }

    /// The largest exponent magnitude the table can recover.
    pub fn max_exponent(&self) -> u64 {
        self.max
    }

    /// Returns `true` if the table covers negative exponents.
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Number of entries in the table (the paper's `N_l`).
    pub fn entries(&self) -> usize {
        self.table.len() + self.overflow.len()
    }

    /// Looks up the discrete log of `elem` as a non-negative value.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::DlogOutOfRange`] when the exponent is not in
    /// the covered range — the event the paper calls a decryption failure —
    /// or when the recovered exponent is negative.
    pub fn lookup(&self, group: &Group, elem: GroupElem) -> Result<u64, CryptoError> {
        match self.lookup_signed(group, elem) {
            Ok(v) if v >= 0 => Ok(v as u64),
            _ => Err(CryptoError::DlogOutOfRange { searched: self.max }),
        }
    }

    /// Looks up the discrete log of `elem`, allowing negative exponents
    /// when the table was built with [`DlogTable::new_signed`].
    ///
    /// A fingerprint hit is confirmed by re-encoding the candidate exponent
    /// (`g^m`, one fixed-base exponentiation) and comparing full elements;
    /// an unconfirmed hit falls through to the exact overflow map and then
    /// to the BSGS fallback, if one was configured.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::DlogOutOfRange`] when the exponent is not in
    /// the covered range.
    pub fn lookup_signed(&self, group: &Group, elem: GroupElem) -> Result<i64, CryptoError> {
        let canonical = group.elem_to_int(elem);
        if let Some(&m) = self.table.get(&fingerprint(&canonical)) {
            if encode_signed(group, m) == elem {
                return Ok(m);
            }
        }
        if let Some(&m) = self.overflow.get(&canonical) {
            return Ok(m);
        }
        if let Some(range) = self.search_range {
            return baby_step_giant_step_signed(group, elem, range)
                .map_err(|_| CryptoError::DlogOutOfRange { searched: range });
        }
        Err(CryptoError::DlogOutOfRange { searched: self.max })
    }

    /// The inclusive window of exponents [`Self::lookup_signed`] can
    /// recover: the table window, widened by the BSGS fallback range when
    /// one was configured.
    ///
    /// This is the contract the static analyzer checks released values
    /// against: a release whose certified interval leaves this window can
    /// produce the paper's "decryption failure" even with zero noise.
    pub fn recovery_window(&self) -> (i64, i64) {
        let lo = if self.signed { -(self.max as i64) } else { 0 };
        let hi = self.max as i64;
        match self.search_range {
            // The BSGS fallback searches [-range, range] regardless of
            // the table's own signedness.
            Some(range) => ((-(range as i64)).min(lo), (range as i64).max(hi)),
            None => (lo, hi),
        }
    }

    /// Approximate memory footprint of the table in bytes, as used by the
    /// Appendix B sizing argument: 16 bytes per fingerprinted entry (a
    /// 64-bit fingerprint plus a 64-bit exponent) plus a full element key
    /// for each overflow entry.
    pub fn memory_bytes(&self, group: &Group) -> usize {
        self.table.len() * 16 + self.overflow.len() * (group.element_bytes() + 8)
    }
}

/// Encodes a signed exponent as a group element: `g^m` for `m ≥ 0`,
/// `g^(q − |m|)` (the inverse) otherwise.
fn encode_signed(group: &Group, m: i64) -> GroupElem {
    if m >= 0 {
        group.generator_pow(&U256::from_u64(m as u64))
    } else {
        let e = group.q().wrapping_sub(&U256::from_u64(m.unsigned_abs()));
        group.generator_pow(&e)
    }
}

/// Recovers `m` such that `g^m == elem` for `m ∈ [0, bound)` using
/// baby-step/giant-step in O(√bound) time and memory.
///
/// The baby-step table is fingerprint-keyed like [`DlogTable`]; candidate
/// matches are verified against the full element before being returned.
///
/// # Errors
///
/// Returns [`CryptoError::DlogOutOfRange`] if no such `m` exists in range.
pub fn baby_step_giant_step(
    group: &Group,
    elem: GroupElem,
    bound: u64,
) -> Result<u64, CryptoError> {
    if bound == 0 {
        return Err(CryptoError::DlogOutOfRange { searched: 0 });
    }
    let m = (bound as f64).sqrt().ceil() as u64;
    // Baby steps: g^j for j in [0, m), fingerprinted; exact keys catch the
    // (birthday-rare) build collisions.
    let mut baby: HashMap<u64, u64> = HashMap::with_capacity(m as usize);
    let mut baby_overflow: HashMap<U256, u64> = HashMap::new();
    let g = group.generator();
    let mut acc = group.identity();
    for j in 0..m {
        let canonical = group.elem_to_int(acc);
        match baby.entry(fingerprint(&canonical)) {
            Entry::Vacant(slot) => {
                slot.insert(j);
            }
            Entry::Occupied(_) => {
                baby_overflow.entry(canonical).or_insert(j);
            }
        }
        acc = group.mul(acc, g);
    }
    // Giant steps: elem * (g^{-m})^i.
    let g_m = group.pow(g, &U256::from_u64(m));
    let g_m_inv = group.inv(g_m)?;
    let mut gamma = elem;
    for i in 0..m {
        let canonical = group.elem_to_int(gamma);
        let mut candidates = [None, None];
        candidates[0] = baby.get(&fingerprint(&canonical)).copied();
        candidates[1] = baby_overflow.get(&canonical).copied();
        for j in candidates.into_iter().flatten() {
            let result = i * m + j;
            // Confirm through the generator table: a fingerprint collision
            // in the baby map must not fabricate an answer.
            if result < bound && group.generator_pow(&U256::from_u64(result)) == elem {
                return Ok(result);
            }
        }
        gamma = group.mul(gamma, g_m_inv);
    }
    Err(CryptoError::DlogOutOfRange { searched: bound })
}

/// Recovers `m` such that `g^m == elem` for `m ∈ [-max, max]`.
///
/// Shifts the problem into the unsigned range by searching
/// `elem · g^max ∈ [0, 2·max]` and subtracting the shift — the standard
/// trick for the signed windows the transfer protocol decrypts over.
///
/// # Errors
///
/// Returns [`CryptoError::DlogOutOfRange`] (with `searched == max`) if no
/// such `m` exists in the window.
pub fn baby_step_giant_step_signed(
    group: &Group,
    elem: GroupElem,
    max: u64,
) -> Result<i64, CryptoError> {
    let shift = group.generator_pow(&U256::from_u64(max));
    let shifted = group.mul(elem, shift);
    match baby_step_giant_step(group, shifted, 2 * max + 1) {
        Ok(v) => Ok(v as i64 - max as i64),
        Err(_) => Err(CryptoError::DlogOutOfRange { searched: max }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_window_matches_construction() {
        let group = Group::sim64();
        assert_eq!(DlogTable::new(&group, 50).recovery_window(), (0, 50));
        assert_eq!(
            DlogTable::new_signed(&group, 50).recovery_window(),
            (-50, 50)
        );
        assert_eq!(
            DlogTable::new(&group, 50)
                .with_search_range(80)
                .recovery_window(),
            (-80, 80)
        );
        assert_eq!(
            DlogTable::new_signed(&group, 100)
                .with_search_range(80)
                .recovery_window(),
            (-100, 100)
        );
    }

    #[test]
    fn table_recovers_all_entries() {
        let group = Group::sim64();
        let table = DlogTable::new(&group, 200);
        assert_eq!(table.entries(), 201);
        assert_eq!(table.max_exponent(), 200);
        for m in [0u64, 1, 2, 50, 199, 200] {
            assert_eq!(table.lookup(&group, group.encode_exponent(m)).unwrap(), m);
        }
    }

    #[test]
    fn table_rejects_out_of_range() {
        let group = Group::sim64();
        let table = DlogTable::new(&group, 10);
        let err = table.lookup(&group, group.encode_exponent(11)).unwrap_err();
        assert_eq!(err, CryptoError::DlogOutOfRange { searched: 10 });
    }

    #[test]
    fn signed_table_recovers_negative_exponents() {
        let group = Group::sim64();
        let table = DlogTable::new_signed(&group, 50);
        assert!(table.is_signed());
        assert_eq!(table.entries(), 101);
        for m in [-50i64, -7, -1, 0, 1, 13, 50] {
            let elem = if m >= 0 {
                group.encode_exponent(m as u64)
            } else {
                group
                    .inv(group.encode_exponent((-m) as u64))
                    .expect("group elements are invertible")
            };
            assert_eq!(table.lookup_signed(&group, elem).unwrap(), m);
        }
        // Unsigned lookup rejects negative exponents.
        let neg = group.inv(group.encode_exponent(3)).unwrap();
        assert!(table.lookup(&group, neg).is_err());
        // Out of range either way.
        assert!(table
            .lookup_signed(&group, group.encode_exponent(51))
            .is_err());
    }

    #[test]
    fn tables_work_on_the_prod_group() {
        let group = Group::prod256();
        let table = DlogTable::new_signed(&group, 40);
        for m in [-40i64, -3, 0, 17, 40] {
            let elem = if m >= 0 {
                group.encode_exponent(m as u64)
            } else {
                group.inv(group.encode_exponent((-m) as u64)).unwrap()
            };
            assert_eq!(table.lookup_signed(&group, elem).unwrap(), m);
        }
        assert!(table
            .lookup_signed(&group, group.encode_exponent(41))
            .is_err());
    }

    #[test]
    fn table_memory_estimate() {
        let group = Group::sim64();
        let table = DlogTable::new(&group, 100);
        assert_eq!(table.memory_bytes(&group), 101 * 16);
    }

    #[test]
    fn fingerprint_table_is_smaller_than_full_key_table() {
        // The fingerprint encoding stores 16 bytes per entry regardless of
        // the element width; the old full-key layout needed 40 on prod256.
        let group = Group::prod256();
        let table = DlogTable::new(&group, 100);
        assert_eq!(table.memory_bytes(&group), 101 * 16);
        assert!(table.memory_bytes(&group) < 101 * (group.element_bytes() + 8));
    }

    #[test]
    fn search_range_fallback_widens_the_window() {
        let group = Group::sim64();
        let table = DlogTable::new_signed(&group, 10).with_search_range(50_000);
        // Inside the table: served by the fingerprint map.
        assert_eq!(
            table
                .lookup_signed(&group, group.encode_exponent(7))
                .unwrap(),
            7
        );
        // Outside the table but inside the search range: BSGS fallback.
        assert_eq!(
            table
                .lookup_signed(&group, group.encode_exponent(40_000))
                .unwrap(),
            40_000
        );
        let neg = group.inv(group.encode_exponent(12_345)).unwrap();
        assert_eq!(table.lookup_signed(&group, neg).unwrap(), -12_345);
        // Outside both: the error reports the searched range.
        let err = table
            .lookup_signed(&group, group.encode_exponent(60_000))
            .unwrap_err();
        assert_eq!(err, CryptoError::DlogOutOfRange { searched: 50_000 });
    }

    #[test]
    fn bsgs_recovers_values() {
        let group = Group::sim64();
        for m in [0u64, 1, 17, 999, 12345, 65535] {
            let elem = group.encode_exponent(m);
            assert_eq!(baby_step_giant_step(&group, elem, 70_000).unwrap(), m);
        }
    }

    #[test]
    fn bsgs_rejects_out_of_range() {
        let group = Group::sim64();
        let elem = group.encode_exponent(1000);
        assert!(baby_step_giant_step(&group, elem, 100).is_err());
        assert!(baby_step_giant_step(&group, elem, 0).is_err());
    }

    #[test]
    fn signed_bsgs_covers_both_signs() {
        for group in [Group::sim64(), Group::prod256()] {
            for m in [-500i64, -33, -1, 0, 1, 212, 500] {
                let elem = if m >= 0 {
                    group.encode_exponent(m as u64)
                } else {
                    group.inv(group.encode_exponent((-m) as u64)).unwrap()
                };
                assert_eq!(baby_step_giant_step_signed(&group, elem, 500).unwrap(), m);
            }
        }
    }

    #[test]
    fn signed_bsgs_rejection_matches_the_table_error() {
        let group = Group::sim64();
        let elem = group.encode_exponent(600);
        let table = DlogTable::new_signed(&group, 500);
        let table_err = table.lookup_signed(&group, elem).unwrap_err();
        let bsgs_err = baby_step_giant_step_signed(&group, elem, 500).unwrap_err();
        assert_eq!(table_err, bsgs_err);
        assert_eq!(bsgs_err, CryptoError::DlogOutOfRange { searched: 500 });
        // Negative out-of-range rejects identically.
        let neg = group.inv(group.encode_exponent(501)).unwrap();
        assert_eq!(
            baby_step_giant_step_signed(&group, neg, 500).unwrap_err(),
            CryptoError::DlogOutOfRange { searched: 500 }
        );
    }

    #[test]
    fn bsgs_matches_table_on_prod_group() {
        let group = Group::prod256();
        let table = DlogTable::new(&group, 64);
        for m in [0u64, 3, 31, 64] {
            let elem = group.encode_exponent(m);
            assert_eq!(
                table.lookup(&group, elem).unwrap(),
                baby_step_giant_step(&group, elem, 65).unwrap()
            );
        }
    }
}
