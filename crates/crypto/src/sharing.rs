//! XOR secret sharing and bit decomposition.
//!
//! DStress keeps every piece of private state *secret shared* among the
//! `k + 1` members of a block: the value can be reconstructed by XORing all
//! shares together (the sharing used by the GMW protocol), and any `k`
//! shares reveal nothing.  The message transfer protocol additionally
//! splits each share into *sub-shares* (one per receiving-block member) and
//! decomposes sub-shares into individual bits, which are what actually get
//! encrypted (§3.5).
//!
//! This module provides those operations for [`BitMessage`]s — fixed-width
//! bit strings (the paper's prototype used 12-bit shares) — and for single
//! bits.

use crate::error::CryptoError;
use dstress_math::rng::DetRng;

/// A fixed-width message of up to 64 bits.
///
/// The width is carried alongside the value so that bit decomposition,
/// wire-size accounting and range checks all agree.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BitMessage {
    value: u64,
    bits: u32,
}

impl BitMessage {
    /// Creates a message, checking that `value` fits in `bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooWide`] if it does not.
    pub fn new(value: u64, bits: u32) -> Result<Self, CryptoError> {
        assert!((1..=64).contains(&bits), "width must be in [1, 64]");
        if bits < 64 && value >> bits != 0 {
            return Err(CryptoError::MessageTooWide { bits, value });
        }
        Ok(BitMessage { value, bits })
    }

    /// Creates the all-zero message of the given width (DStress's no-op
    /// message `⊥` is encoded as zero).
    pub fn zero(bits: u32) -> Self {
        BitMessage { value: 0, bits }
    }

    /// The message value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The message width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Decomposes the message into its bits, least-significant first.
    pub fn to_bits(&self) -> Vec<bool> {
        (0..self.bits).map(|i| (self.value >> i) & 1 == 1).collect()
    }

    /// Reassembles a message from bits (least-significant first).
    pub fn from_bits(bits: &[bool]) -> Self {
        assert!(!bits.is_empty() && bits.len() <= 64, "1..=64 bits required");
        let mut value = 0u64;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                value |= 1 << i;
            }
        }
        BitMessage {
            value,
            bits: bits.len() as u32,
        }
    }

    /// XORs two messages of the same width.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ (an internal protocol invariant).
    pub fn xor(&self, other: &BitMessage) -> BitMessage {
        assert_eq!(
            self.bits, other.bits,
            "cannot XOR messages of different widths"
        );
        BitMessage {
            value: self.value ^ other.value,
            bits: self.bits,
        }
    }
}

/// Splits `secret` into `n` XOR shares of the same width.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn split_xor(secret: BitMessage, n: usize, rng: &mut dyn DetRng) -> Vec<BitMessage> {
    assert!(n > 0, "need at least one share");
    let mask = if secret.bits == 64 {
        u64::MAX
    } else {
        (1u64 << secret.bits) - 1
    };
    let mut shares = Vec::with_capacity(n);
    let mut acc = 0u64;
    for _ in 0..n - 1 {
        let share = rng.next_u64() & mask;
        acc ^= share;
        shares.push(BitMessage {
            value: share,
            bits: secret.bits,
        });
    }
    shares.push(BitMessage {
        value: acc ^ secret.value,
        bits: secret.bits,
    });
    shares
}

/// Reconstructs a secret from XOR shares.
///
/// # Errors
///
/// Returns [`CryptoError::ShareCountMismatch`] if `shares` is empty.
pub fn xor_reconstruct(shares: &[BitMessage]) -> Result<BitMessage, CryptoError> {
    let first = shares.first().ok_or(CryptoError::ShareCountMismatch {
        expected: 1,
        actual: 0,
    })?;
    let mut acc = *first;
    for share in &shares[1..] {
        acc = acc.xor(share);
    }
    Ok(acc)
}

/// Splits a single bit into `n` XOR shares.
pub fn split_xor_bit(secret: bool, n: usize, rng: &mut dyn DetRng) -> Vec<bool> {
    assert!(n > 0, "need at least one share");
    let mut shares = Vec::with_capacity(n);
    let mut acc = false;
    for _ in 0..n - 1 {
        let b = rng.next_bool();
        acc ^= b;
        shares.push(b);
    }
    shares.push(acc ^ secret);
    shares
}

/// Reconstructs a single bit from XOR shares.
pub fn xor_reconstruct_bit(shares: &[bool]) -> bool {
    shares.iter().fold(false, |acc, &b| acc ^ b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_math::rng::Xoshiro256;
    use proptest::prelude::*;

    #[test]
    fn message_width_check() {
        assert!(BitMessage::new(4095, 12).is_ok());
        assert!(matches!(
            BitMessage::new(4096, 12).unwrap_err(),
            CryptoError::MessageTooWide {
                bits: 12,
                value: 4096
            }
        ));
        assert!(BitMessage::new(u64::MAX, 64).is_ok());
    }

    #[test]
    fn zero_message() {
        let z = BitMessage::zero(12);
        assert_eq!(z.value(), 0);
        assert_eq!(z.bits(), 12);
        assert!(z.to_bits().iter().all(|&b| !b));
    }

    #[test]
    fn bit_roundtrip() {
        let m = BitMessage::new(0b1011_0101_0011, 12).unwrap();
        let bits = m.to_bits();
        assert_eq!(bits.len(), 12);
        assert!(bits[0] && bits[1] && !bits[2]);
        assert_eq!(BitMessage::from_bits(&bits), m);
    }

    #[test]
    fn xor_of_messages() {
        let a = BitMessage::new(0b1100, 4).unwrap();
        let b = BitMessage::new(0b1010, 4).unwrap();
        assert_eq!(a.xor(&b).value(), 0b0110);
        assert_eq!(a.xor(&a).value(), 0);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn xor_width_mismatch_panics() {
        let a = BitMessage::new(1, 4).unwrap();
        let b = BitMessage::new(1, 8).unwrap();
        let _ = a.xor(&b);
    }

    #[test]
    fn split_and_reconstruct() {
        let mut rng = Xoshiro256::new(1);
        let secret = BitMessage::new(0xABC, 12).unwrap();
        for n in [1usize, 2, 5, 20] {
            let shares = split_xor(secret, n, &mut rng);
            assert_eq!(shares.len(), n);
            assert_eq!(xor_reconstruct(&shares).unwrap(), secret);
            assert!(shares.iter().all(|s| s.bits() == 12));
        }
    }

    #[test]
    fn shares_hide_the_secret() {
        // Any k of k+1 shares are uniformly distributed: check that the
        // first share alone takes many values across splittings.
        let mut rng = Xoshiro256::new(2);
        let secret = BitMessage::new(0x7FF, 12).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(split_xor(secret, 3, &mut rng)[0].value());
        }
        assert!(
            seen.len() > 100,
            "shares should look random, got {}",
            seen.len()
        );
    }

    #[test]
    fn reconstruct_empty_fails() {
        assert!(xor_reconstruct(&[]).is_err());
    }

    #[test]
    fn bit_share_roundtrip() {
        let mut rng = Xoshiro256::new(3);
        for n in [1usize, 2, 7, 21] {
            for secret in [false, true] {
                let shares = split_xor_bit(secret, n, &mut rng);
                assert_eq!(shares.len(), n);
                assert_eq!(xor_reconstruct_bit(&shares), secret);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_split_reconstruct(value in 0u64..4096, n in 1usize..24, seed in any::<u64>()) {
            let mut rng = Xoshiro256::new(seed);
            let secret = BitMessage::new(value, 12).unwrap();
            let shares = split_xor(secret, n, &mut rng);
            prop_assert_eq!(xor_reconstruct(&shares).unwrap(), secret);
        }

        #[test]
        fn prop_bits_roundtrip(value in any::<u64>(), bits in 1u32..=64) {
            let masked = if bits == 64 { value } else { value & ((1 << bits) - 1) };
            let m = BitMessage::new(masked, bits).unwrap();
            prop_assert_eq!(BitMessage::from_bits(&m.to_bits()), m);
        }

        #[test]
        fn prop_subshare_two_levels(value in 0u64..4096, seed in any::<u64>()) {
            // Shares of shares still reconstruct: the associativity/
            // commutativity property the transfer protocol relies on.
            let mut rng = Xoshiro256::new(seed);
            let secret = BitMessage::new(value, 12).unwrap();
            let shares = split_xor(secret, 4, &mut rng);
            let all_subshares: Vec<BitMessage> = shares
                .iter()
                .flat_map(|s| split_xor(*s, 3, &mut rng))
                .collect();
            prop_assert_eq!(xor_reconstruct(&all_subshares).unwrap(), secret);
        }
    }
}
