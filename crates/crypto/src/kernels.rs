//! Fast exponentiation kernels for the transfer hot path.
//!
//! The transfer protocol's cost is dominated by exponentiations whose bases
//! are *fixed* across a run — the group generator and the long-lived
//! (re-randomised) block-certificate keys — plus exponential-ElGamal
//! decryptions whose per-receiver ciphertexts all share one ephemeral
//! component. Three kernels exploit that structure:
//!
//! * [`FixedBasePow`] — a windowed fixed-base table: one-off precomputation
//!   of `base^(d·2^(w·i))` for every window `i` and digit `d`, after which a
//!   full exponentiation is one table lookup and multiply per nonzero digit,
//!   with **zero** squarings. Window width `w` trades memory
//!   (`(2^w − 1)·⌈|q|/w⌉` elements) against speed (`⌈|q|/w⌉` multiplies per
//!   exponentiation).
//! * [`multi_pow`] — simultaneous multi-exponentiation `∏ bᵢ^eᵢ`: Straus's
//!   interleaved method for small batches (shared squaring chain), switching
//!   to Pippenger's bucket method for large ones.
//! * [`TransferKernels`] / [`RerandFactors`] — protocol-level bundles: one
//!   [`FixedBasePow`] per certificate bit-key, and precomputed
//!   re-randomisation factor pairs `(g^r, h^r)` for ciphertext refresh.
//!
//! Every kernel is pinned bit-identical to the square-and-multiply path by
//! proptests (exponents in the order-`q` subgroup wrap mod `q`, exactly as
//! [`Group::pow`] documents), so swapping a kernel into the protocol cannot
//! change any released value.

use crate::elgamal::{Ciphertext, PublicKey};
use crate::group::{Group, GroupElem};
use dstress_math::field::{FpCtx, FpElem};
use dstress_math::rng::DetRng;
use dstress_math::u256::LIMBS;
use dstress_math::window::radix_digits;
use dstress_math::U256;
use std::sync::Arc;

/// Widest supported fixed-base window (2^12 − 1 entries per window).
pub const MAX_FIXED_BASE_WINDOW: u32 = 12;

/// A windowed fixed-base exponentiation table for one group element.
///
/// For window width `w`, `windows[i][d − 1]` holds `base^(d · 2^(w·i))`;
/// an exponentiation reduces the exponent mod `q`, splits it into base-`2^w`
/// digits and multiplies one table entry per nonzero digit.
#[derive(Clone, Debug)]
pub struct FixedBasePow {
    window_bits: u32,
    q: U256,
    ctx: Arc<FpCtx>,
    windows: Vec<Vec<FpElem>>,
}

impl FixedBasePow {
    /// Builds the table for `base` (assumed to lie in the order-`q`
    /// subgroup, as every protocol element does).
    ///
    /// # Panics
    ///
    /// Panics if `window_bits` is zero or exceeds
    /// [`MAX_FIXED_BASE_WINDOW`].
    pub fn new(group: &Group, base: GroupElem, window_bits: u32) -> Self {
        Self::from_parts(group.p_ctx_arc(), group.q(), base.0, window_bits)
    }

    /// Internal constructor shared with [`Group`]'s lazily built generator
    /// table (which cannot pass a `&Group` while constructing itself).
    pub(crate) fn from_parts(ctx: Arc<FpCtx>, q: U256, base: FpElem, window_bits: u32) -> Self {
        assert!(
            (1..=MAX_FIXED_BASE_WINDOW).contains(&window_bits),
            "window width {window_bits} out of range 1..={MAX_FIXED_BASE_WINDOW}"
        );
        let num_windows = q.bits().max(1).div_ceil(window_bits) as usize;
        let entries_per_window = (1usize << window_bits) - 1;
        let mut windows = Vec::with_capacity(num_windows);
        let mut window_base = base;
        for i in 0..num_windows {
            let mut entries = Vec::with_capacity(entries_per_window);
            let mut acc = window_base;
            for d in 0..entries_per_window {
                entries.push(acc);
                if d + 1 < entries_per_window {
                    acc = ctx.mul(acc, window_base);
                }
            }
            windows.push(entries);
            if i + 1 < num_windows {
                for _ in 0..window_bits {
                    window_base = ctx.mul(window_base, window_base);
                }
            }
        }
        FixedBasePow {
            window_bits,
            q,
            ctx,
            windows,
        }
    }

    /// The window width in bits.
    pub fn window_bits(&self) -> u32 {
        self.window_bits
    }

    /// Computes `base^e`. The exponent wraps mod `q`, matching
    /// [`Group::pow`] on order-`q` bases bit for bit.
    ///
    /// Digits are extracted from the limbs on the fly (the same base-`2^w`
    /// split as [`radix_digits`], which the construction uses and the
    /// proptests pin) so the hot path performs no allocation.
    pub fn pow(&self, e: &U256) -> GroupElem {
        let e = e.rem(&self.q);
        let limbs = e.limbs();
        let w = self.window_bits;
        let mask = (1u64 << w) - 1;
        let mut acc = self.ctx.one();
        for (i, window) in self.windows.iter().enumerate() {
            let bit = i as u32 * w;
            let limb = (bit / 64) as usize;
            if limb >= LIMBS {
                break;
            }
            let shift = bit % 64;
            let mut d = limbs[limb] >> shift;
            if shift + w > 64 && limb + 1 < LIMBS {
                d |= limbs[limb + 1] << (64 - shift);
            }
            d &= mask;
            if d != 0 {
                acc = self.ctx.mul(acc, window[d as usize - 1]);
            }
        }
        GroupElem(acc)
    }

    /// Approximate memory footprint: one 32-byte element per table entry.
    pub fn memory_bytes(&self) -> usize {
        self.windows.iter().map(Vec::len).sum::<usize>() * 32
    }
}

/// Computes `∏ bases[i]^exponents[i]` with a single shared squaring chain.
///
/// Uses Straus's interleaved method (per-base radix-16 tables) for fewer
/// than 32 bases and Pippenger's bucket method beyond that. Exponents are
/// **not** reduced, so the result equals the naive product of
/// [`Group::pow`] calls for arbitrary bases and exponents.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn multi_pow(group: &Group, bases: &[GroupElem], exponents: &[U256]) -> GroupElem {
    assert_eq!(
        bases.len(),
        exponents.len(),
        "multi_pow needs one exponent per base"
    );
    if bases.is_empty() {
        return group.identity();
    }
    if bases.len() < 32 {
        straus(group, bases, exponents)
    } else {
        pippenger(group, bases, exponents)
    }
}

/// Straus interleaved multi-exponentiation with 4-bit windows.
fn straus(group: &Group, bases: &[GroupElem], exponents: &[U256]) -> GroupElem {
    const W: u32 = 4;
    let ctx = group.p_ctx();
    let tables: Vec<Vec<FpElem>> = bases
        .iter()
        .map(|b| {
            let mut entries = Vec::with_capacity(15);
            let mut acc = b.0;
            for d in 0..15 {
                entries.push(acc);
                if d + 1 < 15 {
                    acc = ctx.mul(acc, b.0);
                }
            }
            entries
        })
        .collect();
    let digit_rows: Vec<Vec<u64>> = exponents.iter().map(|e| radix_digits(e, W)).collect();
    let top = match highest_nonzero_digit(&digit_rows) {
        Some(top) => top,
        None => return group.identity(),
    };
    let mut acc = ctx.one();
    for i in (0..=top).rev() {
        if i != top {
            for _ in 0..W {
                acc = ctx.mul(acc, acc);
            }
        }
        for (row, table) in digit_rows.iter().zip(&tables) {
            let d = row[i];
            if d != 0 {
                acc = ctx.mul(acc, table[d as usize - 1]);
            }
        }
    }
    GroupElem(acc)
}

/// Pippenger bucket multi-exponentiation; window width grows with the
/// batch size.
fn pippenger(group: &Group, bases: &[GroupElem], exponents: &[U256]) -> GroupElem {
    let w: u32 = if bases.len() < 256 { 6 } else { 8 };
    let ctx = group.p_ctx();
    let digit_rows: Vec<Vec<u64>> = exponents.iter().map(|e| radix_digits(e, w)).collect();
    let top = match highest_nonzero_digit(&digit_rows) {
        Some(top) => top,
        None => return group.identity(),
    };
    let buckets_len = (1usize << w) - 1;
    let mut acc = ctx.one();
    for i in (0..=top).rev() {
        if i != top {
            for _ in 0..w {
                acc = ctx.mul(acc, acc);
            }
        }
        let mut buckets: Vec<Option<FpElem>> = vec![None; buckets_len];
        for (row, base) in digit_rows.iter().zip(bases) {
            let d = row[i] as usize;
            if d != 0 {
                buckets[d - 1] = Some(match buckets[d - 1] {
                    Some(cur) => ctx.mul(cur, base.0),
                    None => base.0,
                });
            }
        }
        // Suffix-sum the buckets: ∑ d·bucket[d] via two multiplies per
        // occupied bucket.
        let mut running: Option<FpElem> = None;
        let mut sum: Option<FpElem> = None;
        for bucket in buckets.iter().rev() {
            if let Some(b) = bucket {
                running = Some(match running {
                    Some(r) => ctx.mul(r, *b),
                    None => *b,
                });
            }
            if let Some(r) = running {
                sum = Some(match sum {
                    Some(s) => ctx.mul(s, r),
                    None => r,
                });
            }
        }
        if let Some(s) = sum {
            acc = ctx.mul(acc, s);
        }
    }
    GroupElem(acc)
}

/// Index of the highest digit position that is nonzero in any row.
fn highest_nonzero_digit(rows: &[Vec<u64>]) -> Option<usize> {
    rows.iter()
        .filter_map(|row| row.iter().rposition(|&d| d != 0))
        .max()
}

/// Fixed-base tables for every bit-key of one block certificate, held for
/// the lifetime of a run and reused across all transfers to that block.
#[derive(Clone, Debug)]
pub struct TransferKernels {
    key_tables: Vec<Vec<FixedBasePow>>,
}

impl TransferKernels {
    /// Builds one table per certificate key. `keys[y][l]` is the
    /// (re-randomised) public key of receiver member `y` for bit `l`,
    /// exactly as stored in a block certificate.
    pub fn for_certificate(group: &Group, keys: &[Vec<PublicKey>], window_bits: u32) -> Self {
        let key_tables = keys
            .iter()
            .map(|row| {
                row.iter()
                    .map(|pk| FixedBasePow::new(group, pk.0, window_bits))
                    .collect()
            })
            .collect();
        TransferKernels { key_tables }
    }

    /// Whether the tables cover `rows` receiver members of `bits` keys each.
    pub fn matches_shape(&self, rows: usize, bits: usize) -> bool {
        self.key_tables.len() == rows && self.key_tables.iter().all(|r| r.len() == bits)
    }

    /// `keys[recipient][bit]^e` through the precomputed table.
    pub fn key_pow(&self, recipient: usize, bit: usize, e: &U256) -> GroupElem {
        self.key_tables[recipient][bit].pow(e)
    }

    /// Total table memory across all keys.
    pub fn memory_bytes(&self) -> usize {
        self.key_tables
            .iter()
            .flatten()
            .map(FixedBasePow::memory_bytes)
            .sum()
    }
}

/// Precomputed re-randomisation factors for ciphertext refresh under one
/// public key: pairs `(g^r, h^r)` for fresh exponents `r`.
///
/// Multiplying a ciphertext `(c1, c2)` by a pair gives a *fresh-looking*
/// encryption of the same plaintext without any online exponentiation —
/// two multiplies instead of two exponentiations.
#[derive(Clone, Debug)]
pub struct RerandFactors {
    factors: Vec<(GroupElem, GroupElem)>,
}

impl RerandFactors {
    /// Draws `count` exponents and precomputes their factor pairs using
    /// the generator table and one variable-base pow per factor.
    pub fn new(group: &Group, pk: &PublicKey, count: usize, rng: &mut dyn DetRng) -> Self {
        let factors = (0..count)
            .map(|_| {
                let r = group.random_nonzero_exponent(rng);
                (group.generator_pow(&r), group.pow(pk.0, &r))
            })
            .collect();
        RerandFactors { factors }
    }

    /// Number of precomputed factors.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// Refreshes `ct` with factor `index` (wraps around the pool).
    pub fn refresh(&self, group: &Group, index: usize, ct: &Ciphertext) -> Ciphertext {
        let (g_r, h_r) = self.factors[index % self.factors.len()];
        Ciphertext {
            c1: group.mul(ct.c1, g_r),
            c2: group.mul(ct.c2, h_r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elgamal::{decrypt, encrypt_exponent, KeyPair};
    use crate::group::GroupKind;
    use dstress_math::rng::Xoshiro256;
    use proptest::prelude::*;

    fn groups() -> [Group; 2] {
        [Group::sim64(), Group::prod256()]
    }

    #[test]
    fn fixed_base_matches_square_and_multiply() {
        for group in groups() {
            let mut rng = Xoshiro256::new(0xFB);
            for w in [1u32, 4, 6, 8] {
                let base = group.generator_pow(&group.random_nonzero_exponent(&mut rng));
                let table = FixedBasePow::new(&group, base, w);
                for _ in 0..8 {
                    let e = group.random_exponent(&mut rng);
                    assert_eq!(
                        table.pow(&e),
                        group.pow(base, &e),
                        "{:?} w={w}",
                        group.kind()
                    );
                }
                // Edge exponents.
                assert_eq!(table.pow(&U256::ZERO), group.identity());
                assert_eq!(table.pow(&U256::ONE), base);
                assert_eq!(table.pow(&group.q()), group.identity());
            }
        }
    }

    #[test]
    fn fixed_base_wraps_exponents_mod_q() {
        let group = Group::sim64();
        let table = FixedBasePow::new(&group, group.generator(), 8);
        let e = U256::from_u64(12345);
        let wrapped = group.add_exponents(&e, &group.q()); // == e mod q
        assert_eq!(table.pow(&e), table.pow(&wrapped));
        let big = group.q().wrapping_add(&e);
        assert_eq!(table.pow(&big), group.generator_pow(&e));
    }

    #[test]
    fn fixed_base_memory_scales_with_window() {
        let group = Group::prod256();
        let w4 = FixedBasePow::new(&group, group.generator(), 4);
        let w8 = FixedBasePow::new(&group, group.generator(), 8);
        assert_eq!(w4.memory_bytes(), 64 * 15 * 32); // ⌈256/4⌉ windows × 15 entries
        assert_eq!(w8.memory_bytes(), 32 * 255 * 32);
        assert!(w8.memory_bytes() > w4.memory_bytes());
        assert_eq!(w4.window_bits(), 4);
    }

    #[test]
    fn multi_pow_matches_naive_product() {
        for group in groups() {
            let mut rng = Xoshiro256::new(0x3117);
            for n in [0usize, 1, 2, 7, 31, 40, 64] {
                let bases: Vec<GroupElem> = (0..n)
                    .map(|_| group.generator_pow(&group.random_nonzero_exponent(&mut rng)))
                    .collect();
                let exps: Vec<U256> = (0..n).map(|_| group.random_exponent(&mut rng)).collect();
                let fast = multi_pow(&group, &bases, &exps);
                let naive = bases
                    .iter()
                    .zip(&exps)
                    .fold(group.identity(), |acc, (b, e)| {
                        group.mul(acc, group.pow(*b, e))
                    });
                assert_eq!(fast, naive, "{:?} n={n}", group.kind());
            }
        }
    }

    #[test]
    fn multi_pow_handles_zero_exponents() {
        let group = Group::sim64();
        let mut rng = Xoshiro256::new(4);
        let bases: Vec<GroupElem> = (0..5)
            .map(|_| group.generator_pow(&group.random_nonzero_exponent(&mut rng)))
            .collect();
        let exps = vec![U256::ZERO; 5];
        assert_eq!(multi_pow(&group, &bases, &exps), group.identity());
        // Mixed zero / nonzero.
        let mut exps = vec![U256::ZERO; 5];
        exps[2] = U256::from_u64(9);
        assert_eq!(
            multi_pow(&group, &bases, &exps),
            group.pow(bases[2], &U256::from_u64(9))
        );
    }

    #[test]
    fn transfer_kernels_cover_certificate_shape() {
        let group = Group::sim64();
        let mut rng = Xoshiro256::new(0xCE27);
        let keys: Vec<Vec<PublicKey>> = (0..3)
            .map(|_| {
                (0..4)
                    .map(|_| KeyPair::generate(&group, &mut rng).public)
                    .collect()
            })
            .collect();
        let kernels = TransferKernels::for_certificate(&group, &keys, 6);
        assert!(kernels.matches_shape(3, 4));
        assert!(!kernels.matches_shape(4, 3));
        assert!(kernels.memory_bytes() > 0);
        for (y, row) in keys.iter().enumerate() {
            for (l, pk) in row.iter().enumerate() {
                let e = group.random_exponent(&mut rng);
                assert_eq!(kernels.key_pow(y, l, &e), group.pow(pk.0, &e));
            }
        }
    }

    #[test]
    fn rerand_factors_refresh_preserves_plaintext() {
        for group in groups() {
            let mut rng = Xoshiro256::new(0x5EAF);
            let kp = KeyPair::generate(&group, &mut rng);
            let pool = RerandFactors::new(&group, &kp.public, 4, &mut rng);
            assert_eq!(pool.len(), 4);
            assert!(!pool.is_empty());
            let ct = encrypt_exponent(&group, &kp.public, 42, &mut rng);
            for i in 0..6 {
                let fresh = pool.refresh(&group, i, &ct);
                assert_ne!(fresh, ct, "refresh must change the ciphertext");
                assert_eq!(
                    decrypt(&group, &kp.secret, &fresh).unwrap(),
                    decrypt(&group, &kp.secret, &ct).unwrap(),
                    "{:?}",
                    group.kind()
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_fixed_base_equals_naive(seed in any::<u64>(), w in 1u32..=10) {
            for kind in [GroupKind::Sim64, GroupKind::Prod256] {
                let group = Group::new(kind);
                let mut rng = Xoshiro256::new(seed);
                let base = group.generator_pow(&group.random_nonzero_exponent(&mut rng));
                let table = FixedBasePow::new(&group, base, w);
                let e = group.random_exponent(&mut rng);
                prop_assert_eq!(table.pow(&e), group.pow(base, &e));
            }
        }

        #[test]
        fn prop_multi_pow_equals_naive(seed in any::<u64>(), n in 1usize..48) {
            for kind in [GroupKind::Sim64, GroupKind::Prod256] {
                let group = Group::new(kind);
                let mut rng = Xoshiro256::new(seed);
                let bases: Vec<GroupElem> = (0..n)
                    .map(|_| group.generator_pow(&group.random_nonzero_exponent(&mut rng)))
                    .collect();
                let exps: Vec<U256> = (0..n).map(|_| group.random_exponent(&mut rng)).collect();
                let naive = bases.iter().zip(&exps).fold(group.identity(), |acc, (b, e)| {
                    group.mul(acc, group.pow(*b, e))
                });
                prop_assert_eq!(multi_pow(&group, &bases, &exps), naive);
            }
        }
    }
}
