//! Error type for the cryptographic layer.

use core::fmt;
use dstress_math::MathError;

/// Errors produced by the cryptographic primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// An underlying arithmetic error (invalid modulus, out-of-range value, ...).
    Math(MathError),
    /// A discrete logarithm could not be recovered because the exponent was
    /// outside the lookup table / search range.
    ///
    /// The paper calls this the *failure probability* `P_fail` of the system
    /// (Appendix B): the geometric noise occasionally pushes the encrypted
    /// sum outside the recoverable window.
    DlogOutOfRange {
        /// The maximum absolute exponent that was searched.
        searched: u64,
    },
    /// A ciphertext was malformed (e.g. a component was zero).
    MalformedCiphertext,
    /// Secret reconstruction was attempted with an inconsistent number of
    /// shares.
    ShareCountMismatch {
        /// Number of shares expected.
        expected: usize,
        /// Number of shares provided.
        actual: usize,
    },
    /// A message did not fit in the configured bit width.
    MessageTooWide {
        /// Bit width of the share representation.
        bits: u32,
        /// The offending value.
        value: u64,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::Math(e) => write!(f, "arithmetic error: {e}"),
            CryptoError::DlogOutOfRange { searched } => {
                write!(f, "discrete log not found within ±{searched}")
            }
            CryptoError::MalformedCiphertext => write!(f, "malformed ciphertext"),
            CryptoError::ShareCountMismatch { expected, actual } => {
                write!(f, "expected {expected} shares, got {actual}")
            }
            CryptoError::MessageTooWide { bits, value } => {
                write!(f, "message {value} does not fit in {bits} bits")
            }
        }
    }
}

impl std::error::Error for CryptoError {}

impl From<MathError> for CryptoError {
    fn from(e: MathError) -> Self {
        CryptoError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CryptoError::MalformedCiphertext
            .to_string()
            .contains("malformed"));
        assert!(CryptoError::DlogOutOfRange { searched: 7 }
            .to_string()
            .contains('7'));
        assert!(CryptoError::ShareCountMismatch {
            expected: 3,
            actual: 2
        }
        .to_string()
        .contains('3'));
        assert!(CryptoError::MessageTooWide {
            bits: 12,
            value: 99999
        }
        .to_string()
        .contains("12"));
        let wrapped: CryptoError = MathError::InvalidModulus.into();
        assert!(wrapped.to_string().contains("arithmetic"));
    }
}
