//! Arithmetic substrate for the DStress reproduction.
//!
//! The original DStress prototype relied on OpenSSL for its public-key
//! operations (ElGamal over the NIST P-384 curve).  This crate provides the
//! arithmetic that our from-scratch cryptography is built on:
//!
//! * [`U256`] — a fixed-width 256-bit unsigned integer with constant-size
//!   limb arithmetic (no heap allocation).
//! * [`FpCtx`] — Montgomery-form modular arithmetic over an odd modulus,
//!   used both for the prime field `F_p` of the ElGamal group and for the
//!   exponent ring `Z_q`.
//! * [`prime`] — Miller–Rabin primality testing and safe-prime search,
//!   used to generate the group parameters embedded in `dstress-crypto`.
//! * [`rng`] — a small deterministic pseudo-random generator family
//!   (SplitMix64 / Xoshiro256**) so that every simulation in the
//!   reproduction is reproducible from a seed.
//! * [`fixed`] — signed fixed-point numbers used by the financial models
//!   and by the Boolean-circuit encodings of those models.
//!
//! Nothing in this crate is intended to be side-channel free; the goal of
//! the reproduction is functional and *cost-structure* fidelity, not
//! deployment-grade cryptography (see `DESIGN.md`).
//!
//! ## Example
//!
//! ```
//! use dstress_math::{Fixed, U256};
//!
//! // 256-bit limb arithmetic.
//! let a = U256::from_u64(7);
//! let b = U256::from_u64(5);
//! assert_eq!(a.wrapping_add(&b), U256::from_u64(12));
//!
//! // Signed fixed point, as used by the financial circuits.
//! let x = Fixed::from_f64(3.5);
//! let y = Fixed::from_f64(1.25);
//! assert_eq!((x + y).to_f64(), 4.75);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod field;
pub mod fixed;
pub mod prime;
pub mod rng;
pub mod u256;
pub mod window;

pub use error::MathError;
pub use field::{FpCtx, FpElem};
pub use fixed::Fixed;
pub use rng::{DetRng, SplitMix64};
pub use u256::U256;
