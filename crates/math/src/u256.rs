//! Fixed-width 256-bit unsigned integers.
//!
//! [`U256`] is stored as four little-endian 64-bit limbs and never
//! allocates.  It provides exactly the operations the rest of the
//! reproduction needs: carry-propagating addition and subtraction,
//! widening multiplication, comparisons, shifts, bit access and
//! hex/decimal conversion.  Modular arithmetic lives in [`crate::field`].

// Limb arithmetic reads clearest with explicit indices; iterator forms of
// the carry/borrow loops obscure the lockstep access to both operands.
#![allow(clippy::needless_range_loop)]

use crate::error::MathError;
use core::cmp::Ordering;
use core::fmt;

/// Number of 64-bit limbs in a [`U256`].
pub const LIMBS: usize = 4;

/// A 256-bit unsigned integer stored as little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256 {
    limbs: [u64; LIMBS],
}

impl U256 {
    /// The value zero.
    pub const ZERO: U256 = U256 { limbs: [0; LIMBS] };
    /// The value one.
    pub const ONE: U256 = U256 {
        limbs: [1, 0, 0, 0],
    };
    /// The maximum representable value (2^256 - 1).
    pub const MAX: U256 = U256 {
        limbs: [u64::MAX; LIMBS],
    };

    /// Creates a value from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; LIMBS]) -> Self {
        U256 { limbs }
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> [u64; LIMBS] {
        self.limbs
    }

    /// Creates a value from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256 {
            limbs: [v, 0, 0, 0],
        }
    }

    /// Creates a value from a `u128`.
    pub const fn from_u128(v: u128) -> Self {
        U256 {
            limbs: [v as u64, (v >> 64) as u64, 0, 0],
        }
    }

    /// Returns the low 64 bits.
    pub const fn as_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// Returns the low 128 bits.
    pub const fn as_u128(&self) -> u128 {
        (self.limbs[0] as u128) | ((self.limbs[1] as u128) << 64)
    }

    /// Returns `true` if the value fits in 64 bits.
    pub const fn fits_u64(&self) -> bool {
        self.limbs[1] == 0 && self.limbs[2] == 0 && self.limbs[3] == 0
    }

    /// Returns `true` if the value fits in 128 bits.
    pub const fn fits_u128(&self) -> bool {
        self.limbs[2] == 0 && self.limbs[3] == 0
    }

    /// Returns `true` if the value is zero.
    pub const fn is_zero(&self) -> bool {
        self.limbs[0] == 0 && self.limbs[1] == 0 && self.limbs[2] == 0 && self.limbs[3] == 0
    }

    /// Returns `true` if the value is odd.
    pub const fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Returns the number of significant bits (0 for zero).
    pub fn bits(&self) -> u32 {
        for i in (0..LIMBS).rev() {
            if self.limbs[i] != 0 {
                return (i as u32) * 64 + (64 - self.limbs[i].leading_zeros());
            }
        }
        0
    }

    /// Returns bit `i` (little-endian numbering).
    ///
    /// Bits at positions >= 256 are reported as zero.
    pub fn bit(&self, i: u32) -> bool {
        if i >= 256 {
            return false;
        }
        (self.limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Adds `rhs`, returning the wrapped sum and the carry-out.
    pub fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; LIMBS];
        let mut carry = 0u64;
        for i in 0..LIMBS {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (U256 { limbs: out }, carry != 0)
    }

    /// Adds `rhs`, wrapping on overflow.
    pub fn wrapping_add(&self, rhs: &U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Adds `rhs`, returning `None` on overflow.
    pub fn checked_add(&self, rhs: &U256) -> Option<U256> {
        let (v, overflow) = self.overflowing_add(rhs);
        if overflow {
            None
        } else {
            Some(v)
        }
    }

    /// Subtracts `rhs`, returning the wrapped difference and the borrow-out.
    pub fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; LIMBS];
        let mut borrow = 0u64;
        for i in 0..LIMBS {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (U256 { limbs: out }, borrow != 0)
    }

    /// Subtracts `rhs`, wrapping on underflow.
    pub fn wrapping_sub(&self, rhs: &U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Subtracts `rhs`, returning `None` on underflow.
    pub fn checked_sub(&self, rhs: &U256) -> Option<U256> {
        let (v, borrow) = self.overflowing_sub(rhs);
        if borrow {
            None
        } else {
            Some(v)
        }
    }

    /// Full widening multiplication: returns (low, high) 256-bit halves of
    /// the 512-bit product.
    pub fn mul_wide(&self, rhs: &U256) -> (U256, U256) {
        let mut out = [0u64; 2 * LIMBS];
        for i in 0..LIMBS {
            let mut carry = 0u128;
            for j in 0..LIMBS {
                let acc =
                    out[i + j] as u128 + (self.limbs[i] as u128) * (rhs.limbs[j] as u128) + carry;
                out[i + j] = acc as u64;
                carry = acc >> 64;
            }
            out[i + LIMBS] = carry as u64;
        }
        (
            U256 {
                limbs: [out[0], out[1], out[2], out[3]],
            },
            U256 {
                limbs: [out[4], out[5], out[6], out[7]],
            },
        )
    }

    /// Multiplies by `rhs`, returning `None` if the product does not fit.
    pub fn checked_mul(&self, rhs: &U256) -> Option<U256> {
        let (lo, hi) = self.mul_wide(rhs);
        if hi.is_zero() {
            Some(lo)
        } else {
            None
        }
    }

    /// Multiplies by `rhs`, wrapping modulo 2^256.
    pub fn wrapping_mul(&self, rhs: &U256) -> U256 {
        self.mul_wide(rhs).0
    }

    /// Shifts left by `n` bits (n < 256), shifting in zeros.
    pub fn shl(&self, n: u32) -> U256 {
        if n == 0 {
            return *self;
        }
        if n >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; LIMBS];
        for i in (limb_shift..LIMBS).rev() {
            let mut v = self.limbs[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                v |= self.limbs[i - limb_shift - 1] >> (64 - bit_shift);
            }
            out[i] = v;
        }
        U256 { limbs: out }
    }

    /// Shifts right by `n` bits (n < 256), shifting in zeros.
    pub fn shr(&self, n: u32) -> U256 {
        if n == 0 {
            return *self;
        }
        if n >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; LIMBS];
        for i in 0..(LIMBS - limb_shift) {
            let mut v = self.limbs[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < LIMBS {
                v |= self.limbs[i + limb_shift + 1] << (64 - bit_shift);
            }
            out[i] = v;
        }
        U256 { limbs: out }
    }

    /// Bitwise XOR.
    pub fn bitxor(&self, rhs: &U256) -> U256 {
        let mut out = [0u64; LIMBS];
        for i in 0..LIMBS {
            out[i] = self.limbs[i] ^ rhs.limbs[i];
        }
        U256 { limbs: out }
    }

    /// Bitwise AND.
    pub fn bitand(&self, rhs: &U256) -> U256 {
        let mut out = [0u64; LIMBS];
        for i in 0..LIMBS {
            out[i] = self.limbs[i] & rhs.limbs[i];
        }
        U256 { limbs: out }
    }

    /// Bitwise OR.
    pub fn bitor(&self, rhs: &U256) -> U256 {
        let mut out = [0u64; LIMBS];
        for i in 0..LIMBS {
            out[i] = self.limbs[i] | rhs.limbs[i];
        }
        U256 { limbs: out }
    }

    /// Computes `self mod rhs` by binary long division.
    ///
    /// This is only used in parameter generation and tests; the hot paths
    /// use Montgomery arithmetic instead.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn rem(&self, rhs: &U256) -> U256 {
        assert!(!rhs.is_zero(), "division by zero");
        if self < rhs {
            return *self;
        }
        let mut remainder = U256::ZERO;
        let bits = self.bits();
        for i in (0..bits).rev() {
            remainder = remainder.shl(1);
            if self.bit(i) {
                remainder = remainder.wrapping_add(&U256::ONE);
            }
            if &remainder >= rhs {
                remainder = remainder.wrapping_sub(rhs);
            }
        }
        remainder
    }

    /// Computes `(self / rhs, self mod rhs)` by binary long division.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &U256) -> (U256, U256) {
        assert!(!rhs.is_zero(), "division by zero");
        if self < rhs {
            return (U256::ZERO, *self);
        }
        let mut quotient = U256::ZERO;
        let mut remainder = U256::ZERO;
        let bits = self.bits();
        for i in (0..bits).rev() {
            remainder = remainder.shl(1);
            if self.bit(i) {
                remainder = remainder.wrapping_add(&U256::ONE);
            }
            if &remainder >= rhs {
                remainder = remainder.wrapping_sub(rhs);
                quotient = quotient.bitor(&U256::ONE.shl(i));
            }
        }
        (quotient, remainder)
    }

    /// Parses a big-endian hexadecimal string (with or without `0x` prefix).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidHex`] if the string is empty, longer than
    /// 64 hex digits, or contains non-hex characters.
    pub fn from_hex(s: &str) -> Result<U256, MathError> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        let s = s.trim();
        if s.is_empty() || s.len() > 64 {
            return Err(MathError::InvalidHex);
        }
        let mut value = U256::ZERO;
        for ch in s.chars() {
            let digit = ch.to_digit(16).ok_or(MathError::InvalidHex)? as u64;
            value = value.shl(4).bitor(&U256::from_u64(digit));
        }
        Ok(value)
    }

    /// Formats the value as a lowercase big-endian hexadecimal string
    /// without leading zeros (zero formats as `"0"`).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        let mut started = false;
        for i in (0..LIMBS).rev() {
            if started {
                s.push_str(&format!("{:016x}", self.limbs[i]));
            } else if self.limbs[i] != 0 {
                s.push_str(&format!("{:x}", self.limbs[i]));
                started = true;
            }
        }
        s
    }

    /// Serialises to 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..LIMBS {
            out[(LIMBS - 1 - i) * 8..(LIMBS - i) * 8].copy_from_slice(&self.limbs[i].to_be_bytes());
        }
        out
    }

    /// Deserialises from 32 big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> U256 {
        let mut limbs = [0u64; LIMBS];
        for i in 0..LIMBS {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[(LIMBS - 1 - i) * 8..(LIMBS - i) * 8]);
            limbs[i] = u64::from_be_bytes(chunk);
        }
        U256 { limbs }
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..LIMBS).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{})", self.to_hex())
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants() {
        assert!(U256::ZERO.is_zero());
        assert!(!U256::ONE.is_zero());
        assert_eq!(U256::ONE.as_u64(), 1);
        assert_eq!(U256::MAX.bits(), 256);
    }

    #[test]
    fn add_sub_roundtrip_small() {
        let a = U256::from_u64(12345);
        let b = U256::from_u64(67890);
        let sum = a.wrapping_add(&b);
        assert_eq!(sum.as_u64(), 80235);
        assert_eq!(sum.wrapping_sub(&b), a);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = U256::from_limbs([u64::MAX, 0, 0, 0]);
        let b = U256::ONE;
        let sum = a.wrapping_add(&b);
        assert_eq!(sum, U256::from_limbs([0, 1, 0, 0]));
    }

    #[test]
    fn overflow_is_reported() {
        let (_, carry) = U256::MAX.overflowing_add(&U256::ONE);
        assert!(carry);
        assert_eq!(U256::MAX.checked_add(&U256::ONE), None);
        let (_, borrow) = U256::ZERO.overflowing_sub(&U256::ONE);
        assert!(borrow);
        assert_eq!(U256::ZERO.checked_sub(&U256::ONE), None);
    }

    #[test]
    fn mul_wide_matches_u128() {
        let a = U256::from_u64(u64::MAX);
        let b = U256::from_u64(u64::MAX);
        let (lo, hi) = a.mul_wide(&b);
        assert!(hi.is_zero());
        assert_eq!(lo.as_u128(), (u64::MAX as u128) * (u64::MAX as u128));
    }

    #[test]
    fn mul_wide_high_half() {
        // (2^192) * (2^192) = 2^384 => low half zero, high half = 2^128.
        let a = U256::ONE.shl(192);
        let (lo, hi) = a.mul_wide(&a);
        assert!(lo.is_zero());
        assert_eq!(hi, U256::ONE.shl(128));
    }

    #[test]
    fn shifts() {
        let one = U256::ONE;
        assert_eq!(one.shl(255).bits(), 256);
        assert_eq!(one.shl(255).shr(255), one);
        assert_eq!(one.shl(256), U256::ZERO);
        assert_eq!(one.shr(1), U256::ZERO);
        let v = U256::from_u128(0x1234_5678_9abc_def0_1122_3344_5566_7788);
        assert_eq!(v.shl(64).shr(64), v);
    }

    #[test]
    fn bit_access() {
        let v = U256::from_u64(0b1010);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(300));
    }

    #[test]
    fn rem_and_div_rem() {
        let a = U256::from_u64(1_000_000_007);
        let b = U256::from_u64(97);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.as_u64(), 1_000_000_007 / 97);
        assert_eq!(r.as_u64(), 1_000_000_007 % 97);
        assert_eq!(a.rem(&b), r);
    }

    #[test]
    fn rem_large_values() {
        let a = U256::MAX;
        let b = U256::from_u64(0xffff_ffff);
        let r = a.rem(&b);
        // 2^256 - 1 mod (2^32 - 1) == 0 because 2^32 ≡ 1 (mod 2^32-1).
        assert!(r.is_zero());
    }

    #[test]
    fn hex_roundtrip() {
        let v = U256::from_hex("0xdeadbeefcafebabe1234567890abcdef").unwrap();
        assert_eq!(U256::from_hex(&v.to_hex()).unwrap(), v);
        assert_eq!(U256::from_hex("0").unwrap(), U256::ZERO);
        assert!(U256::from_hex("").is_err());
        assert!(U256::from_hex("zz").is_err());
        assert!(U256::from_hex(&"f".repeat(65)).is_err());
        assert_eq!(U256::from_hex(&"f".repeat(64)).unwrap(), U256::MAX);
    }

    #[test]
    fn byte_roundtrip() {
        let v = U256::from_hex("0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20")
            .unwrap();
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
        assert_eq!(v.to_be_bytes()[0], 0x01);
        assert_eq!(v.to_be_bytes()[31], 0x20);
    }

    #[test]
    fn ordering() {
        let a = U256::from_limbs([0, 0, 0, 1]);
        let b = U256::from_limbs([u64::MAX, u64::MAX, u64::MAX, 0]);
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn display_and_debug() {
        let v = U256::from_u64(255);
        assert_eq!(format!("{v}"), "0xff");
        assert!(format!("{v:?}").contains("ff"));
    }

    fn arb_u256() -> impl Strategy<Value = U256> {
        prop::array::uniform4(any::<u64>()).prop_map(U256::from_limbs)
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
        }

        #[test]
        fn prop_add_sub_inverse(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let (lo, hi) = U256::from_u64(a).mul_wide(&U256::from_u64(b));
            prop_assert!(hi.is_zero());
            prop_assert_eq!(lo.as_u128(), (a as u128) * (b as u128));
        }

        #[test]
        fn prop_mul_commutative(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!(a.mul_wide(&b), b.mul_wide(&a));
        }

        #[test]
        fn prop_shift_roundtrip(a in arb_u256(), n in 0u32..255) {
            // Shifting left then right loses only the bits that overflowed.
            let masked = a.shl(n).shr(n);
            let expect = a.shl(n).shr(n);
            prop_assert_eq!(masked, expect);
            // Low bits are preserved when no overflow occurs.
            if a.bits() + n <= 256 {
                prop_assert_eq!(a.shl(n).shr(n), a);
            }
        }

        #[test]
        fn prop_div_rem_identity(a in arb_u256(), b in arb_u256()) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert!(r < b);
            // a == q*b + r (checked without overflow by widening).
            let (lo, hi) = q.mul_wide(&b);
            prop_assert!(hi.is_zero());
            prop_assert_eq!(lo.wrapping_add(&r), a);
        }

        #[test]
        fn prop_hex_roundtrip(a in arb_u256()) {
            prop_assert_eq!(U256::from_hex(&a.to_hex()).unwrap(), a);
        }

        #[test]
        fn prop_bytes_roundtrip(a in arb_u256()) {
            prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
        }

        #[test]
        fn prop_xor_involution(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!(a.bitxor(&b).bitxor(&b), a);
        }
    }
}
