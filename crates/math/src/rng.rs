//! Deterministic pseudo-random number generation.
//!
//! The DStress reproduction is a *simulation*: every experiment must be
//! reproducible from a seed so that the benchmark harness regenerates the
//! same series on every run.  This module provides a tiny, dependency-free
//! generator family:
//!
//! * [`SplitMix64`] — the classic 64-bit mixer, used for seeding and for
//!   low-volume randomness.
//! * [`Xoshiro256`] — xoshiro256** for high-volume simulation randomness.
//!
//! Both implement the object-safe [`DetRng`] trait, which is what the rest
//! of the workspace takes as an argument (so that components never care
//! which concrete generator is in use).

/// An object-safe deterministic random number generator.
pub trait DetRng {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling on the top of the range to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly distributed mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a random boolean.
    fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fills a byte slice with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// The SplitMix64 finalizer (Steele, Lea, Flood 2014): a bijective 64-bit
/// mixer with full avalanche — every input bit flips each output bit with
/// probability ≈ ½.
///
/// This is the mixing step of [`SplitMix64`], exposed on its own for
/// keyed seed derivation (domain-separated sub-seeds, per-gate masks)
/// where a pure function of the inputs is needed instead of a stream.
pub fn splitmix64_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The SplitMix64 generator (Steele, Lea, Flood 2014).
///
/// Small state, excellent for seeding other generators and for components
/// that need only a handful of random values.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl DetRng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64_finalize(self.state)
    }
}

/// The xoshiro256** generator (Blackman & Vigna 2018).
///
/// Fast, high-quality, 256 bits of state; used for the bulk randomness in
/// the network and MPC simulations.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    state: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator, expanding the seed with SplitMix64 as
    /// recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            state: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The generator's current position as its raw 256-bit state.
    ///
    /// Together with [`Xoshiro256::from_state`] this is the snapshot/
    /// restore pair the engine's round-boundary checkpoints use: a
    /// resumed run continues the *same* random stream from the exact
    /// draw the checkpoint was taken at.
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Restores a generator from a state captured by
    /// [`Xoshiro256::state`].
    pub fn from_state(state: [u64; 4]) -> Self {
        Xoshiro256 { state }
    }

    /// Derives an independent child generator, useful for giving each
    /// simulated node its own stream.
    pub fn fork(&mut self, stream: u64) -> Xoshiro256 {
        let mut sm = SplitMix64::new(self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Xoshiro256 {
            state: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl DetRng for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the published algorithm.
        let mut rng = SplitMix64::new(0);
        let first = rng.next_u64();
        // The first output for seed 0 of SplitMix64 is well known.
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::new(7);
        let mut b = Xoshiro256::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_snapshot_resumes_the_exact_stream() {
        let mut rng = Xoshiro256::new(0xC0FFEE);
        for _ in 0..37 {
            rng.next_u64();
        }
        let snapshot = rng.state();
        let expected: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let mut restored = Xoshiro256::from_state(snapshot);
        let resumed: Vec<u64> = (0..64).map(|_| restored.next_u64()).collect();
        assert_eq!(expected, resumed);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Xoshiro256::new(9);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let s1: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
        let s2: Vec<u64> = (0..16).map(|_| c2.next_u64()).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Xoshiro256::new(11);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        let mut rng = SplitMix64::new(1);
        rng.next_below(0);
    }

    #[test]
    fn next_f64_is_unit_interval() {
        let mut rng = Xoshiro256::new(3);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean should be near 0.5.
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn next_bool_is_balanced() {
        let mut rng = Xoshiro256::new(17);
        let trues = (0..2000).filter(|_| rng.next_bool()).count();
        assert!((800..1200).contains(&trues), "trues = {trues}");
    }
}
