//! Signed fixed-point arithmetic.
//!
//! DStress runs its vertex programs inside Boolean circuits, which means
//! every quantity in the systemic-risk models (reserves, debts, pro-rating
//! fractions, valuations) is a fixed-point number of a known bit width.
//! [`Fixed`] is the plaintext mirror of that representation: a signed
//! 64-bit raw value with [`FRAC_BITS`] fractional bits.  The plaintext
//! reference implementations of Eisenberg–Noe and Elliott–Golub–Jackson use
//! it so that the MPC results can be compared bit-for-bit against the
//! reference (the rounding behaviour is identical by construction).

use crate::error::MathError;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Number of fractional bits in a [`Fixed`].
pub const FRAC_BITS: u32 = 20;

/// The scaling factor `2^FRAC_BITS`.
pub const SCALE: i64 = 1 << FRAC_BITS;

/// A signed fixed-point number with [`FRAC_BITS`] fractional bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fixed {
    raw: i64,
}

impl Fixed {
    /// Zero.
    pub const ZERO: Fixed = Fixed { raw: 0 };
    /// One.
    pub const ONE: Fixed = Fixed { raw: SCALE };
    /// The largest representable value.
    pub const MAX: Fixed = Fixed { raw: i64::MAX };
    /// The smallest representable value.
    pub const MIN: Fixed = Fixed { raw: i64::MIN };

    /// Creates a value from its raw underlying representation.
    pub const fn from_raw(raw: i64) -> Self {
        Fixed { raw }
    }

    /// Returns the raw underlying representation.
    pub const fn raw(&self) -> i64 {
        self.raw
    }

    /// Creates a value from an integer.
    pub const fn from_int(v: i64) -> Self {
        Fixed { raw: v * SCALE }
    }

    /// Creates a value from an `f64`, rounding to the nearest representable
    /// value.
    pub fn from_f64(v: f64) -> Self {
        Fixed {
            raw: (v * SCALE as f64).round() as i64,
        }
    }

    /// Converts to `f64`.
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 / SCALE as f64
    }

    /// Truncates to the integer part (rounding towards zero).
    pub const fn trunc(&self) -> i64 {
        self.raw / SCALE
    }

    /// Returns `true` if the value is negative.
    pub const fn is_negative(&self) -> bool {
        self.raw < 0
    }

    /// Returns `true` if the value is zero.
    pub const fn is_zero(&self) -> bool {
        self.raw == 0
    }

    /// Absolute value (saturating at [`Fixed::MAX`] for `MIN`).
    pub const fn abs(&self) -> Fixed {
        Fixed {
            raw: self.raw.saturating_abs(),
        }
    }

    /// Returns the smaller of two values.
    pub fn min(self, other: Fixed) -> Fixed {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two values.
    pub fn max(self, other: Fixed) -> Fixed {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Clamps the value into `[lo, hi]`.
    pub fn clamp(self, lo: Fixed, hi: Fixed) -> Fixed {
        self.max(lo).min(hi)
    }

    /// Checked addition.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::FixedOverflow`] on overflow.
    pub fn checked_add(self, rhs: Fixed) -> Result<Fixed, MathError> {
        self.raw
            .checked_add(rhs.raw)
            .map(Fixed::from_raw)
            .ok_or(MathError::FixedOverflow { op: "add" })
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::FixedOverflow`] on overflow.
    pub fn checked_sub(self, rhs: Fixed) -> Result<Fixed, MathError> {
        self.raw
            .checked_sub(rhs.raw)
            .map(Fixed::from_raw)
            .ok_or(MathError::FixedOverflow { op: "sub" })
    }

    /// Checked multiplication (full-precision intermediate, truncated).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::FixedOverflow`] if the result does not fit.
    pub fn checked_mul(self, rhs: Fixed) -> Result<Fixed, MathError> {
        let wide = ((self.raw as i128) * (rhs.raw as i128)) >> FRAC_BITS;
        i64::try_from(wide)
            .map(Fixed::from_raw)
            .map_err(|_| MathError::FixedOverflow { op: "mul" })
    }

    /// Checked division (full-precision intermediate, truncated).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DivisionByZero`] when `rhs` is zero and
    /// [`MathError::FixedOverflow`] if the result does not fit.
    pub fn checked_div(self, rhs: Fixed) -> Result<Fixed, MathError> {
        if rhs.raw == 0 {
            return Err(MathError::DivisionByZero);
        }
        let wide = ((self.raw as i128) << FRAC_BITS) / (rhs.raw as i128);
        i64::try_from(wide)
            .map(Fixed::from_raw)
            .map_err(|_| MathError::FixedOverflow { op: "div" })
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Fixed) -> Fixed {
        Fixed {
            raw: self.raw.saturating_add(rhs.raw),
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Fixed) -> Fixed {
        Fixed {
            raw: self.raw.saturating_sub(rhs.raw),
        }
    }

    /// Saturating multiplication.
    pub fn saturating_mul(self, rhs: Fixed) -> Fixed {
        let wide = ((self.raw as i128) * (rhs.raw as i128)) >> FRAC_BITS;
        Fixed {
            raw: wide.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
        }
    }
}

impl Add for Fixed {
    type Output = Fixed;
    fn add(self, rhs: Fixed) -> Fixed {
        Fixed {
            raw: self.raw + rhs.raw,
        }
    }
}

impl AddAssign for Fixed {
    fn add_assign(&mut self, rhs: Fixed) {
        self.raw += rhs.raw;
    }
}

impl Sub for Fixed {
    type Output = Fixed;
    fn sub(self, rhs: Fixed) -> Fixed {
        Fixed {
            raw: self.raw - rhs.raw,
        }
    }
}

impl SubAssign for Fixed {
    fn sub_assign(&mut self, rhs: Fixed) {
        self.raw -= rhs.raw;
    }
}

impl Mul for Fixed {
    type Output = Fixed;
    fn mul(self, rhs: Fixed) -> Fixed {
        Fixed {
            raw: ((self.raw as i128 * rhs.raw as i128) >> FRAC_BITS) as i64,
        }
    }
}

impl Div for Fixed {
    type Output = Fixed;
    fn div(self, rhs: Fixed) -> Fixed {
        assert!(rhs.raw != 0, "fixed-point division by zero");
        Fixed {
            raw: (((self.raw as i128) << FRAC_BITS) / rhs.raw as i128) as i64,
        }
    }
}

impl Neg for Fixed {
    type Output = Fixed;
    fn neg(self) -> Fixed {
        Fixed { raw: -self.raw }
    }
}

impl fmt::Debug for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed({})", self.to_f64())
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.to_f64())
    }
}

impl From<i64> for Fixed {
    fn from(v: i64) -> Self {
        Fixed::from_int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn int_roundtrip() {
        for v in [-100i64, -1, 0, 1, 42, 1_000_000] {
            assert_eq!(Fixed::from_int(v).trunc(), v);
        }
    }

    #[test]
    fn f64_roundtrip_is_close() {
        for v in [-3.25f64, 0.0, 0.5, 1.0 / 3.0, 12345.678] {
            let fx = Fixed::from_f64(v);
            assert!((fx.to_f64() - v).abs() < 1e-5, "value {v}");
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = Fixed::from_f64(3.5);
        let b = Fixed::from_f64(1.25);
        assert_eq!((a + b).to_f64(), 4.75);
        assert_eq!((a - b).to_f64(), 2.25);
        assert_eq!((a * b).to_f64(), 4.375);
        assert!(((a / b).to_f64() - 2.8).abs() < 1e-5);
        assert_eq!((-a).to_f64(), -3.5);
    }

    #[test]
    fn mul_by_one_and_zero() {
        let a = Fixed::from_f64(7.75);
        assert_eq!(a * Fixed::ONE, a);
        assert_eq!(a * Fixed::ZERO, Fixed::ZERO);
    }

    #[test]
    fn comparison_and_minmax() {
        let a = Fixed::from_f64(1.0);
        let b = Fixed::from_f64(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Fixed::from_f64(5.0).clamp(a, b), b);
        assert_eq!(Fixed::from_f64(-5.0).clamp(a, b), a);
        assert_eq!(Fixed::from_f64(1.5).clamp(a, b), Fixed::from_f64(1.5));
    }

    #[test]
    fn checked_ops_detect_overflow() {
        assert!(Fixed::MAX.checked_add(Fixed::ONE).is_err());
        assert!(Fixed::MIN.checked_sub(Fixed::ONE).is_err());
        assert!(Fixed::MAX.checked_mul(Fixed::from_int(2)).is_err());
        assert_eq!(
            Fixed::ONE.checked_div(Fixed::ZERO).unwrap_err(),
            MathError::DivisionByZero
        );
        assert!(Fixed::from_int(10).checked_div(Fixed::from_int(4)).is_ok());
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Fixed::MAX.saturating_add(Fixed::ONE), Fixed::MAX);
        assert_eq!(Fixed::MIN.saturating_sub(Fixed::ONE), Fixed::MIN);
        assert_eq!(Fixed::MAX.saturating_mul(Fixed::from_int(3)), Fixed::MAX);
        assert_eq!(
            Fixed::from_int(2).saturating_mul(Fixed::from_int(3)),
            Fixed::from_int(6)
        );
    }

    #[test]
    fn abs_and_negative() {
        assert_eq!(Fixed::from_int(-5).abs(), Fixed::from_int(5));
        assert!(Fixed::from_int(-5).is_negative());
        assert!(!Fixed::ZERO.is_negative());
        assert!(Fixed::ZERO.is_zero());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Fixed::from_f64(1.5)), "1.500000");
        assert!(format!("{:?}", Fixed::from_f64(1.5)).contains("1.5"));
    }

    proptest! {
        #[test]
        fn prop_add_sub_roundtrip(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
            let fa = Fixed::from_int(a);
            let fb = Fixed::from_int(b);
            prop_assert_eq!(fa + fb - fb, fa);
        }

        #[test]
        fn prop_mul_matches_f64(a in -10_000.0f64..10_000.0, b in -10_000.0f64..10_000.0) {
            let product = (Fixed::from_f64(a) * Fixed::from_f64(b)).to_f64();
            let expected = a * b;
            // Fixed-point truncation error is bounded by roughly |a|+|b| ulps.
            prop_assert!((product - expected).abs() < 0.1, "{product} vs {expected}");
        }

        #[test]
        fn prop_div_mul_roundtrip(a in -100_000.0f64..100_000.0, b in 0.01f64..1000.0) {
            let fa = Fixed::from_f64(a);
            let fb = Fixed::from_f64(b);
            let back = (fa / fb) * fb;
            prop_assert!((back.to_f64() - a).abs() < 0.01, "{} vs {a}", back.to_f64());
        }

        #[test]
        fn prop_ordering_matches_f64(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
            prop_assume!((a - b).abs() > 1e-4);
            prop_assert_eq!(Fixed::from_f64(a) < Fixed::from_f64(b), a < b);
        }
    }
}
