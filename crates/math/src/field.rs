//! Montgomery-form modular arithmetic over a fixed odd modulus.
//!
//! A [`FpCtx`] captures a modulus (the ElGamal prime `p`, or the subgroup
//! order `q`) together with the pre-computed Montgomery constants.  Field
//! elements are represented by [`FpElem`], which stores the value in
//! Montgomery form; all operations take the context explicitly so that
//! elements stay a single, copyable 256-bit word.

use crate::error::MathError;
use crate::rng::DetRng;
use crate::u256::{LIMBS, U256};

/// An element of `Z_m` stored in Montgomery form.
///
/// Elements are only meaningful relative to the [`FpCtx`] that produced
/// them; mixing elements from different contexts produces garbage values
/// (but never memory unsafety).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FpElem(pub(crate) U256);

/// Montgomery arithmetic context for an odd modulus.
#[derive(Clone, Debug)]
pub struct FpCtx {
    modulus: U256,
    /// -modulus^{-1} mod 2^64.
    n0_inv: u64,
    /// R mod m where R = 2^256 (the Montgomery representation of 1).
    r_mod_m: U256,
    /// R^2 mod m, used to convert into Montgomery form.
    r2_mod_m: U256,
    /// True when the modulus fits a single limb, enabling the u128-based
    /// reduction fast path in [`FpCtx::mont_mul`].
    single_limb: bool,
}

impl FpCtx {
    /// Creates a context for the given odd modulus.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidModulus`] if the modulus is even or zero.
    pub fn new(modulus: U256) -> Result<Self, MathError> {
        if modulus.is_zero() || !modulus.is_odd() {
            return Err(MathError::InvalidModulus);
        }
        let n0_inv = inv_2_64(modulus.as_u64()).wrapping_neg();
        // R mod m: start from 1 and double 256 times modulo m.
        let one = U256::ONE.rem(&modulus);
        let mut r_mod_m = one;
        for _ in 0..256 {
            r_mod_m = mod_double(&r_mod_m, &modulus);
        }
        // R^2 mod m: double R mod m another 256 times.
        let mut r2_mod_m = r_mod_m;
        for _ in 0..256 {
            r2_mod_m = mod_double(&r2_mod_m, &modulus);
        }
        Ok(FpCtx {
            modulus,
            n0_inv,
            r_mod_m,
            r2_mod_m,
            single_limb: modulus.fits_u64(),
        })
    }

    /// Returns the modulus.
    pub fn modulus(&self) -> U256 {
        self.modulus
    }

    /// Converts an integer (must be `< modulus`) into Montgomery form.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ValueOutOfRange`] if `value >= modulus`.
    pub fn to_elem(&self, value: U256) -> Result<FpElem, MathError> {
        if value >= self.modulus {
            return Err(MathError::ValueOutOfRange {
                context: "FpCtx::to_elem",
            });
        }
        Ok(FpElem(self.mont_mul(&value, &self.r2_mod_m)))
    }

    /// Converts an arbitrary integer into Montgomery form, reducing it
    /// modulo the modulus first.
    pub fn to_elem_reduced(&self, value: U256) -> FpElem {
        let reduced = value.rem(&self.modulus);
        FpElem(self.mont_mul(&reduced, &self.r2_mod_m))
    }

    /// Converts a `u64` into Montgomery form, reducing if necessary.
    pub fn elem_from_u64(&self, value: u64) -> FpElem {
        self.to_elem_reduced(U256::from_u64(value))
    }

    /// Converts an element back to its canonical integer representation.
    pub fn to_int(&self, elem: FpElem) -> U256 {
        self.mont_mul(&elem.0, &U256::ONE)
    }

    /// The additive identity.
    pub fn zero(&self) -> FpElem {
        FpElem(U256::ZERO)
    }

    /// The multiplicative identity.
    pub fn one(&self) -> FpElem {
        FpElem(self.r_mod_m)
    }

    /// Returns `true` if the element is zero.
    pub fn is_zero(&self, a: FpElem) -> bool {
        a.0.is_zero()
    }

    /// Modular addition.
    pub fn add(&self, a: FpElem, b: FpElem) -> FpElem {
        FpElem(mod_add(&a.0, &b.0, &self.modulus))
    }

    /// Modular subtraction.
    pub fn sub(&self, a: FpElem, b: FpElem) -> FpElem {
        FpElem(mod_sub(&a.0, &b.0, &self.modulus))
    }

    /// Modular negation.
    pub fn neg(&self, a: FpElem) -> FpElem {
        if a.0.is_zero() {
            a
        } else {
            FpElem(self.modulus.wrapping_sub(&a.0))
        }
    }

    /// Modular multiplication.
    pub fn mul(&self, a: FpElem, b: FpElem) -> FpElem {
        FpElem(self.mont_mul(&a.0, &b.0))
    }

    /// Modular squaring.
    pub fn square(&self, a: FpElem) -> FpElem {
        self.mul(a, a)
    }

    /// Modular exponentiation with an arbitrary 256-bit exponent.
    ///
    /// The exponent is a plain integer (not a field element).
    pub fn pow(&self, base: FpElem, exponent: &U256) -> FpElem {
        let mut result = self.one();
        let bits = exponent.bits();
        if bits == 0 {
            return result;
        }
        let mut acc = base;
        for i in 0..bits {
            if exponent.bit(i) {
                result = self.mul(result, acc);
            }
            if i + 1 < bits {
                acc = self.square(acc);
            }
        }
        result
    }

    /// Modular inverse via Fermat's little theorem (requires the modulus to
    /// be prime).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotInvertible`] for the zero element.
    pub fn inv(&self, a: FpElem) -> Result<FpElem, MathError> {
        if a.0.is_zero() {
            return Err(MathError::NotInvertible);
        }
        let exp = self.modulus.wrapping_sub(&U256::from_u64(2));
        Ok(self.pow(a, &exp))
    }

    /// Samples a uniformly random element of `Z_m`.
    pub fn random(&self, rng: &mut dyn DetRng) -> FpElem {
        let value = random_below(rng, &self.modulus);
        self.to_elem(value)
            .expect("random_below returns a value smaller than the modulus")
    }

    /// Samples a uniformly random *non-zero* element of `Z_m`.
    pub fn random_nonzero(&self, rng: &mut dyn DetRng) -> FpElem {
        loop {
            let candidate = self.random(rng);
            if !candidate.0.is_zero() {
                return candidate;
            }
        }
    }

    /// Montgomery multiplication: returns `a * b * R^{-1} mod m`.
    ///
    /// Dispatches to a u128-based fast path when the modulus fits one limb
    /// (the `Sim64` group and the Goldilocks test prime); both paths reduce
    /// fully into `[0, m)`, so they are bit-identical on shared inputs.
    fn mont_mul(&self, a: &U256, b: &U256) -> U256 {
        if self.single_limb {
            self.mont_mul_single(a.as_u64(), b.as_u64())
        } else {
            self.mont_mul_cios(a, b)
        }
    }

    /// Single-limb Montgomery multiplication for moduli below 2^64.
    ///
    /// `R` is still 2^256, so four word-sized REDC steps run back to back,
    /// each folding `t` as `(t >> 64) + ((t_0 + m·p) >> 64)` — the inner sum
    /// is `≡ 0 mod 2^64` by choice of `m`, so the shift is exact and nothing
    /// overflows `u128`. After the first step `t ≤ 2p`, after the second
    /// `t ≤ p`, and it stays there, leaving one conditional subtract.
    fn mont_mul_single(&self, a: u64, b: u64) -> U256 {
        let p = self.modulus.as_u64();
        let mut t = (a as u128) * (b as u128);
        for _ in 0..LIMBS {
            let t0 = t as u64;
            let m = t0.wrapping_mul(self.n0_inv);
            t = (t >> 64) + ((t0 as u128 + (m as u128) * (p as u128)) >> 64);
        }
        debug_assert!(t >> 64 == 0 && t as u64 <= p);
        let mut r = t as u64;
        if r >= p {
            r -= p;
        }
        U256::from_u64(r)
    }

    /// Multi-limb Montgomery multiplication (CIOS).
    #[allow(clippy::needless_range_loop)] // lockstep limb indexing
    fn mont_mul_cios(&self, a: &U256, b: &U256) -> U256 {
        let a_limbs = a.limbs();
        let b_limbs = b.limbs();
        let m_limbs = self.modulus.limbs();
        let mut t = [0u64; LIMBS + 2];

        for i in 0..LIMBS {
            // t += a * b[i]
            let mut carry = 0u128;
            for j in 0..LIMBS {
                let acc = t[j] as u128 + (a_limbs[j] as u128) * (b_limbs[i] as u128) + carry;
                t[j] = acc as u64;
                carry = acc >> 64;
            }
            let acc = t[LIMBS] as u128 + carry;
            t[LIMBS] = acc as u64;
            t[LIMBS + 1] = (acc >> 64) as u64;

            // m_factor = t[0] * n0_inv mod 2^64
            let m_factor = t[0].wrapping_mul(self.n0_inv);

            // t += m_factor * m, then shift right by one limb.
            let acc = t[0] as u128 + (m_factor as u128) * (m_limbs[0] as u128);
            let mut carry = acc >> 64;
            for j in 1..LIMBS {
                let acc = t[j] as u128 + (m_factor as u128) * (m_limbs[j] as u128) + carry;
                t[j - 1] = acc as u64;
                carry = acc >> 64;
            }
            let acc = t[LIMBS] as u128 + carry;
            t[LIMBS - 1] = acc as u64;
            t[LIMBS] = t[LIMBS + 1] + ((acc >> 64) as u64);
            t[LIMBS + 1] = 0;
        }

        let mut result = U256::from_limbs([t[0], t[1], t[2], t[3]]);
        if t[LIMBS] != 0 || result >= self.modulus {
            result = result.wrapping_sub(&self.modulus);
        }
        result
    }
}

/// Computes the inverse of an odd `x` modulo 2^64 via Newton iteration.
fn inv_2_64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1, "modulus must be odd");
    let mut inv = x;
    // Each iteration doubles the number of correct low bits (starts at ~5).
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    inv
}

/// Modular addition of canonical (non-Montgomery) values `< m`.
fn mod_add(a: &U256, b: &U256, m: &U256) -> U256 {
    let (sum, carry) = a.overflowing_add(b);
    if carry || &sum >= m {
        sum.wrapping_sub(m)
    } else {
        sum
    }
}

/// Modular subtraction of canonical values `< m`.
fn mod_sub(a: &U256, b: &U256, m: &U256) -> U256 {
    let (diff, borrow) = a.overflowing_sub(b);
    if borrow {
        diff.wrapping_add(m)
    } else {
        diff
    }
}

/// Modular doubling of a canonical value `< m`.
fn mod_double(a: &U256, m: &U256) -> U256 {
    mod_add(a, a, m)
}

/// Samples a uniform integer in `[0, bound)` by rejection sampling.
pub fn random_below(rng: &mut dyn DetRng, bound: &U256) -> U256 {
    assert!(!bound.is_zero(), "bound must be positive");
    let bits = bound.bits();
    let limbs_needed = bits.div_ceil(64) as usize;
    let top_mask = if bits % 64 == 0 {
        u64::MAX
    } else {
        (1u64 << (bits % 64)) - 1
    };
    loop {
        let mut limbs = [0u64; LIMBS];
        for (i, limb) in limbs.iter_mut().enumerate().take(limbs_needed) {
            *limb = rng.next_u64();
            if i == limbs_needed - 1 {
                *limb &= top_mask;
            }
        }
        let candidate = U256::from_limbs(limbs);
        if &candidate < bound {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use proptest::prelude::*;

    /// A small prime that fits in 64 bits, convenient for cross-checking
    /// against native arithmetic.
    const SMALL_PRIME: u64 = 0xffff_ffff_0000_0001; // Goldilocks prime 2^64 - 2^32 + 1

    fn small_ctx() -> FpCtx {
        FpCtx::new(U256::from_u64(SMALL_PRIME)).unwrap()
    }

    /// A 256-bit prime (the secp256k1 field prime) for full-width checks.
    fn big_ctx() -> FpCtx {
        let p = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
            .unwrap();
        FpCtx::new(p).unwrap()
    }

    #[test]
    fn rejects_even_or_zero_modulus() {
        assert_eq!(
            FpCtx::new(U256::from_u64(100)).unwrap_err(),
            MathError::InvalidModulus
        );
        assert_eq!(
            FpCtx::new(U256::ZERO).unwrap_err(),
            MathError::InvalidModulus
        );
    }

    #[test]
    fn to_elem_range_check() {
        let ctx = small_ctx();
        assert!(ctx.to_elem(U256::from_u64(SMALL_PRIME)).is_err());
        assert!(ctx.to_elem(U256::from_u64(SMALL_PRIME - 1)).is_ok());
    }

    #[test]
    fn roundtrip_small_values() {
        let ctx = small_ctx();
        for v in [0u64, 1, 2, 12345, SMALL_PRIME - 1] {
            let elem = ctx.to_elem(U256::from_u64(v)).unwrap();
            assert_eq!(ctx.to_int(elem).as_u64(), v);
        }
    }

    #[test]
    fn add_mul_match_native() {
        let ctx = small_ctx();
        let a = 0x1234_5678_9abc_def0u64 % SMALL_PRIME;
        let b = 0xfedc_ba98_7654_3210u64 % SMALL_PRIME;
        let ea = ctx.elem_from_u64(a);
        let eb = ctx.elem_from_u64(b);
        let sum = ctx.to_int(ctx.add(ea, eb)).as_u64();
        let prod = ctx.to_int(ctx.mul(ea, eb)).as_u64();
        let expected_sum = ((a as u128 + b as u128) % SMALL_PRIME as u128) as u64;
        let expected_prod = ((a as u128 * b as u128) % SMALL_PRIME as u128) as u64;
        assert_eq!(sum, expected_sum);
        assert_eq!(prod, expected_prod);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let ctx = small_ctx();
        let base = ctx.elem_from_u64(7);
        let mut acc = ctx.one();
        for e in 0..20u64 {
            assert_eq!(ctx.pow(base, &U256::from_u64(e)), acc, "exponent {e}");
            acc = ctx.mul(acc, base);
        }
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        let ctx = big_ctx();
        let mut rng = SplitMix64::new(7);
        let a = ctx.random(&mut rng);
        assert_eq!(ctx.pow(a, &U256::ZERO), ctx.one());
    }

    #[test]
    fn fermat_little_theorem_small() {
        let ctx = small_ctx();
        let a = ctx.elem_from_u64(123_456_789);
        let exp = U256::from_u64(SMALL_PRIME - 1);
        assert_eq!(ctx.pow(a, &exp), ctx.one());
    }

    #[test]
    fn fermat_little_theorem_big() {
        let ctx = big_ctx();
        let mut rng = SplitMix64::new(99);
        let a = ctx.random_nonzero(&mut rng);
        let exp = ctx.modulus().wrapping_sub(&U256::ONE);
        assert_eq!(ctx.pow(a, &exp), ctx.one());
    }

    #[test]
    fn inverse() {
        let ctx = big_ctx();
        let mut rng = SplitMix64::new(3);
        for _ in 0..10 {
            let a = ctx.random_nonzero(&mut rng);
            let inv = ctx.inv(a).unwrap();
            assert_eq!(ctx.mul(a, inv), ctx.one());
        }
        assert_eq!(ctx.inv(ctx.zero()).unwrap_err(), MathError::NotInvertible);
    }

    #[test]
    fn neg_adds_to_zero() {
        let ctx = big_ctx();
        let mut rng = SplitMix64::new(4);
        let a = ctx.random(&mut rng);
        assert!(ctx.is_zero(ctx.add(a, ctx.neg(a))));
        assert_eq!(ctx.neg(ctx.zero()), ctx.zero());
    }

    #[test]
    fn random_below_is_in_range() {
        let mut rng = SplitMix64::new(11);
        let bound = U256::from_u64(1000);
        for _ in 0..200 {
            let v = random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_below_covers_range() {
        let mut rng = SplitMix64::new(12);
        let bound = U256::from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[random_below(&mut rng, &bound).as_u64() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_limb_fast_path_matches_cios() {
        let ctx = small_ctx();
        let mut rng = SplitMix64::new(21);
        assert!(ctx.single_limb);
        for _ in 0..500 {
            let a = ctx.random(&mut rng);
            let b = ctx.random(&mut rng);
            assert_eq!(
                ctx.mont_mul_single(a.0.as_u64(), b.0.as_u64()),
                ctx.mont_mul_cios(&a.0, &b.0)
            );
        }
    }

    #[test]
    fn subtraction_wraps_correctly() {
        let ctx = small_ctx();
        let a = ctx.elem_from_u64(3);
        let b = ctx.elem_from_u64(5);
        let diff = ctx.to_int(ctx.sub(a, b)).as_u64();
        assert_eq!(diff, SMALL_PRIME - 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_mul_matches_native_u64(a in any::<u64>(), b in any::<u64>()) {
            let ctx = small_ctx();
            let a = a % SMALL_PRIME;
            let b = b % SMALL_PRIME;
            let prod = ctx.to_int(ctx.mul(ctx.elem_from_u64(a), ctx.elem_from_u64(b))).as_u64();
            let expected = ((a as u128 * b as u128) % SMALL_PRIME as u128) as u64;
            prop_assert_eq!(prod, expected);
        }

        #[test]
        fn prop_field_laws_big(seed in any::<u64>()) {
            let ctx = big_ctx();
            let mut rng = SplitMix64::new(seed);
            let a = ctx.random(&mut rng);
            let b = ctx.random(&mut rng);
            let c = ctx.random(&mut rng);
            // Commutativity.
            prop_assert_eq!(ctx.add(a, b), ctx.add(b, a));
            prop_assert_eq!(ctx.mul(a, b), ctx.mul(b, a));
            // Associativity.
            prop_assert_eq!(ctx.add(ctx.add(a, b), c), ctx.add(a, ctx.add(b, c)));
            prop_assert_eq!(ctx.mul(ctx.mul(a, b), c), ctx.mul(a, ctx.mul(b, c)));
            // Distributivity.
            prop_assert_eq!(ctx.mul(a, ctx.add(b, c)), ctx.add(ctx.mul(a, b), ctx.mul(a, c)));
            // Identities.
            prop_assert_eq!(ctx.add(a, ctx.zero()), a);
            prop_assert_eq!(ctx.mul(a, ctx.one()), a);
        }

        #[test]
        fn prop_pow_addition_law(seed in any::<u64>(), e1 in 0u64..1000, e2 in 0u64..1000) {
            let ctx = big_ctx();
            let mut rng = SplitMix64::new(seed);
            let g = ctx.random_nonzero(&mut rng);
            let lhs = ctx.mul(ctx.pow(g, &U256::from_u64(e1)), ctx.pow(g, &U256::from_u64(e2)));
            let rhs = ctx.pow(g, &U256::from_u64(e1 + e2));
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn prop_roundtrip_big(seed in any::<u64>()) {
            let ctx = big_ctx();
            let mut rng = SplitMix64::new(seed);
            let v = random_below(&mut rng, &ctx.modulus());
            prop_assert_eq!(ctx.to_int(ctx.to_elem(v).unwrap()), v);
        }
    }
}
