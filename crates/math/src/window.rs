//! Scalar decomposition for windowed exponentiation.
//!
//! Fixed-base and multi-exponentiation kernels both consume an exponent as a
//! sequence of small digits rather than as raw bits. This module provides the
//! two decompositions used by `dstress-crypto::kernels`:
//!
//! - [`radix_digits`]: plain base-`2^w` digits, least-significant first. Every
//!   digit lies in `[0, 2^w)`. This is what the fixed-base comb tables and the
//!   Straus interleaved multi-exponentiation walk.
//! - [`naf_digits`]: the w-ary non-adjacent form, with digits in
//!   `(-2^(w-1), 2^(w-1))` that are odd or zero, and at most one nonzero digit
//!   in any window of `w` positions. NAF halves the table size in groups with
//!   a cheap inverse (elliptic curves). In the Schnorr subgroups of `Z_p^*`
//!   used here an inversion costs a full exponentiation, so the kernels stick
//!   to plain radix digits; NAF is provided (and tested) for completeness and
//!   for any future curve backend.

use crate::u256::{LIMBS, U256};

/// Maximum supported window width in bits.
///
/// Wider windows would make single digits overflow the `i64`/`u64` digit
/// types below long before the table sizes became practical, so decomposition
/// functions panic beyond this.
pub const MAX_WINDOW_BITS: u32 = 16;

/// Decomposes `e` into base-`2^w` digits, least-significant digit first.
///
/// The output always contains `ceil(256 / w)` digits (trailing zeros are kept)
/// so fixed-base tables can be indexed positionally without tracking the
/// exponent's bit length. Each digit is `< 2^w`.
///
/// # Panics
///
/// Panics if `window_bits` is zero or exceeds [`MAX_WINDOW_BITS`].
pub fn radix_digits(e: &U256, window_bits: u32) -> Vec<u64> {
    assert!(
        (1..=MAX_WINDOW_BITS).contains(&window_bits),
        "window width {window_bits} out of range 1..={MAX_WINDOW_BITS}"
    );
    let mask = if window_bits == 64 {
        u64::MAX
    } else {
        (1u64 << window_bits) - 1
    };
    let total_bits = 64 * LIMBS as u32;
    let digits = total_bits.div_ceil(window_bits);
    let mut out = Vec::with_capacity(digits as usize);
    for i in 0..digits {
        let lo_bit = i * window_bits;
        // A digit can straddle a limb boundary; assemble it bit by bit only
        // when it does, otherwise take the aligned fast path.
        let limb = (lo_bit / 64) as usize;
        let shift = lo_bit % 64;
        let mut digit = e.limbs()[limb] >> shift;
        if shift + window_bits > 64 && limb + 1 < LIMBS {
            digit |= e.limbs()[limb + 1] << (64 - shift);
        }
        out.push(digit & mask);
    }
    out
}

/// Reconstructs the value encoded by base-`2^w` digits, wrapping mod `2^256`.
///
/// Inverse of [`radix_digits`]; used by the equivalence tests and handy for
/// debugging kernel tables.
pub fn radix_reconstruct(digits: &[u64], window_bits: u32) -> U256 {
    let mut acc = U256::ZERO;
    for &d in digits.iter().rev() {
        for _ in 0..window_bits {
            acc = acc.wrapping_add(&acc);
        }
        acc = acc.wrapping_add(&U256::from_u64(d));
    }
    acc
}

/// Decomposes `e` into w-ary non-adjacent form.
///
/// Digits are returned least-significant first; each digit is zero or an odd
/// value in `(-2^(w-1), 2^(w-1))`, and the value satisfies
/// `e = sum(d_i * 2^i)`. The output length is at most 257 (one carry bit past
/// the top of the input).
///
/// # Panics
///
/// Panics if `window_bits` is zero or exceeds [`MAX_WINDOW_BITS`].
pub fn naf_digits(e: &U256, window_bits: u32) -> Vec<i64> {
    assert!(
        (1..=MAX_WINDOW_BITS).contains(&window_bits),
        "window width {window_bits} out of range 1..={MAX_WINDOW_BITS}"
    );
    let modulus = 1i64 << window_bits;
    let half = modulus >> 1;
    let mut k = *e;
    let mut out = Vec::new();
    let mut carry = 0u64; // 0 or 1; propagates when a digit goes negative
    while !(k == U256::ZERO && carry == 0) {
        let low = (k.limbs()[0].wrapping_add(carry)) & ((modulus as u64) - 1);
        let digit = if low & 1 == 1 {
            let signed = low as i64;
            if signed >= half {
                signed - modulus
            } else {
                signed
            }
        } else {
            0
        };
        // Subtract the digit (add |digit| when negative) then halve.
        let with_carry = k.wrapping_add(&U256::from_u64(carry));
        let next = if digit >= 0 {
            with_carry.wrapping_sub(&U256::from_u64(digit as u64))
        } else {
            with_carry.wrapping_add(&U256::from_u64((-digit) as u64))
        };
        // `next` is even by construction; track whether the add overflowed
        // 2^256, which can only happen transiently for negative digits near
        // the top bit — fold that overflow into the carry chain.
        carry = if digit < 0 && next < with_carry { 1 } else { 0 };
        k = next.shr(1);
        if carry == 1 {
            // The overflow bit sits at position 255 after the shift.
            k = k.wrapping_add(&U256::from_limbs([0, 0, 0, 1u64 << 63]));
            carry = 0;
        }
        out.push(digit);
        if out.len() > 257 {
            break; // defensive: cannot happen for 256-bit inputs
        }
    }
    if out.is_empty() {
        out.push(0);
    }
    out
}

/// Reconstructs the value encoded by NAF digits, wrapping mod `2^256`.
pub fn naf_reconstruct(digits: &[i64]) -> U256 {
    let mut acc = U256::ZERO;
    for &d in digits.iter().rev() {
        acc = acc.wrapping_add(&acc);
        if d >= 0 {
            acc = acc.wrapping_add(&U256::from_u64(d as u64));
        } else {
            acc = acc.wrapping_sub(&U256::from_u64((-d) as u64));
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{DetRng, SplitMix64};
    use proptest::prelude::*;

    fn random_u256(rng: &mut SplitMix64) -> U256 {
        let mut limbs = [0u64; LIMBS];
        for l in &mut limbs {
            *l = rng.next_u64();
        }
        U256::from_limbs(limbs)
    }

    #[test]
    fn radix_digits_of_zero_are_all_zero() {
        for w in [1u32, 3, 4, 8, 13, 16] {
            let digits = radix_digits(&U256::ZERO, w);
            assert_eq!(digits.len() as u32, 256u32.div_ceil(w));
            assert!(digits.iter().all(|&d| d == 0));
        }
    }

    #[test]
    fn radix_digits_respect_the_window_bound() {
        let mut rng = SplitMix64::new(0x5eed_0001);
        for _ in 0..50 {
            let e = random_u256(&mut rng);
            for w in [1u32, 2, 4, 5, 8, 12, 16] {
                for &d in &radix_digits(&e, w) {
                    assert!(d < (1u64 << w));
                }
            }
        }
    }

    #[test]
    fn radix_roundtrip_on_random_values() {
        let mut rng = SplitMix64::new(0x5eed_0002);
        for _ in 0..100 {
            let e = random_u256(&mut rng);
            for w in [1u32, 3, 4, 6, 8, 11, 16] {
                let digits = radix_digits(&e, w);
                assert_eq!(radix_reconstruct(&digits, w), e, "w={w}");
            }
        }
    }

    #[test]
    fn naf_digits_are_odd_or_zero_and_bounded() {
        let mut rng = SplitMix64::new(0x5eed_0003);
        for _ in 0..50 {
            let e = random_u256(&mut rng);
            for w in [2u32, 4, 5, 8] {
                let half = 1i64 << (w - 1);
                for &d in &naf_digits(&e, w) {
                    assert!(d == 0 || d % 2 != 0, "w={w} digit {d} is even");
                    assert!(d > -half && d < half, "w={w} digit {d} out of range");
                }
            }
        }
    }

    #[test]
    fn naf_windows_have_one_nonzero_digit() {
        let mut rng = SplitMix64::new(0x5eed_0004);
        for _ in 0..50 {
            let e = random_u256(&mut rng);
            for w in [2u32, 4, 6] {
                let digits = naf_digits(&e, w);
                for (i, &d) in digits.iter().enumerate() {
                    if d != 0 {
                        let end = (i + w as usize).min(digits.len());
                        for (j, &next) in digits.iter().enumerate().take(end).skip(i + 1) {
                            assert_eq!(next, 0, "w={w}: digits {i} and {j} both set");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn naf_roundtrip_on_random_values() {
        let mut rng = SplitMix64::new(0x5eed_0005);
        for _ in 0..100 {
            let e = random_u256(&mut rng);
            for w in [2u32, 3, 4, 5, 8] {
                let digits = naf_digits(&e, w);
                assert_eq!(naf_reconstruct(&digits), e, "w={w}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_radix_roundtrip(a in any::<u64>(),
                                b in any::<u64>(),
                                w in 1u32..=16) {
            let e = U256::from_limbs([a, b, a ^ b, a.wrapping_mul(b)]);
            let digits = radix_digits(&e, w);
            prop_assert_eq!(radix_reconstruct(&digits, w), e);
        }

        #[test]
        fn prop_naf_roundtrip(a in any::<u64>(),
                              b in any::<u64>(),
                              w in 2u32..=8) {
            let e = U256::from_limbs([a, b, b.rotate_left(17), a | b]);
            let digits = naf_digits(&e, w);
            prop_assert_eq!(naf_reconstruct(&digits), e);
        }
    }
}
