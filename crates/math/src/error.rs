//! Error type shared by the arithmetic modules.

use core::fmt;

/// Errors produced by the arithmetic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MathError {
    /// A value was not strictly smaller than the modulus it was used with.
    ValueOutOfRange {
        /// Human-readable description of the offending operation.
        context: &'static str,
    },
    /// The modulus supplied to a Montgomery context was even or zero.
    InvalidModulus,
    /// A modular inverse was requested for a non-invertible element.
    NotInvertible,
    /// A hex string could not be parsed into a [`crate::U256`].
    InvalidHex,
    /// A fixed-point operation overflowed its underlying representation.
    FixedOverflow {
        /// The operation that overflowed.
        op: &'static str,
    },
    /// Division by zero in fixed-point arithmetic.
    DivisionByZero,
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::ValueOutOfRange { context } => {
                write!(f, "value out of range: {context}")
            }
            MathError::InvalidModulus => write!(f, "modulus must be odd and non-zero"),
            MathError::NotInvertible => write!(f, "element is not invertible"),
            MathError::InvalidHex => write!(f, "invalid hexadecimal string"),
            MathError::FixedOverflow { op } => write!(f, "fixed-point overflow in {op}"),
            MathError::DivisionByZero => write!(f, "fixed-point division by zero"),
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MathError::ValueOutOfRange { context: "encrypt" };
        assert!(e.to_string().contains("encrypt"));
        assert!(MathError::InvalidModulus.to_string().contains("odd"));
        assert!(MathError::NotInvertible.to_string().contains("invertible"));
        assert!(MathError::InvalidHex.to_string().contains("hex"));
        assert!(MathError::FixedOverflow { op: "mul" }
            .to_string()
            .contains("mul"));
        assert!(MathError::DivisionByZero.to_string().contains("division"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MathError::InvalidModulus, MathError::InvalidModulus);
        assert_ne!(MathError::InvalidModulus, MathError::InvalidHex);
    }
}
