//! Primality testing and safe-prime generation.
//!
//! DStress's message transfer protocol runs over a cyclic group of prime
//! order `q`.  We instantiate it as the order-`q` subgroup of `Z_p^*` for a
//! *safe prime* `p = 2q + 1`.  This module provides the Miller–Rabin test
//! and a deterministic safe-prime search used to derive the group
//! parameters baked into `dstress-crypto` (and used by its tests to verify
//! those constants).

use crate::field::{random_below, FpCtx};
use crate::rng::{DetRng, SplitMix64};
use crate::u256::U256;

/// Small primes used for trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Returns `true` if `n` is divisible by any of the small primes (and is
/// not itself that prime).
fn has_small_factor(n: &U256) -> bool {
    for &p in &SMALL_PRIMES {
        let p256 = U256::from_u64(p);
        if n == &p256 {
            return false;
        }
        if n.rem(&p256).is_zero() {
            return true;
        }
    }
    false
}

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// For the 256-bit values used in this crate, 40 rounds give an error
/// probability far below 2^-80.
pub fn is_probable_prime(n: &U256, rounds: u32, rng: &mut dyn DetRng) -> bool {
    if n < &U256::from_u64(2) {
        return false;
    }
    if !n.is_odd() {
        return n == &U256::from_u64(2);
    }
    for &p in &SMALL_PRIMES {
        let p256 = U256::from_u64(p);
        if n == &p256 {
            return true;
        }
    }
    if has_small_factor(n) {
        return false;
    }

    // Write n - 1 = d * 2^s with d odd.
    let n_minus_1 = n.wrapping_sub(&U256::ONE);
    let mut d = n_minus_1;
    let mut s = 0u32;
    while !d.is_odd() {
        d = d.shr(1);
        s += 1;
    }

    let ctx = FpCtx::new(*n).expect("n is odd and non-zero");
    let two = U256::from_u64(2);
    let n_minus_3 = n.wrapping_sub(&U256::from_u64(3));

    'witness: for _ in 0..rounds {
        // a uniform in [2, n-2].
        let a = random_below(rng, &n_minus_3).wrapping_add(&two);
        let a_elem = ctx.to_elem(a).expect("a < n");
        let mut x = ctx.pow(a_elem, &d);
        let one = ctx.one();
        let minus_one = ctx.to_elem(n_minus_1).expect("n-1 < n");
        if x == one || x == minus_one {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = ctx.square(x);
            if x == minus_one {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Convenience wrapper: Miller–Rabin with a fixed internal seed, suitable
/// for verification of hard-coded constants.
pub fn is_prime(n: &U256) -> bool {
    let mut rng = SplitMix64::new(0x5AFE_5AFE_5AFE_5AFE);
    is_probable_prime(n, 40, &mut rng)
}

/// The result of a safe-prime search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SafePrime {
    /// The safe prime `p = 2q + 1`.
    pub p: U256,
    /// The Sophie Germain prime `q = (p - 1) / 2`.
    pub q: U256,
    /// A generator of the order-`q` subgroup of `Z_p^*`.
    pub generator: U256,
}

/// Searches for a safe prime with the given bit length, starting from a
/// deterministic seed, and returns it together with a generator of its
/// prime-order subgroup.
///
/// The search is deterministic in `seed`, so the group parameters shipped
/// with `dstress-crypto` can be re-derived and verified by tests.
///
/// # Panics
///
/// Panics if `bits` is not in `[16, 256]`.
pub fn find_safe_prime(bits: u32, seed: u64) -> SafePrime {
    assert!((16..=256).contains(&bits), "bits must be in [16, 256]");
    let mut rng = SplitMix64::new(seed);

    loop {
        // Draw a random candidate q of (bits - 1) bits with both the top
        // and bottom bits set, so p = 2q + 1 has exactly `bits` bits.
        let mut limbs = [0u64; 4];
        for limb in limbs.iter_mut() {
            *limb = rng.next_u64();
        }
        let mut q = U256::from_limbs(limbs);
        // Truncate to bits - 1 bits.
        let shift = 256 - (bits - 1);
        q = q.shr(shift);
        // Force top bit and oddness.
        q = q.bitor(&U256::ONE.shl(bits - 2));
        q = q.bitor(&U256::ONE);

        if has_small_factor(&q) || !is_probable_prime(&q, 24, &mut rng) {
            continue;
        }
        let p = q.shl(1).wrapping_add(&U256::ONE);
        if has_small_factor(&p) || !is_probable_prime(&p, 24, &mut rng) {
            continue;
        }

        // Find a generator of the order-q subgroup: take h random in
        // [2, p-2] and set g = h^2 mod p; g generates the subgroup of
        // quadratic residues, which has prime order q. Reject g == 1.
        let ctx = FpCtx::new(p).expect("p is odd");
        loop {
            let h = random_below(&mut rng, &p.wrapping_sub(&U256::from_u64(3)))
                .wrapping_add(&U256::from_u64(2));
            let h_elem = ctx.to_elem(h).expect("h < p");
            let g = ctx.square(h_elem);
            if g != ctx.one() {
                return SafePrime {
                    p,
                    q,
                    generator: ctx.to_int(g),
                };
            }
        }
    }
}

/// Verifies that `(p, q, g)` are consistent safe-prime group parameters:
/// `p = 2q + 1`, both prime, and `g` generates a subgroup of order `q`.
pub fn verify_group_parameters(p: &U256, q: &U256, g: &U256) -> bool {
    if q.shl(1).wrapping_add(&U256::ONE) != *p {
        return false;
    }
    if !is_prime(p) || !is_prime(q) {
        return false;
    }
    let ctx = match FpCtx::new(*p) {
        Ok(ctx) => ctx,
        Err(_) => return false,
    };
    let g_elem = match ctx.to_elem(*g) {
        Ok(e) => e,
        Err(_) => return false,
    };
    if g_elem == ctx.one() || ctx.is_zero(g_elem) {
        return false;
    }
    // g^q == 1 ensures the order divides q; since q is prime and g != 1,
    // the order is exactly q.
    ctx.pow(g_elem, q) == ctx.one()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_are_prime() {
        for &p in &SMALL_PRIMES {
            assert!(is_prime(&U256::from_u64(p)), "{p} should be prime");
        }
    }

    #[test]
    fn small_composites_are_composite() {
        for c in [0u64, 1, 4, 6, 9, 15, 21, 25, 27, 33, 49, 121, 221, 1001] {
            assert!(!is_prime(&U256::from_u64(c)), "{c} should be composite");
        }
    }

    #[test]
    fn known_large_primes() {
        // 2^61 - 1 is a Mersenne prime.
        assert!(is_prime(&U256::from_u64((1u64 << 61) - 1)));
        // The Goldilocks prime.
        assert!(is_prime(&U256::from_u64(0xffff_ffff_0000_0001)));
        // The secp256k1 field prime.
        let p = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
            .unwrap();
        assert!(is_prime(&p));
    }

    #[test]
    fn known_large_composites() {
        // A 128-bit composite: product of two 64-bit primes.
        let a = U256::from_u64(0xffff_ffff_0000_0001);
        let b = U256::from_u64((1u64 << 61) - 1);
        let (lo, _) = a.mul_wide(&b);
        assert!(!is_prime(&lo));
        // Carmichael number 561 = 3 * 11 * 17 must be rejected.
        assert!(!is_prime(&U256::from_u64(561)));
        assert!(!is_prime(&U256::from_u64(41041)));
    }

    #[test]
    fn find_small_safe_prime() {
        let sp = find_safe_prime(32, 1);
        assert_eq!(sp.p.bits(), 32);
        assert!(verify_group_parameters(&sp.p, &sp.q, &sp.generator));
    }

    #[test]
    fn find_64_bit_safe_prime_is_deterministic() {
        let a = find_safe_prime(64, 42);
        let b = find_safe_prime(64, 42);
        assert_eq!(a, b);
        assert!(verify_group_parameters(&a.p, &a.q, &a.generator));
    }

    #[test]
    fn generator_has_prime_order() {
        let sp = find_safe_prime(48, 7);
        let ctx = FpCtx::new(sp.p).unwrap();
        let g = ctx.to_elem(sp.generator).unwrap();
        // g^q == 1 but g^1 != 1 and g^2 != 1 (q is odd so 2 does not divide it).
        assert_eq!(ctx.pow(g, &sp.q), ctx.one());
        assert_ne!(g, ctx.one());
    }

    #[test]
    fn verify_rejects_bad_parameters() {
        let sp = find_safe_prime(32, 3);
        // Wrong q.
        assert!(!verify_group_parameters(
            &sp.p,
            &sp.q.wrapping_add(&U256::ONE),
            &sp.generator
        ));
        // Generator 1 is rejected.
        assert!(!verify_group_parameters(&sp.p, &sp.q, &U256::ONE));
    }
}
