//! Regenerates the safe-prime group parameters embedded in `dstress-crypto`.
//!
//! Run with `cargo run -p dstress-math --release --example gen_group_params`.

use dstress_math::prime::find_safe_prime;

fn main() {
    for (bits, seed, label) in [(64u32, 0xD57E55_u64, "SIM64"), (256, 0xD57E55, "PROD256")] {
        let sp = find_safe_prime(bits, seed);
        println!("// {label}: {bits}-bit safe prime group (seed {seed:#x})");
        println!("p = 0x{}", sp.p.to_hex());
        println!("q = 0x{}", sp.q.to_hex());
        println!("g = 0x{}", sp.generator.to_hex());
    }
}
