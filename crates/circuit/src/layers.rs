//! Depth layering of circuits for round-batched GMW.
//!
//! GMW's wide-area cost is dominated by protocol *rounds*: every AND gate
//! needs one oblivious-transfer interaction per party pair, but AND gates
//! that do not depend on each other can share a single message exchange.
//! [`CircuitLayers`] partitions a flat, topologically ordered gate list
//! into *AND layers* — maximal sets of AND gates whose inputs are all
//! available before the layer runs — plus a schedule placing every free
//! gate (XOR/NOT/input/constant) into the earliest gap between layers at
//! which its inputs exist.  A round-batched evaluator then needs exactly
//! one exchange per pair per layer, so its round count is the circuit's
//! AND depth instead of its AND-gate count.
//!
//! The layer of a wire is defined inductively: inputs and constants sit at
//! layer 0, XOR/NOT inherit the maximum layer of their inputs, and an AND
//! gate sits one layer above the maximum layer of its inputs.  Layers are
//! computed over *all* gates (not only those reachable from an output),
//! because the GMW engine evaluates every gate in the list.
//!
//! ## Example
//!
//! ```
//! use dstress_circuit::{evaluate_layered, evaluate_wires, CircuitBuilder, CircuitLayers};
//!
//! // Two independent ANDs share a layer; the third depends on both.
//! let mut b = CircuitBuilder::new();
//! let (w, x) = (b.input(), b.input());
//! let (y, z) = (b.input(), b.input());
//! let p = b.and(w, x);
//! let q = b.and(y, z);
//! let r = b.and(p, q);
//! b.output(r);
//! let circuit = b.build().unwrap();
//!
//! let layers = CircuitLayers::of(&circuit);
//! assert_eq!(layers.rounds(), 2); // 3 AND gates, but only 2 layers
//! assert_eq!(layers.and_layers()[0], vec![p, q]);
//! assert_eq!(layers.and_layers()[1], vec![r]);
//!
//! // The layered schedule computes the same wire values as the flat walk.
//! let inputs = [true, true, true, false];
//! assert_eq!(
//!     evaluate_layered(&circuit, &layers, &inputs).unwrap(),
//!     evaluate_wires(&circuit, &inputs).unwrap(),
//! );
//! ```

use crate::ir::{Circuit, CircuitError, Gate, WireId};

/// The depth layering of a circuit: AND gates grouped into rounds, free
/// gates scheduled into the gaps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircuitLayers {
    /// `and_layers[r]` holds the AND-gate wires of round `r + 1`, in
    /// ascending (topological) wire order.  Every layer is non-empty.
    and_layers: Vec<Vec<WireId>>,
    /// `free_schedule[r]` holds the non-AND gates that become computable
    /// once AND round `r` has completed (`r = 0` means "before any
    /// round"), in ascending wire order.  Has `rounds() + 1` entries.
    free_schedule: Vec<Vec<WireId>>,
}

impl CircuitLayers {
    /// Computes the layering of a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let gates = circuit.gates();
        // layer[w] = number of AND gates on the longest path ending at w,
        // counting w itself if it is an AND gate.
        let mut layer = vec![0usize; gates.len()];
        let mut and_layers: Vec<Vec<WireId>> = Vec::new();
        for (i, gate) in gates.iter().enumerate() {
            let l = match *gate {
                Gate::Input(_) | Gate::ConstFalse | Gate::ConstTrue => 0,
                Gate::Xor(a, b) => layer[a].max(layer[b]),
                Gate::Not(a) => layer[a],
                Gate::And(a, b) => layer[a].max(layer[b]) + 1,
            };
            layer[i] = l;
            if matches!(gate, Gate::And(_, _)) {
                if and_layers.len() < l {
                    and_layers.resize_with(l, Vec::new);
                }
                and_layers[l - 1].push(i);
            }
        }
        let rounds = and_layers.len();
        let mut free_schedule = vec![Vec::new(); rounds + 1];
        for (i, gate) in gates.iter().enumerate() {
            if !matches!(gate, Gate::And(_, _)) {
                // A free gate's layer never exceeds the deepest AND layer.
                free_schedule[layer[i]].push(i);
            }
        }
        CircuitLayers {
            and_layers,
            free_schedule,
        }
    }

    /// Number of AND rounds (the circuit's AND depth over all gates).
    pub fn rounds(&self) -> usize {
        self.and_layers.len()
    }

    /// The AND gates of each round, ascending wire order within a round.
    pub fn and_layers(&self) -> &[Vec<WireId>] {
        &self.and_layers
    }

    /// The free-gate schedule: entry `r` lists the gates computable after
    /// AND round `r` (entry 0 before any round).  Always `rounds() + 1`
    /// entries.
    pub fn free_schedule(&self) -> &[Vec<WireId>] {
        &self.free_schedule
    }

    /// Total AND gates across all layers.
    pub fn and_gates(&self) -> usize {
        self.and_layers.iter().map(Vec::len).sum()
    }

    /// Size of the widest AND layer (the per-round batching factor).
    pub fn widest_layer(&self) -> usize {
        self.and_layers.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Evaluates a circuit by the layered schedule and returns the value on
/// every wire.
///
/// This is the plaintext reference for the round-batched GMW evaluator:
/// free gates run in schedule order, each AND layer runs as one batch.
/// The result must always equal [`crate::eval::evaluate_wires`] on the
/// flat gate walk (a property test in this module asserts it on random
/// circuits).
///
/// # Errors
///
/// Returns [`CircuitError::InputCountMismatch`] if the number of inputs is
/// wrong.
pub fn evaluate_layered(
    circuit: &Circuit,
    layers: &CircuitLayers,
    inputs: &[bool],
) -> Result<Vec<bool>, CircuitError> {
    if inputs.len() != circuit.num_inputs() {
        return Err(CircuitError::InputCountMismatch {
            expected: circuit.num_inputs(),
            actual: inputs.len(),
        });
    }
    let gates = circuit.gates();
    let mut values = vec![false; gates.len()];
    let eval_free = |values: &mut Vec<bool>, w: WireId| {
        values[w] = match gates[w] {
            Gate::Input(n) => inputs[n],
            Gate::ConstFalse => false,
            Gate::ConstTrue => true,
            Gate::Xor(a, b) => values[a] ^ values[b],
            Gate::Not(a) => !values[a],
            Gate::And(_, _) => unreachable!("AND gates are not in the free schedule"),
        };
    };
    for round in 0..=layers.rounds() {
        for &w in &layers.free_schedule()[round] {
            eval_free(&mut values, w);
        }
        if round < layers.rounds() {
            for &w in &layers.and_layers()[round] {
                let Gate::And(a, b) = gates[w] else {
                    unreachable!("AND layers hold only AND gates");
                };
                values[w] = values[a] && values[b];
            }
        }
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::eval::evaluate_wires;
    use proptest::prelude::*;

    #[test]
    fn independent_ands_share_a_layer() {
        // 32 independent AND gates: one layer of 32 gates.
        let mut b = CircuitBuilder::new();
        let mut outs = Vec::new();
        for _ in 0..32 {
            let x = b.input();
            let y = b.input();
            outs.push(b.and(x, y));
        }
        for o in outs {
            b.output(o);
        }
        let circuit = b.build().unwrap();
        let layers = CircuitLayers::of(&circuit);
        assert_eq!(layers.rounds(), 1);
        assert_eq!(layers.widest_layer(), 32);
        assert_eq!(layers.and_gates(), 32);
        assert_eq!(layers.free_schedule().len(), 2);
    }

    #[test]
    fn dependent_ands_stack_into_layers() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let mut acc = b.input();
        for _ in 0..5 {
            acc = b.and(acc, x);
        }
        b.output(acc);
        let circuit = b.build().unwrap();
        let layers = CircuitLayers::of(&circuit);
        assert_eq!(layers.rounds(), 5);
        assert_eq!(layers.widest_layer(), 1);
    }

    #[test]
    fn free_gates_between_layers_are_scheduled_late_enough() {
        // x XOR (a AND b) can only run after round 1.
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let a = b.input();
        let bb = b.input();
        let and = b.and(a, bb);
        let xor = b.xor(x, and);
        b.output(xor);
        let circuit = b.build().unwrap();
        let layers = CircuitLayers::of(&circuit);
        assert_eq!(layers.rounds(), 1);
        assert!(layers.free_schedule()[0].contains(&x));
        assert!(layers.free_schedule()[1].contains(&xor));
    }

    #[test]
    fn layers_cover_unreachable_gates() {
        // A deep AND chain that never feeds an output still gets layers:
        // the GMW engine evaluates every gate in the list.
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let dead1 = b.and(x, y);
        let _dead2 = b.and(dead1, y);
        let live = b.xor(x, y);
        b.output(live);
        let circuit = b.build().unwrap();
        let layers = CircuitLayers::of(&circuit);
        assert_eq!(layers.rounds(), 2);
        assert_eq!(layers.and_gates(), 2);
    }

    #[test]
    fn xor_only_circuit_has_zero_rounds() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let o = b.xor(x, y);
        b.output(o);
        let circuit = b.build().unwrap();
        let layers = CircuitLayers::of(&circuit);
        assert_eq!(layers.rounds(), 0);
        assert_eq!(layers.free_schedule().len(), 1);
        let wires = evaluate_layered(&circuit, &layers, &[true, false]).unwrap();
        assert_eq!(wires, evaluate_wires(&circuit, &[true, false]).unwrap());
    }

    #[test]
    fn input_count_is_checked() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        b.output(x);
        let circuit = b.build().unwrap();
        let layers = CircuitLayers::of(&circuit);
        assert!(evaluate_layered(&circuit, &layers, &[]).is_err());
    }

    /// A deterministic gate-soup circuit driven by proptest-chosen words:
    /// each word encodes one AND / XOR / NOT / MUX op over earlier wires.
    fn soup_circuit(inputs: usize, ops: &[u64]) -> Circuit {
        let mut b = CircuitBuilder::new();
        let mut pool: Vec<WireId> = (0..inputs).map(|_| b.input()).collect();
        for &op in ops {
            let (kind, i, j, k) = (op & 0xFF, op >> 8 & 0xFFFF, op >> 24 & 0xFFFF, op >> 40);
            let a = pool[i as usize % pool.len()];
            let c = pool[j as usize % pool.len()];
            let wire = match kind % 4 {
                0 => b.and(a, c),
                1 => b.xor(a, c),
                2 => b.not(a),
                _ => {
                    let sel = pool[k as usize % pool.len()];
                    b.mux(sel, a, c)
                }
            };
            pool.push(wire);
        }
        for &w in pool.iter().rev().take(3) {
            b.output(w);
        }
        b.build().expect("soup circuits are topologically valid")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The tentpole invariant: layered evaluation equals the flat
        /// topological walk on every wire of random circuits.
        #[test]
        fn prop_layered_evaluation_matches_flat(
            inputs in 2usize..8,
            ops in proptest::collection::vec(any::<u64>(), 1..60),
            bits in any::<u64>(),
        ) {
            let circuit = soup_circuit(inputs, &ops);
            let input_bits: Vec<bool> =
                (0..circuit.num_inputs()).map(|n| bits >> (n % 64) & 1 == 1).collect();
            let layers = CircuitLayers::of(&circuit);
            // Every AND gate appears in exactly one layer.
            prop_assert_eq!(layers.and_gates(), circuit.and_gates());
            let scheduled: usize =
                layers.free_schedule().iter().map(Vec::len).sum::<usize>() + layers.and_gates();
            prop_assert_eq!(scheduled, circuit.len());
            let flat = evaluate_wires(&circuit, &input_bits).unwrap();
            let layered = evaluate_layered(&circuit, &layers, &input_bits).unwrap();
            prop_assert_eq!(flat, layered);
        }
    }
}
