//! Analysis specifications: the facts a circuit's author declares so the
//! static analyzer (`dstress-analyze`) can certify the circuit.
//!
//! A [`CircuitSpec`] names each input word, bounds its value range, labels
//! its privacy taint and states the release policy.  A [`ProgramSpec`]
//! does the same for a `SecureVertexProgram`'s per-vertex state and
//! message layouts and names the *sensitivity model* under which the
//! program's declared sensitivity is to be certified.  The types live in
//! this crate (rather than in the analyzer) so that programs in
//! `dstress-core` and `dstress-finance` can annotate themselves without
//! depending on the analyzer.
//!
//! The analyzer treats every declared range as a *precondition* and every
//! model premise as a proof obligation: ranges it can check, it checks;
//! the few genuinely semantic steps (e.g. WCC's "one edge flips at most
//! one root indicator") are named lemmas that surface verbatim in the
//! analysis report as assumptions.

use core::fmt;

/// A closed integer interval `[lo, hi]` over mathematical integers.
///
/// Intervals track the *mathematical* value of a word, before any
/// wrapping; `i128` comfortably covers products of 64-bit words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i128,
    /// Inclusive upper bound.
    pub hi: i128,
}

impl Interval {
    /// Creates `[lo, hi]`; panics if `lo > hi` (caller bug).
    pub fn new(lo: i128, hi: i128) -> Self {
        assert!(lo <= hi, "interval lower bound above upper bound");
        Interval { lo, hi }
    }

    /// The single-point interval `[v, v]`.
    pub fn point(v: i128) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The full unsigned range of a `width`-bit word, `[0, 2^width - 1]`.
    pub fn unsigned(width: u32) -> Self {
        Interval {
            lo: 0,
            hi: (1i128 << width) - 1,
        }
    }

    /// The full signed two's-complement range of a `width`-bit word.
    pub fn signed(width: u32) -> Self {
        Interval {
            lo: -(1i128 << (width - 1)),
            hi: (1i128 << (width - 1)) - 1,
        }
    }

    /// Smallest interval containing both operands.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(self, v: i128) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether every point of `other` lies inside `self`.
    pub fn contains_interval(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// The diameter `hi - lo` (0 for a point).
    pub fn width(self) -> i128 {
        self.hi - self.lo
    }

    /// True when the mathematical values fit a `width`-bit unsigned word.
    pub fn fits_unsigned(self, width: u32) -> bool {
        Interval::unsigned(width).contains_interval(self)
    }

    /// True when the values fit a `width`-bit two's-complement word.
    pub fn fits_signed(self, width: u32) -> bool {
        Interval::signed(width).contains_interval(self)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Privacy taint carried by an input word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Taint {
    /// Publicly known (constants, public parameters).
    Public,
    /// A participant's private data; must not reach a released output
    /// without passing through noise.
    Private,
    /// Distributed noise-generation randomness: the sanctioned channel
    /// through which private values may be released.
    Noise,
}

/// How the outputs of a circuit are used, which determines what the
/// information-flow analysis must prove about them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowPolicy {
    /// Outputs stay secret-shared inside the MPC (update and aggregation
    /// circuits): no flow restriction, taint is only propagated onward.
    Internal,
    /// Outputs are reconstructed and released: every output wire touched
    /// by private taint must also carry noise taint.
    NoisedRelease,
}

/// Declared facts about one input word.
#[derive(Clone, Debug)]
pub struct WordSpec {
    /// Human-readable name, used in findings ("prorate", "rank").
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Declared value range (a precondition on callers), or `None` for
    /// the full unsigned range of the width.
    pub range: Option<Interval>,
    /// Privacy label.
    pub taint: Taint,
}

impl WordSpec {
    /// A private word with a declared range.
    pub fn private(name: &str, width: u32, range: Interval) -> Self {
        WordSpec {
            name: name.to_string(),
            width,
            range: Some(range),
            taint: Taint::Private,
        }
    }

    /// A noise-randomness word spanning its full unsigned range.
    pub fn noise(name: &str, width: u32) -> Self {
        WordSpec {
            name: name.to_string(),
            width,
            range: None,
            taint: Taint::Noise,
        }
    }

    /// A public word with a declared range.
    pub fn public(name: &str, width: u32, range: Interval) -> Self {
        WordSpec {
            name: name.to_string(),
            width,
            range: Some(range),
            taint: Taint::Public,
        }
    }

    /// The effective range: the declared one, or full unsigned.
    pub fn effective_range(&self) -> Interval {
        self.range.unwrap_or_else(|| Interval::unsigned(self.width))
    }
}

/// Declared facts about a released value, checked against the certified
/// output interval.
#[derive(Clone, Debug)]
pub struct ReleaseSpec {
    /// The window inside which the released value must land for the
    /// decoding side (e.g. a dlog recovery table) to recover it.
    pub window: Interval,
    /// Where the window comes from ("signed 32-bit decode",
    /// "DlogTable::new_signed(600)").
    pub description: String,
}

/// The specification for analyzing one standalone circuit.
#[derive(Clone, Debug)]
pub struct CircuitSpec {
    /// Name used in reports and findings.
    pub name: String,
    /// Input words in input order; total width must equal the circuit's
    /// input count.
    pub inputs: Vec<WordSpec>,
    /// Output word widths, splitting the circuit's flat output list into
    /// words for per-word interval reporting.  Empty means "one word
    /// spanning all outputs".
    pub output_words: Vec<u32>,
    /// What the outputs are used for.
    pub policy: FlowPolicy,
    /// Release window for the outputs, when they are released.
    pub release: Option<ReleaseSpec>,
    /// When true, all arithmetic in this circuit is *intended* to be
    /// modular (mod 2^width); the range analysis skips overflow findings
    /// and tracks full-width ranges only.
    pub modular: bool,
    /// Pointwise dominance preconditions: `(a, b)` declares that input
    /// word `a`'s value is always >= input word `b`'s value, letting the
    /// analyzer bound `a - b` in `[0, hi(a)]`.
    pub dominance: Vec<(usize, usize)>,
}

impl CircuitSpec {
    /// A minimal spec: named inputs, internal policy, nothing declared.
    pub fn internal(name: &str, inputs: Vec<WordSpec>) -> Self {
        CircuitSpec {
            name: name.to_string(),
            inputs,
            output_words: Vec::new(),
            policy: FlowPolicy::Internal,
            release: None,
            modular: false,
            dominance: Vec::new(),
        }
    }
}

/// A checkable premise of an [`SensitivityModel::ExternalLemma`].
#[derive(Clone, Debug)]
pub enum RangePremise {
    /// The update circuit's output for state word `index` must stay
    /// within `range`.
    StateWordWithin {
        /// Index into the program's state-word layout.
        index: usize,
        /// The required interval.
        range: Interval,
    },
    /// Every message word the update circuit emits must stay within
    /// `range`.
    MessagesWithin {
        /// The required interval.
        range: Interval,
    },
}

/// Under which model the analyzer certifies a program's declared
/// sensitivity against neighbouring inputs (edge-level DP: neighbouring
/// graphs differ in one directed edge).
#[derive(Clone, Debug)]
pub enum SensitivityModel {
    /// No model declared.  The analyzer reports a finding: unannotated
    /// programs do not pass the gate.
    Unspecified,
    /// The program's arithmetic is intentionally modular (benchmark
    /// counters); its sensitivity declaration is not certified and the
    /// program must not be used for calibrated releases.
    Modular {
        /// Why modular wrap is acceptable for this program.
        reason: String,
    },
    /// Sensitivity is bounded by the diameter of the certified aggregate
    /// output range (valid when the whole range is reachable and any two
    /// neighbouring runs stay inside it, e.g. SSSP's truncated hop
    /// distance).
    OutputRange,
    /// One neighbouring edge changes exactly `changed_state_words`
    /// initial state words; the update circuit must be message-free and
    /// state-local so the change never spreads, and the aggregation must
    /// decompose into per-vertex terms (degree histograms).
    LocalizedDelta {
        /// How many per-vertex state words a neighbouring edge can touch.
        changed_state_words: usize,
    },
    /// The aggregation decomposes into per-vertex indicator terms and a
    /// named lemma bounds how many terms a neighbouring edge can flip
    /// (WCC root counting).
    DecomposedCounting {
        /// Maximum number of terms a single edge change can flip.
        max_changed_terms: u64,
        /// The semantic lemma justifying `max_changed_terms`.
        lemma: String,
    },
    /// The update circuit is a contraction with dyadic damping factor
    /// `d = 2^-damping_shift` in the L1 norm over vertices; sensitivity
    /// is the geometric series bound `2d / (1 - d)` (PageRank).
    GeometricContraction {
        /// The shift: damping factor is `2^-damping_shift`.
        damping_shift: u32,
        /// The L1 mass-conservation lemma the series bound rests on.
        lemma: String,
    },
    /// The bound comes from an external theorem (the paper's financial
    /// lemmas); the analyzer certifies the listed range premises and
    /// surfaces the lemma as a named assumption.
    ExternalLemma {
        /// The theorem being invoked.
        lemma: String,
        /// Premises the analyzer must certify on the circuits.
        premises: Vec<RangePremise>,
    },
}

/// The specification for analyzing a `SecureVertexProgram`.
#[derive(Clone, Debug)]
pub struct ProgramSpec {
    /// Program name used in reports.
    pub name: String,
    /// Per-vertex state layout; widths must sum to `state_bits`.  Ranges
    /// bound the *initial* state produced by `encode_initial_state`.
    pub state_words: Vec<WordSpec>,
    /// Per-slot message layout; widths must sum to `message_bits`.
    /// Declared ranges, when present, are checked as a message-range
    /// invariant against the certified update outputs.
    pub message_words: Vec<WordSpec>,
    /// The sensitivity certification model.
    pub sensitivity_model: SensitivityModel,
    /// Modular-arithmetic escape hatch, as in [`CircuitSpec::modular`].
    pub modular: bool,
    /// Dominance preconditions on the update circuit, expressed over
    /// (state word index | message slot), see [`ProgramInputRef`].
    pub dominance: Vec<(ProgramInputRef, ProgramInputRef)>,
    /// A mass-conservation cap: when set, any `sum` gadget whose inputs
    /// are exactly message input words is certified against `[0, cap]`
    /// instead of the naive per-slot sum (PageRank's L1 lemma: total
    /// incoming mass is bounded by the total rank in the system).
    pub message_sum_cap: Option<i128>,
}

/// Reference to an input word of a program's update circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgramInputRef {
    /// The `i`-th word of the per-vertex state layout.
    State(usize),
    /// The `w`-th word of the `d`-th incoming message slot.
    Message(usize, usize),
}

impl ProgramSpec {
    /// The placeholder spec for programs that have not been annotated.
    /// Analyzing it yields a `MissingSpec` finding.
    pub fn unspecified(name: &str) -> Self {
        ProgramSpec {
            name: name.to_string(),
            state_words: Vec::new(),
            message_words: Vec::new(),
            sensitivity_model: SensitivityModel::Unspecified,
            modular: false,
            dominance: Vec::new(),
            message_sum_cap: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let a = Interval::new(-3, 7);
        assert!(a.contains(0));
        assert!(!a.contains(8));
        assert_eq!(a.width(), 10);
        assert_eq!(a.hull(Interval::point(20)).hi, 20);
        assert_eq!(a.intersect(Interval::new(5, 9)), Some(Interval::new(5, 7)));
        assert_eq!(a.intersect(Interval::new(8, 9)), None);
    }

    #[test]
    fn interval_windows() {
        assert!(Interval::new(0, 255).fits_unsigned(8));
        assert!(!Interval::new(0, 256).fits_unsigned(8));
        assert!(Interval::new(-128, 127).fits_signed(8));
        assert!(!Interval::new(-129, 0).fits_signed(8));
        assert_eq!(Interval::unsigned(4), Interval::new(0, 15));
        assert_eq!(Interval::signed(4), Interval::new(-8, 7));
    }

    #[test]
    fn word_spec_ranges() {
        let w = WordSpec::private("degree", 8, Interval::new(0, 12));
        assert_eq!(w.effective_range(), Interval::new(0, 12));
        let n = WordSpec::noise("coins", 16);
        assert_eq!(n.effective_range(), Interval::unsigned(16));
        assert_eq!(n.taint, Taint::Noise);
    }

    #[test]
    fn interval_display() {
        assert_eq!(Interval::new(-2, 9).to_string(), "[-2, 9]");
    }
}
