//! Plaintext circuit evaluation.
//!
//! The evaluator serves two roles: it is the reference against which the
//! GMW engine is tested (evaluating the same circuit on reconstructed
//! inputs must give the same outputs as the MPC), and it implements the
//! "ideal functionality" used by the fast simulation mode of the MPC
//! engine when only costs — not cryptography — are being measured.

use crate::ir::{Circuit, CircuitError, Gate};

/// Evaluates a circuit on plaintext inputs, returning the output bits in
/// the order they were declared.
///
/// # Errors
///
/// Returns [`CircuitError::InputCountMismatch`] if the number of inputs is
/// wrong.
pub fn evaluate(circuit: &Circuit, inputs: &[bool]) -> Result<Vec<bool>, CircuitError> {
    let values = evaluate_wires(circuit, inputs)?;
    Ok(circuit.outputs().iter().map(|&o| values[o]).collect())
}

/// Evaluates a circuit and returns the value on *every* wire.
///
/// The GMW engine uses this in tests to compare intermediate wire values.
///
/// # Errors
///
/// Returns [`CircuitError::InputCountMismatch`] if the number of inputs is
/// wrong.
pub fn evaluate_wires(circuit: &Circuit, inputs: &[bool]) -> Result<Vec<bool>, CircuitError> {
    if inputs.len() != circuit.num_inputs() {
        return Err(CircuitError::InputCountMismatch {
            expected: circuit.num_inputs(),
            actual: inputs.len(),
        });
    }
    let mut values = Vec::with_capacity(circuit.len());
    for gate in circuit.gates() {
        let v = match *gate {
            Gate::Input(n) => inputs[n],
            Gate::ConstFalse => false,
            Gate::ConstTrue => true,
            Gate::Xor(a, b) => values[a] ^ values[b],
            Gate::And(a, b) => values[a] && values[b],
            Gate::Not(a) => !values[a],
        };
        values.push(v);
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn evaluates_simple_formula() {
        // out = (a AND b) XOR (NOT c)
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let z = b.input();
        let and = b.and(x, y);
        let not = b.not(z);
        let out = b.xor(and, not);
        b.output(out);
        let c = b.build().unwrap();

        for (a_v, b_v, c_v) in [
            (false, false, false),
            (true, true, false),
            (true, true, true),
            (true, false, true),
        ] {
            let expected = (a_v && b_v) ^ !c_v;
            assert_eq!(evaluate(&c, &[a_v, b_v, c_v]).unwrap()[0], expected);
        }
    }

    #[test]
    fn constants_evaluate() {
        let mut b = CircuitBuilder::new();
        let t = b.const_bit(true);
        let f = b.const_bit(false);
        b.output(t);
        b.output(f);
        let c = b.build().unwrap();
        assert_eq!(evaluate(&c, &[]).unwrap(), vec![true, false]);
    }

    #[test]
    fn input_count_is_checked() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        b.output(x);
        let c = b.build().unwrap();
        assert!(matches!(
            evaluate(&c, &[]).unwrap_err(),
            CircuitError::InputCountMismatch {
                expected: 1,
                actual: 0
            }
        ));
        assert!(evaluate(&c, &[true, false]).is_err());
    }

    #[test]
    fn wire_values_are_exposed() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let and = b.and(x, y);
        b.output(and);
        let c = b.build().unwrap();
        let wires = evaluate_wires(&c, &[true, true]).unwrap();
        assert_eq!(wires, vec![true, true, true]);
    }
}
