//! Circuit statistics.
//!
//! GMW's costs are determined almost entirely by the circuit shape: each
//! AND gate requires one oblivious-transfer interaction per party pair,
//! XOR and NOT gates are free, and the number of communication rounds is
//! the circuit's *AND depth*.  [`CircuitStats`] extracts those quantities;
//! the cost model in `dstress-core` turns them into the time and traffic
//! projections of Figures 3, 4 and 6.

use crate::ir::{Circuit, Gate};

/// Summary statistics of a circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitStats {
    /// Number of input wires.
    pub inputs: usize,
    /// Number of output wires.
    pub outputs: usize,
    /// Number of AND gates (each costs one OT per ordered party pair in GMW).
    pub and_gates: usize,
    /// Number of XOR gates (free in GMW).
    pub xor_gates: usize,
    /// Number of NOT gates (free in GMW).
    pub not_gates: usize,
    /// Total gates including inputs and constants.
    pub total_gates: usize,
    /// AND depth: the longest chain of AND gates from any input to any
    /// output, which determines the number of GMW communication rounds.
    pub and_depth: usize,
}

impl CircuitStats {
    /// Computes statistics for a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let mut and_gates = 0;
        let mut xor_gates = 0;
        let mut not_gates = 0;
        // depth[w] = number of AND gates on the longest path ending at w.
        let mut depth = vec![0usize; circuit.len()];
        for (i, gate) in circuit.gates().iter().enumerate() {
            match *gate {
                Gate::Input(_) | Gate::ConstFalse | Gate::ConstTrue => {}
                Gate::Xor(a, b) => {
                    xor_gates += 1;
                    depth[i] = depth[a].max(depth[b]);
                }
                Gate::And(a, b) => {
                    and_gates += 1;
                    depth[i] = depth[a].max(depth[b]) + 1;
                }
                Gate::Not(a) => {
                    not_gates += 1;
                    depth[i] = depth[a];
                }
            }
        }
        let and_depth = circuit
            .outputs()
            .iter()
            .map(|&o| depth[o])
            .max()
            .unwrap_or(0);
        CircuitStats {
            inputs: circuit.num_inputs(),
            outputs: circuit.outputs().len(),
            and_gates,
            xor_gates,
            not_gates,
            total_gates: circuit.len(),
            and_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn counts_gate_kinds() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let a1 = b.and(x, y);
        let x1 = b.xor(a1, y);
        let n1 = b.not(x1);
        let a2 = b.and(n1, a1);
        b.output(a2);
        let stats = CircuitStats::of(&b.build().unwrap());
        assert_eq!(stats.inputs, 2);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.and_gates, 2);
        assert_eq!(stats.xor_gates, 1);
        assert_eq!(stats.not_gates, 1);
        assert_eq!(stats.and_depth, 2);
        assert_eq!(stats.total_gates, 6);
    }

    #[test]
    fn xor_only_circuit_has_zero_depth() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let o = b.xor(x, y);
        b.output(o);
        let stats = CircuitStats::of(&b.build().unwrap());
        assert_eq!(stats.and_depth, 0);
        assert_eq!(stats.and_gates, 0);
    }

    #[test]
    fn adder_depth_grows_linearly() {
        // Ripple-carry adders have AND depth proportional to the width.
        let widths = [8u32, 16, 32];
        let mut depths = Vec::new();
        for w in widths {
            let mut b = CircuitBuilder::new();
            let x = b.input_word(w);
            let y = b.input_word(w);
            let s = b.add(&x, &y);
            b.output_word(&s);
            depths.push(CircuitStats::of(&b.build().unwrap()).and_depth);
        }
        assert!(depths[0] < depths[1] && depths[1] < depths[2]);
    }

    #[test]
    fn empty_output_circuit() {
        let mut b = CircuitBuilder::new();
        let _ = b.input();
        let stats = CircuitStats::of(&b.build().unwrap());
        assert_eq!(stats.outputs, 0);
        assert_eq!(stats.and_depth, 0);
    }

    #[test]
    fn multiplier_dominates_adder() {
        let mut b = CircuitBuilder::new();
        let x = b.input_word(16);
        let y = b.input_word(16);
        let s = b.add(&x, &y);
        b.output_word(&s);
        let add_stats = CircuitStats::of(&b.build().unwrap());

        let mut b = CircuitBuilder::new();
        let x = b.input_word(16);
        let y = b.input_word(16);
        let p = b.mul(&x, &y);
        b.output_word(&p);
        let mul_stats = CircuitStats::of(&b.build().unwrap());

        assert!(mul_stats.and_gates > 8 * add_stats.and_gates);
        assert!(mul_stats.and_depth > add_stats.and_depth);
    }
}
