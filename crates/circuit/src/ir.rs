//! Circuit intermediate representation.
//!
//! A [`Circuit`] is a flat, topologically ordered list of gates.  Wire `i`
//! is the output of gate `i`; the first `num_inputs` gates are
//! [`Gate::Input`] placeholders.  This representation is deliberately
//! simple: the GMW engine walks the gate list once per evaluation, and the
//! statistics module only needs gate counts and fan-in information.

use core::fmt;

use crate::gadgets::GadgetEvent;

/// Identifier of a wire (the index of the gate that drives it).
pub type WireId = usize;

/// A single gate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Gate {
    /// The `n`-th circuit input.
    Input(usize),
    /// Constant false.
    ConstFalse,
    /// Constant true.
    ConstTrue,
    /// Exclusive OR of two wires (free in GMW).
    Xor(WireId, WireId),
    /// Logical AND of two wires (requires an OT round in GMW).
    And(WireId, WireId),
    /// Negation of a wire (free in GMW: only one party flips its share).
    Not(WireId),
}

/// Errors raised when constructing or validating circuits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate referenced a wire that has not been defined yet.
    ForwardReference {
        /// The gate index containing the bad reference.
        gate: usize,
        /// The referenced wire.
        wire: WireId,
    },
    /// The number of provided input values does not match the circuit.
    InputCountMismatch {
        /// Inputs the circuit declares.
        expected: usize,
        /// Inputs provided by the caller.
        actual: usize,
    },
    /// An output referenced a non-existent wire.
    InvalidOutput {
        /// The offending wire id.
        wire: WireId,
    },
    /// An input gate referenced an input index at or beyond the declared
    /// input count.  Previously this was unchecked and evaluation panicked
    /// on an out-of-bounds index; validation now rejects it up front so
    /// the analyzer and the engine can report the malformed circuit.
    InputIndexOutOfRange {
        /// The gate index of the offending [`Gate::Input`].
        gate: usize,
        /// The referenced input index.
        index: usize,
        /// The circuit's declared input count.
        num_inputs: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::ForwardReference { gate, wire } => {
                write!(f, "gate {gate} references undefined wire {wire}")
            }
            CircuitError::InputCountMismatch { expected, actual } => {
                write!(f, "circuit expects {expected} inputs, got {actual}")
            }
            CircuitError::InvalidOutput { wire } => write!(f, "invalid output wire {wire}"),
            CircuitError::InputIndexOutOfRange {
                gate,
                index,
                num_inputs,
            } => {
                write!(
                    f,
                    "gate {gate} reads input {index} but the circuit declares {num_inputs} inputs"
                )
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// A Boolean circuit.
#[derive(Clone, Debug)]
pub struct Circuit {
    gates: Vec<Gate>,
    num_inputs: usize,
    outputs: Vec<WireId>,
    gadgets: Vec<GadgetEvent>,
}

impl Circuit {
    /// Creates a circuit from parts, validating the topological order.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if any gate references a wire at or after
    /// its own position, reads a non-existent input index, or if an
    /// output references a non-existent wire.
    pub fn new(
        gates: Vec<Gate>,
        num_inputs: usize,
        outputs: Vec<WireId>,
    ) -> Result<Self, CircuitError> {
        Circuit::with_gadgets(gates, num_inputs, outputs, Vec::new())
    }

    /// Creates a circuit carrying a word-level gadget trace (recorded by
    /// [`crate::CircuitBuilder`]), with the same validation as
    /// [`Circuit::new`].
    ///
    /// # Errors
    ///
    /// See [`Circuit::new`].
    pub fn with_gadgets(
        gates: Vec<Gate>,
        num_inputs: usize,
        outputs: Vec<WireId>,
        gadgets: Vec<GadgetEvent>,
    ) -> Result<Self, CircuitError> {
        for (idx, gate) in gates.iter().enumerate() {
            let check = |wire: WireId| -> Result<(), CircuitError> {
                if wire >= idx {
                    Err(CircuitError::ForwardReference { gate: idx, wire })
                } else {
                    Ok(())
                }
            };
            match gate {
                Gate::Input(n) => {
                    if *n >= num_inputs {
                        return Err(CircuitError::InputIndexOutOfRange {
                            gate: idx,
                            index: *n,
                            num_inputs,
                        });
                    }
                }
                Gate::ConstFalse | Gate::ConstTrue => {}
                Gate::Xor(a, b) | Gate::And(a, b) => {
                    check(*a)?;
                    check(*b)?;
                }
                Gate::Not(a) => check(*a)?,
            }
        }
        for &o in &outputs {
            if o >= gates.len() {
                return Err(CircuitError::InvalidOutput { wire: o });
            }
        }
        Ok(Circuit {
            gates,
            num_inputs,
            outputs,
            gadgets,
        })
    }

    /// The gate list, in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of input wires.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The output wire list.
    pub fn outputs(&self) -> &[WireId] {
        &self.outputs
    }

    /// Total number of gates (including inputs and constants).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of AND gates — the only gates that cost communication in GMW.
    pub fn and_gates(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::And(_, _)))
            .count()
    }

    /// Number of XOR gates.
    pub fn xor_gates(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Xor(_, _)))
            .count()
    }

    /// The word-level gadget trace recorded by the builder (empty for
    /// circuits assembled gate by gate).  Advisory only: evaluation and
    /// the GMW engine never consult it.
    pub fn gadgets(&self) -> &[GadgetEvent] {
        &self.gadgets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_circuit_constructs() {
        // out = (in0 AND in1) XOR in2
        let gates = vec![
            Gate::Input(0),
            Gate::Input(1),
            Gate::Input(2),
            Gate::And(0, 1),
            Gate::Xor(3, 2),
        ];
        let c = Circuit::new(gates, 3, vec![4]).unwrap();
        assert_eq!(c.len(), 5);
        assert_eq!(c.num_inputs(), 3);
        assert_eq!(c.and_gates(), 1);
        assert_eq!(c.xor_gates(), 1);
        assert!(!c.is_empty());
        assert_eq!(c.outputs(), &[4]);
    }

    #[test]
    fn forward_reference_is_rejected() {
        let gates = vec![Gate::Input(0), Gate::And(0, 5)];
        let err = Circuit::new(gates, 1, vec![1]).unwrap_err();
        assert!(matches!(
            err,
            CircuitError::ForwardReference { gate: 1, wire: 5 }
        ));
    }

    #[test]
    fn self_reference_is_rejected() {
        let gates = vec![Gate::Input(0), Gate::Not(1)];
        assert!(Circuit::new(gates, 1, vec![1]).is_err());
    }

    #[test]
    fn invalid_output_is_rejected() {
        let gates = vec![Gate::Input(0)];
        let err = Circuit::new(gates, 1, vec![3]).unwrap_err();
        assert_eq!(err, CircuitError::InvalidOutput { wire: 3 });
    }

    #[test]
    fn input_index_out_of_range_is_rejected() {
        // Declares one input but reads input index 3: previously this
        // passed validation and panicked at evaluation time.
        let gates = vec![Gate::Input(0), Gate::Input(3)];
        let err = Circuit::new(gates, 1, vec![1]).unwrap_err();
        assert_eq!(
            err,
            CircuitError::InputIndexOutOfRange {
                gate: 1,
                index: 3,
                num_inputs: 1
            }
        );
        assert!(err.to_string().contains("input 3"));
    }

    #[test]
    fn error_display() {
        let e = CircuitError::InputCountMismatch {
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains('4'));
        assert!(CircuitError::InvalidOutput { wire: 9 }
            .to_string()
            .contains('9'));
        assert!(CircuitError::ForwardReference { gate: 1, wire: 2 }
            .to_string()
            .contains("undefined"));
    }
}
