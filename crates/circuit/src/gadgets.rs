//! The word-level gadget trace.
//!
//! Bit-level abstract interpretation over raw XOR/AND/NOT gates cannot
//! recover tight arithmetic facts: the sum bits of a ripple-carry adder
//! all look unconstrained one bit at a time.  The builder therefore
//! records a [`GadgetEvent`] for every *top-level* word-level gadget it
//! emits — an adder, comparator, multiplexer, multiplier, divider and so
//! on — and [`crate::Circuit`] carries the trace alongside the gate list.
//! `dstress-analyze` walks the trace to propagate word intervals,
//! relational deltas and decomposition facts exactly, falling back to the
//! bit domain only for wires no gadget explains.
//!
//! "Top level" means: gadgets emitted while another gadget is being built
//! (the subtractor inside `lt_unsigned`, the adders inside `mul_full`) are
//! *not* recorded; the outer gadget's event subsumes them.  The trace is
//! purely advisory — evaluation and the GMW engine never look at it — but
//! the analyzer cross-checks every event structurally against the gate
//! list before trusting it, and the interval soundness proptests pin the
//! event semantics against concrete evaluation.

use crate::ir::WireId;

/// A fixed-width little-endian word of wires (re-declared here to avoid a
/// circular import with [`crate::builder`]).
pub type GadgetWord = Vec<WireId>;

/// What kind of word-level operation a [`GadgetEvent`] describes.
///
/// Shift amounts, fractional bits and constant values ride along in the
/// variant so the analyzer can replay the exact arithmetic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GadgetKind {
    /// `input_word`: a fresh word of circuit inputs.
    InputWord,
    /// `const_word(value)`.
    ConstWord(u64),
    /// Wrapping addition of two equal-width words.
    Add,
    /// Wrapping two's-complement subtraction `a - b`.
    Sub,
    /// Two's-complement negation.
    Neg,
    /// Unsigned comparison `a < b` (single output bit).
    LtUnsigned,
    /// Signed comparison `a < b` (single output bit).
    LtSigned,
    /// Word equality test (single output bit).
    EqWord,
    /// Bit OR (single output bit).
    Or,
    /// Bit multiplexer `if sel { a } else { b }`; the selector is
    /// `inputs[0]`'s single wire.
    MuxBit,
    /// Word multiplexer; the selector is the single wire of `inputs[0]`.
    MuxWord,
    /// Signed clamp to zero, `max(a, 0)`.
    Relu,
    /// Unsigned minimum.
    MinUnsigned,
    /// Unsigned maximum.
    MaxUnsigned,
    /// Bitwise XOR of words.
    XorWord,
    /// Bitwise NOT of a word.
    NotWord,
    /// Zero extension to a wider word.
    ZeroExtend,
    /// Truncation to the low bits.
    Truncate,
    /// Left shift by a constant, width preserved (high bits dropped).
    ShlConst(u32),
    /// Logical right shift by a constant, width preserved.
    ShrConst(u32),
    /// Full-width unsigned product.
    MulFull,
    /// Unsigned product truncated to the width of the first operand.
    Mul,
    /// Fixed-point product `(a * b) >> frac_bits`, truncated.
    MulFixed(u32),
    /// Fixed-point restoring division `(a << frac_bits) / b`, truncated;
    /// division by zero saturates to all ones.
    DivFixed(u32),
    /// Wrapping sum of a list of equal-width words.
    Sum,
}

/// One recorded top-level gadget: its kind, input words and output word.
///
/// Single-bit operands and results are represented as one-wire words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GadgetEvent {
    /// The operation.
    pub kind: GadgetKind,
    /// Input words, in the gadget's argument order.  For `MuxBit` and
    /// `MuxWord` the first word is the one-wire selector.
    pub inputs: Vec<GadgetWord>,
    /// The output word (one wire for comparisons and bit gadgets).
    pub output: GadgetWord,
}

impl GadgetEvent {
    /// Convenience accessor: the selector wire of a mux event.
    pub fn mux_selector(&self) -> Option<WireId> {
        match self.kind {
            GadgetKind::MuxBit | GadgetKind::MuxWord => {
                self.inputs.first().and_then(|w| w.first()).copied()
            }
            _ => None,
        }
    }
}
