//! Boolean circuits for the DStress MPC runtime.
//!
//! DStress executes every vertex-program step inside a small multi-party
//! computation; the GMW protocol it uses (and that we reproduce in
//! `dstress-mpc`) evaluates *Boolean circuits*.  This crate provides:
//!
//! * [`ir`] — the circuit intermediate representation: a flat list of
//!   XOR / AND / NOT / constant gates over single-bit wires.
//! * [`builder`] — a gadget library for constructing circuits: adders,
//!   subtractors, comparators, multiplexers, multipliers and a restoring
//!   fixed-point divider, over two's-complement words of configurable
//!   width.  These are the building blocks of the Eisenberg–Noe and
//!   Elliott–Golub–Jackson update circuits in `dstress-finance`.
//! * [`eval`] — a plaintext evaluator, used both as the correctness
//!   reference for the MPC engine and to execute the "ideal functionality"
//!   in tests.
//! * [`stats`] — gate-count and depth statistics.  GMW's communication and
//!   round costs are driven by the number of AND gates and the AND depth,
//!   so these statistics are what the cost model in `dstress-core`
//!   consumes.
//! * [`layers`] — the depth layering pass: AND gates partitioned into
//!   independent rounds, free gates scheduled into the gaps.  This is what
//!   lets the GMW engine batch a whole layer of OTs into one message
//!   exchange per party pair, making round counts scale with circuit
//!   depth instead of AND-gate count.
//! * [`gadgets`] — the word-level gadget trace the builder records, which
//!   lets the static analyzer in `dstress-analyze` reason about adders
//!   and multipliers as arithmetic instead of bit soup.
//! * [`spec`] — analysis specifications: declared input ranges, privacy
//!   taints, release windows and sensitivity models, consumed by
//!   `dstress-analyze` to certify circuits before anything runs.
//!
//! ## Example
//!
//! ```
//! use dstress_circuit::builder::{decode_word, encode_word};
//! use dstress_circuit::{evaluate, CircuitBuilder};
//!
//! // An 8-bit ripple-carry adder, evaluated in the clear.
//! let mut builder = CircuitBuilder::new();
//! let a = builder.input_word(8);
//! let b = builder.input_word(8);
//! let sum = builder.add(&a, &b);
//! builder.output_word(&sum);
//! let circuit = builder.build().unwrap();
//!
//! let mut inputs = encode_word(19, 8);
//! inputs.extend(encode_word(23, 8));
//! assert_eq!(decode_word(&evaluate(&circuit, &inputs).unwrap()), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod eval;
pub mod gadgets;
pub mod ir;
pub mod layers;
pub mod spec;
pub mod stats;

pub use builder::{CircuitBuilder, Word};
pub use eval::{evaluate, evaluate_wires};
pub use gadgets::{GadgetEvent, GadgetKind};
pub use ir::{Circuit, CircuitError, Gate, WireId};
pub use layers::{evaluate_layered, CircuitLayers};
pub use spec::{
    CircuitSpec, FlowPolicy, Interval, ProgramInputRef, ProgramSpec, RangePremise, ReleaseSpec,
    SensitivityModel, Taint, WordSpec,
};
pub use stats::CircuitStats;
