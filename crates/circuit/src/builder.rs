//! Circuit construction and the word-level gadget library.
//!
//! The vertex programs DStress runs (Eisenberg–Noe and
//! Elliott–Golub–Jackson) are arithmetic: they add debts, compare
//! liquidity against obligations, pro-rate payments and multiply
//! valuations.  [`CircuitBuilder`] provides those operations as Boolean
//! gadgets over fixed-width two's-complement [`Word`]s (least-significant
//! bit first), so that the finance crate can express its update functions
//! once and run them either in plaintext (via [`crate::eval`]) or under
//! GMW (via `dstress-mpc`).
//!
//! Gate-cost notes (relevant because AND gates dominate GMW cost):
//! ripple-carry addition costs 2 AND/bit, multiplexers 1 AND/bit,
//! comparisons ~2 AND/bit, schoolbook multiplication ~2·W AND/bit and the
//! restoring divider ~3·W AND per quotient bit.

use crate::gadgets::{GadgetEvent, GadgetKind};
use crate::ir::{Circuit, CircuitError, Gate, WireId};

/// A fixed-width little-endian word of wires.
pub type Word = Vec<WireId>;

/// Incremental circuit builder.
#[derive(Clone, Debug, Default)]
pub struct CircuitBuilder {
    gates: Vec<Gate>,
    num_inputs: usize,
    outputs: Vec<WireId>,
    gadgets: Vec<GadgetEvent>,
    gadget_depth: usize,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CircuitBuilder::default()
    }

    /// Marks the start of a word-level gadget; nested gadget calls bump
    /// the depth so only the outermost call records an event.
    fn enter_gadget(&mut self) {
        self.gadget_depth += 1;
    }

    /// Marks the end of a gadget and records its event when top-level.
    fn record_gadget(&mut self, kind: GadgetKind, inputs: &[&[WireId]], output: &[WireId]) {
        self.gadget_depth -= 1;
        if self.gadget_depth == 0 {
            self.gadgets.push(GadgetEvent {
                kind,
                inputs: inputs.iter().map(|w| w.to_vec()).collect(),
                output: output.to_vec(),
            });
        }
    }

    /// Adds a single input wire.
    pub fn input(&mut self) -> WireId {
        let id = self.gates.len();
        self.gates.push(Gate::Input(self.num_inputs));
        self.num_inputs += 1;
        id
    }

    /// Adds `width` input wires forming a word (LSB first).
    pub fn input_word(&mut self, width: u32) -> Word {
        self.enter_gadget();
        let out: Word = (0..width).map(|_| self.input()).collect();
        self.record_gadget(GadgetKind::InputWord, &[], &out);
        out
    }

    /// A constant bit.
    pub fn const_bit(&mut self, value: bool) -> WireId {
        let id = self.gates.len();
        self.gates.push(if value {
            Gate::ConstTrue
        } else {
            Gate::ConstFalse
        });
        id
    }

    /// A constant word (LSB first).
    pub fn const_word(&mut self, value: u64, width: u32) -> Word {
        self.enter_gadget();
        let out: Word = (0..width)
            .map(|i| self.const_bit((value >> i) & 1 == 1))
            .collect();
        self.record_gadget(GadgetKind::ConstWord(value), &[], &out);
        out
    }

    /// XOR of two bits.
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        let id = self.gates.len();
        self.gates.push(Gate::Xor(a, b));
        id
    }

    /// AND of two bits.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        let id = self.gates.len();
        self.gates.push(Gate::And(a, b));
        id
    }

    /// NOT of a bit.
    pub fn not(&mut self, a: WireId) -> WireId {
        let id = self.gates.len();
        self.gates.push(Gate::Not(a));
        id
    }

    /// OR of two bits (`a | b = ¬(¬a ∧ ¬b)`, one AND gate).
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        self.enter_gadget();
        let na = self.not(a);
        let nb = self.not(b);
        let nand = self.and(na, nb);
        let out = self.not(nand);
        self.record_gadget(GadgetKind::Or, &[&[a], &[b]], &[out]);
        out
    }

    /// Bit multiplexer: returns `if sel { then } else { otherwise }`
    /// (one AND gate).
    pub fn mux(&mut self, sel: WireId, then: WireId, otherwise: WireId) -> WireId {
        self.enter_gadget();
        let diff = self.xor(then, otherwise);
        let masked = self.and(sel, diff);
        let out = self.xor(masked, otherwise);
        self.record_gadget(GadgetKind::MuxBit, &[&[sel], &[then], &[otherwise]], &[out]);
        out
    }

    /// Word-wise multiplexer.
    ///
    /// # Panics
    ///
    /// Panics if the word widths differ.
    pub fn mux_word(&mut self, sel: WireId, then: &Word, otherwise: &Word) -> Word {
        assert_eq!(then.len(), otherwise.len(), "mux_word width mismatch");
        self.enter_gadget();
        let out: Word = then
            .iter()
            .zip(otherwise.iter())
            .map(|(&t, &o)| self.mux(sel, t, o))
            .collect();
        self.record_gadget(GadgetKind::MuxWord, &[&[sel], then, otherwise], &out);
        out
    }

    /// Bitwise XOR of two words.
    pub fn xor_word(&mut self, a: &Word, b: &Word) -> Word {
        assert_eq!(a.len(), b.len(), "xor_word width mismatch");
        self.enter_gadget();
        let out: Word = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| self.xor(x, y))
            .collect();
        self.record_gadget(GadgetKind::XorWord, &[a, b], &out);
        out
    }

    /// Bitwise NOT of a word.
    pub fn not_word(&mut self, a: &Word) -> Word {
        self.enter_gadget();
        let out: Word = a.iter().map(|&x| self.not(x)).collect();
        self.record_gadget(GadgetKind::NotWord, &[a], &out);
        out
    }

    /// Ripple-carry addition with explicit carry-in; returns the sum word
    /// (same width, wrapping) and the carry-out.
    fn add_with_carry(&mut self, a: &Word, b: &Word, carry_in: WireId) -> (Word, WireId) {
        assert_eq!(a.len(), b.len(), "add width mismatch");
        let mut carry = carry_in;
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b.iter()) {
            let x_xor_y = self.xor(x, y);
            let s = self.xor(x_xor_y, carry);
            // carry-out = (x ∧ y) ⊕ (carry ∧ (x ⊕ y)); the two terms are
            // never simultaneously true so XOR equals OR here.
            let t1 = self.and(x, y);
            let t2 = self.and(carry, x_xor_y);
            carry = self.xor(t1, t2);
            sum.push(s);
        }
        (sum, carry)
    }

    /// Wrapping addition of two equal-width words.
    pub fn add(&mut self, a: &Word, b: &Word) -> Word {
        self.enter_gadget();
        let zero = self.const_bit(false);
        let out = self.add_with_carry(a, b, zero).0;
        self.record_gadget(GadgetKind::Add, &[a, b], &out);
        out
    }

    /// Wrapping subtraction `a - b` (two's complement).
    pub fn sub(&mut self, a: &Word, b: &Word) -> Word {
        self.enter_gadget();
        let not_b = self.not_word(b);
        let one = self.const_bit(true);
        let out = self.add_with_carry(a, &not_b, one).0;
        self.record_gadget(GadgetKind::Sub, &[a, b], &out);
        out
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: &Word) -> Word {
        self.enter_gadget();
        let zero = self.const_word(0, a.len() as u32);
        let out = self.sub(&zero, a);
        self.record_gadget(GadgetKind::Neg, &[a], &out);
        out
    }

    /// Unsigned comparison `a < b` (single output bit).
    pub fn lt_unsigned(&mut self, a: &Word, b: &Word) -> WireId {
        self.enter_gadget();
        // a < b  iff  the subtraction a - b borrows, i.e. the carry-out of
        // a + ¬b + 1 is zero.
        let not_b = self.not_word(b);
        let one = self.const_bit(true);
        let (_, carry) = self.add_with_carry(a, &not_b, one);
        let out = self.not(carry);
        self.record_gadget(GadgetKind::LtUnsigned, &[a, b], &[out]);
        out
    }

    /// Signed (two's complement) comparison `a < b`.
    pub fn lt_signed(&mut self, a: &Word, b: &Word) -> WireId {
        self.enter_gadget();
        let sign_a = *a.last().expect("non-empty word");
        let sign_b = *b.last().expect("non-empty word");
        let lt_u = self.lt_unsigned(a, b);
        // If signs are equal, unsigned comparison gives the right answer;
        // otherwise a < b exactly when a is negative.
        let signs_differ = self.xor(sign_a, sign_b);
        let out = self.mux(signs_differ, sign_a, lt_u);
        self.record_gadget(GadgetKind::LtSigned, &[a, b], &[out]);
        out
    }

    /// Equality test of two words (single output bit).
    pub fn eq_word(&mut self, a: &Word, b: &Word) -> WireId {
        assert_eq!(a.len(), b.len(), "eq width mismatch");
        self.enter_gadget();
        let mut all_equal = self.const_bit(true);
        for (&x, &y) in a.iter().zip(b.iter()) {
            let diff = self.xor(x, y);
            let same = self.not(diff);
            all_equal = self.and(all_equal, same);
        }
        self.record_gadget(GadgetKind::EqWord, &[a, b], &[all_equal]);
        all_equal
    }

    /// Returns `max(a, 0)` for a signed word: clamps negative values to
    /// zero (used to clamp pro-rata fractions and shortfalls).
    pub fn relu(&mut self, a: &Word) -> Word {
        self.enter_gadget();
        let sign = *a.last().expect("non-empty word");
        let zero = self.const_word(0, a.len() as u32);
        let out = self.mux_word(sign, &zero, a);
        self.record_gadget(GadgetKind::Relu, &[a], &out);
        out
    }

    /// Unsigned minimum of two words.
    pub fn min_unsigned(&mut self, a: &Word, b: &Word) -> Word {
        self.enter_gadget();
        let a_lt_b = self.lt_unsigned(a, b);
        let out = self.mux_word(a_lt_b, a, b);
        self.record_gadget(GadgetKind::MinUnsigned, &[a, b], &out);
        out
    }

    /// Unsigned maximum of two words.
    pub fn max_unsigned(&mut self, a: &Word, b: &Word) -> Word {
        self.enter_gadget();
        let a_lt_b = self.lt_unsigned(a, b);
        let out = self.mux_word(a_lt_b, b, a);
        self.record_gadget(GadgetKind::MaxUnsigned, &[a, b], &out);
        out
    }

    /// Zero-extends a word to `width` bits.
    pub fn zero_extend(&mut self, a: &Word, width: u32) -> Word {
        assert!(width as usize >= a.len(), "cannot shrink in zero_extend");
        self.enter_gadget();
        let mut out = a.clone();
        while out.len() < width as usize {
            out.push(self.const_bit(false));
        }
        self.record_gadget(GadgetKind::ZeroExtend, &[a], &out);
        out
    }

    /// Truncates a word to its low `width` bits.
    pub fn truncate(&mut self, a: &Word, width: u32) -> Word {
        assert!(width as usize <= a.len(), "cannot grow in truncate");
        self.enter_gadget();
        let out = a[..width as usize].to_vec();
        self.record_gadget(GadgetKind::Truncate, &[a], &out);
        out
    }

    /// Logical left shift by a constant amount (bits shifted in are zero),
    /// keeping the original width.
    pub fn shl_const(&mut self, a: &Word, amount: u32) -> Word {
        self.enter_gadget();
        let width = a.len();
        let mut out = Vec::with_capacity(width);
        for i in 0..width {
            if i < amount as usize {
                out.push(self.const_bit(false));
            } else {
                out.push(a[i - amount as usize]);
            }
        }
        self.record_gadget(GadgetKind::ShlConst(amount), &[a], &out);
        out
    }

    /// Logical right shift by a constant amount, keeping the width.
    pub fn shr_const(&mut self, a: &Word, amount: u32) -> Word {
        self.enter_gadget();
        let width = a.len();
        let mut out = Vec::with_capacity(width);
        for i in 0..width {
            let src = i + amount as usize;
            if src < width {
                out.push(a[src]);
            } else {
                out.push(self.const_bit(false));
            }
        }
        self.record_gadget(GadgetKind::ShrConst(amount), &[a], &out);
        out
    }

    /// Unsigned schoolbook multiplication producing the full
    /// `a.len() + b.len()`-bit product.
    pub fn mul_full(&mut self, a: &Word, b: &Word) -> Word {
        self.enter_gadget();
        let out_width = a.len() + b.len();
        let mut acc = self.const_word(0, out_width as u32);
        for (i, &b_bit) in b.iter().enumerate() {
            // partial = (a AND b_bit) << i, zero-extended to out_width.
            let mut partial = vec![self.const_bit(false); i];
            for &a_bit in a {
                let p = self.and(a_bit, b_bit);
                partial.push(p);
            }
            while partial.len() < out_width {
                partial.push(self.const_bit(false));
            }
            acc = self.add(&acc, &partial);
        }
        self.record_gadget(GadgetKind::MulFull, &[a, b], &acc);
        acc
    }

    /// Unsigned multiplication truncated to the width of `a`
    /// (wrapping, like `u64::wrapping_mul` at that width).
    pub fn mul(&mut self, a: &Word, b: &Word) -> Word {
        self.enter_gadget();
        let full = self.mul_full(a, b);
        let out = self.truncate(&full, a.len() as u32);
        self.record_gadget(GadgetKind::Mul, &[a, b], &out);
        out
    }

    /// Fixed-point multiplication of two non-negative values with
    /// `frac_bits` fractional bits: computes `(a * b) >> frac_bits`
    /// truncated back to the operand width.
    pub fn mul_fixed(&mut self, a: &Word, b: &Word, frac_bits: u32) -> Word {
        self.enter_gadget();
        let full = self.mul_full(a, b);
        let shifted = self.shr_const(&full, frac_bits);
        let out = self.truncate(&shifted, a.len() as u32);
        self.record_gadget(GadgetKind::MulFixed(frac_bits), &[a, b], &out);
        out
    }

    /// Fixed-point division of non-negative values with `frac_bits`
    /// fractional bits: computes `(a << frac_bits) / b` by restoring
    /// division, truncated to the operand width.  Division by zero yields
    /// the all-ones word (saturates), mirroring the plaintext reference.
    pub fn div_fixed(&mut self, a: &Word, b: &Word, frac_bits: u32) -> Word {
        assert_eq!(a.len(), b.len(), "div width mismatch");
        self.enter_gadget();
        let width = a.len();
        let total_bits = width + frac_bits as usize;
        // Numerator is a shifted left by frac_bits, so it has
        // width + frac_bits significant bits.
        let wide = (width + frac_bits as usize + 1) as u32;
        let divisor = self.zero_extend(b, wide);
        let mut remainder = self.const_word(0, wide);
        let mut quotient_bits: Vec<WireId> = Vec::with_capacity(total_bits);

        // Numerator bits from MSB to LSB: bit positions
        // total_bits-1 .. 0, where position p >= frac_bits maps to a's bit
        // p - frac_bits and positions below frac_bits are zero.
        for p in (0..total_bits).rev() {
            // remainder = (remainder << 1) | numerator_bit(p)
            remainder = self.shl_const(&remainder, 1);
            if p >= frac_bits as usize {
                remainder[0] = a[p - frac_bits as usize];
            }
            // If remainder >= divisor, subtract and emit a 1 bit.
            let lt = self.lt_unsigned(&remainder, &divisor);
            let ge = self.not(lt);
            let diff = self.sub(&remainder, &divisor);
            remainder = self.mux_word(ge, &diff, &remainder);
            quotient_bits.push(ge);
        }
        quotient_bits.reverse(); // now LSB first, total_bits wide
                                 // Saturate on division by zero: quotient would be all ones anyway
                                 // because remainder >= 0 == divisor at every step, which is the
                                 // documented saturation behaviour.
        let out = self.truncate(&quotient_bits, width as u32);
        self.record_gadget(GadgetKind::DivFixed(frac_bits), &[a, b], &out);
        out
    }

    /// Sums a list of equal-width words (wrapping).
    pub fn sum(&mut self, words: &[Word]) -> Word {
        assert!(!words.is_empty(), "sum of no words");
        self.enter_gadget();
        let mut acc = words[0].clone();
        for w in &words[1..] {
            acc = self.add(&acc, w);
        }
        let inputs: Vec<&[WireId]> = words.iter().map(|w| w.as_slice()).collect();
        self.record_gadget(GadgetKind::Sum, &inputs, &acc);
        acc
    }

    /// Marks a single wire as a circuit output.
    pub fn output(&mut self, wire: WireId) {
        self.outputs.push(wire);
    }

    /// Marks all wires of a word as outputs (LSB first).
    pub fn output_word(&mut self, word: &Word) {
        self.outputs.extend_from_slice(word);
    }

    /// Number of gates added so far.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if no gates have been added.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Finalises the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if the gate list is inconsistent (cannot
    /// happen when only builder methods were used).
    pub fn build(self) -> Result<Circuit, CircuitError> {
        Circuit::with_gadgets(self.gates, self.num_inputs, self.outputs, self.gadgets)
    }
}

/// Encodes an unsigned value as input bits for a word of `width` bits
/// (LSB first), for use with [`crate::eval::evaluate`].
pub fn encode_word(value: u64, width: u32) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Encodes a signed value in two's complement at the given width.
pub fn encode_word_signed(value: i64, width: u32) -> Vec<bool> {
    encode_word(value as u64, width)
}

/// Decodes output bits (LSB first) into an unsigned value.
pub fn decode_word(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

/// Decodes output bits (LSB first) as a two's-complement signed value.
pub fn decode_word_signed(bits: &[bool]) -> i64 {
    let raw = decode_word(bits);
    let width = bits.len() as u32;
    if width == 64 || bits.last().copied() != Some(true) {
        raw as i64
    } else {
        (raw as i64) - (1i64 << width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use proptest::prelude::*;

    const W: u32 = 16;

    /// Helper: builds a two-input word circuit with `f`, evaluates it on
    /// `(a, b)` and returns the decoded unsigned output.
    fn run_binop(f: impl Fn(&mut CircuitBuilder, &Word, &Word) -> Word, a: u64, b: u64) -> u64 {
        let mut builder = CircuitBuilder::new();
        let wa = builder.input_word(W);
        let wb = builder.input_word(W);
        let out = f(&mut builder, &wa, &wb);
        builder.output_word(&out);
        let circuit = builder.build().unwrap();
        let mut inputs = encode_word(a, W);
        inputs.extend(encode_word(b, W));
        decode_word(&evaluate(&circuit, &inputs).unwrap())
    }

    /// Helper for single-bit-output comparisons.
    fn run_cmp(f: impl Fn(&mut CircuitBuilder, &Word, &Word) -> WireId, a: u64, b: u64) -> bool {
        let mut builder = CircuitBuilder::new();
        let wa = builder.input_word(W);
        let wb = builder.input_word(W);
        let out = f(&mut builder, &wa, &wb);
        builder.output(out);
        let circuit = builder.build().unwrap();
        let mut inputs = encode_word(a, W);
        inputs.extend(encode_word(b, W));
        evaluate(&circuit, &inputs).unwrap()[0]
    }

    #[test]
    fn encode_decode_roundtrip() {
        assert_eq!(decode_word(&encode_word(0xABCD, 16)), 0xABCD);
        assert_eq!(decode_word_signed(&encode_word_signed(-5, 16)), -5);
        assert_eq!(decode_word_signed(&encode_word_signed(5, 16)), 5);
        assert_eq!(decode_word_signed(&encode_word_signed(-1, 8)), -1);
    }

    #[test]
    fn addition() {
        assert_eq!(run_binop(|b, x, y| b.add(x, y), 1000, 2345), 3345);
        // Wrapping behaviour.
        assert_eq!(run_binop(|b, x, y| b.add(x, y), 0xFFFF, 1), 0);
    }

    #[test]
    fn subtraction() {
        assert_eq!(run_binop(|b, x, y| b.sub(x, y), 5000, 1234), 3766);
        // Wraps to two's complement.
        assert_eq!(run_binop(|b, x, y| b.sub(x, y), 0, 1), 0xFFFF);
    }

    #[test]
    fn multiplication() {
        assert_eq!(run_binop(|b, x, y| b.mul(x, y), 123, 456), 123 * 456);
        assert_eq!(
            run_binop(|b, x, y| b.mul(x, y), 300, 300),
            (300 * 300) & 0xFFFF
        );
    }

    #[test]
    fn fixed_point_multiplication() {
        // With 8 fractional bits: 2.5 * 1.5 = 3.75 => 960/256.
        let a = (2.5f64 * 256.0) as u64;
        let b = (1.5f64 * 256.0) as u64;
        let out = run_binop(|bld, x, y| bld.mul_fixed(x, y, 8), a, b);
        assert_eq!(out, (3.75f64 * 256.0) as u64);
    }

    #[test]
    fn fixed_point_division() {
        // With 8 fractional bits: 3 / 4 = 0.75 => 192/256.
        let out = run_binop(|bld, x, y| bld.div_fixed(x, y, 8), 3 << 8, 4 << 8);
        assert_eq!(out, 192);
        // 10 / 4 = 2.5 => 640/256.
        let out = run_binop(|bld, x, y| bld.div_fixed(x, y, 8), 10 << 8, 4 << 8);
        assert_eq!(out, 640);
    }

    #[test]
    fn division_by_zero_saturates() {
        let out = run_binop(|bld, x, y| bld.div_fixed(x, y, 4), 7 << 4, 0);
        assert_eq!(out, 0xFFFF);
    }

    #[test]
    fn comparisons() {
        assert!(run_cmp(|b, x, y| b.lt_unsigned(x, y), 3, 5));
        assert!(!run_cmp(|b, x, y| b.lt_unsigned(x, y), 5, 3));
        assert!(!run_cmp(|b, x, y| b.lt_unsigned(x, y), 5, 5));
        assert!(run_cmp(|b, x, y| b.eq_word(x, y), 1234, 1234));
        assert!(!run_cmp(|b, x, y| b.eq_word(x, y), 1234, 1235));
    }

    #[test]
    fn signed_comparison() {
        let minus_one = 0xFFFFu64; // -1 at 16 bits
        let minus_five = 0xFFFBu64;
        assert!(run_cmp(|b, x, y| b.lt_signed(x, y), minus_one, 3));
        assert!(!run_cmp(|b, x, y| b.lt_signed(x, y), 3, minus_one));
        assert!(run_cmp(|b, x, y| b.lt_signed(x, y), minus_five, minus_one));
        assert!(run_cmp(|b, x, y| b.lt_signed(x, y), 2, 7));
    }

    #[test]
    fn min_max_relu() {
        assert_eq!(run_binop(|b, x, y| b.min_unsigned(x, y), 9, 4), 4);
        assert_eq!(run_binop(|b, x, y| b.max_unsigned(x, y), 9, 4), 9);
        // relu of a negative two's-complement value is zero.
        let neg = 0xFFF0u64;
        assert_eq!(run_binop(|b, x, _| b.relu(x), neg, 0), 0);
        assert_eq!(run_binop(|b, x, _| b.relu(x), 17, 0), 17);
    }

    #[test]
    fn mux_word_selects() {
        let mut builder = CircuitBuilder::new();
        let sel = builder.input();
        let a = builder.input_word(8);
        let b = builder.input_word(8);
        let out = builder.mux_word(sel, &a, &b);
        builder.output_word(&out);
        let circuit = builder.build().unwrap();
        for (sel_v, expected) in [(true, 0xAA), (false, 0x55)] {
            let mut inputs = vec![sel_v];
            inputs.extend(encode_word(0xAA, 8));
            inputs.extend(encode_word(0x55, 8));
            assert_eq!(decode_word(&evaluate(&circuit, &inputs).unwrap()), expected);
        }
    }

    #[test]
    fn shifts() {
        assert_eq!(run_binop(|b, x, _| b.shl_const(x, 3), 0b101, 0), 0b101000);
        assert_eq!(run_binop(|b, x, _| b.shr_const(x, 2), 0b10100, 0), 0b101);
        assert_eq!(run_binop(|b, x, _| b.shl_const(x, 0), 77, 0), 77);
    }

    #[test]
    fn sum_of_words() {
        let mut builder = CircuitBuilder::new();
        let words: Vec<Word> = (0..5).map(|_| builder.input_word(W)).collect();
        let total = builder.sum(&words);
        builder.output_word(&total);
        let circuit = builder.build().unwrap();
        let values = [10u64, 20, 30, 40, 50];
        let inputs: Vec<bool> = values.iter().flat_map(|&v| encode_word(v, W)).collect();
        assert_eq!(decode_word(&evaluate(&circuit, &inputs).unwrap()), 150);
    }

    #[test]
    fn gate_counts_are_sensible() {
        let mut builder = CircuitBuilder::new();
        let a = builder.input_word(16);
        let b = builder.input_word(16);
        let s = builder.add(&a, &b);
        builder.output_word(&s);
        let adder = builder.build().unwrap();
        // Ripple-carry adder: 2 AND gates per bit.
        assert_eq!(adder.and_gates(), 32);

        let mut builder = CircuitBuilder::new();
        let a = builder.input_word(16);
        let b = builder.input_word(16);
        let p = builder.mul(&a, &b);
        builder.output_word(&p);
        let mult = builder.build().unwrap();
        assert!(mult.and_gates() > 16 * 16, "multiplier should dominate");
    }

    #[test]
    fn gadget_trace_records_top_level_only() {
        use crate::gadgets::GadgetKind;
        let mut builder = CircuitBuilder::new();
        let a = builder.input_word(8);
        let b = builder.input_word(8);
        // min_unsigned internally builds a comparator and a word mux; only
        // the outer MinUnsigned event may appear.
        let m = builder.min_unsigned(&a, &b);
        builder.output_word(&m);
        let circuit = builder.build().unwrap();
        let kinds: Vec<_> = circuit.gadgets().iter().map(|e| e.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                GadgetKind::InputWord,
                GadgetKind::InputWord,
                GadgetKind::MinUnsigned
            ]
        );
        let ev = &circuit.gadgets()[2];
        assert_eq!(ev.inputs, vec![a, b]);
        assert_eq!(ev.output, m);
    }

    #[test]
    fn gadget_trace_carries_parameters() {
        use crate::gadgets::GadgetKind;
        let mut builder = CircuitBuilder::new();
        let a = builder.input_word(8);
        let b = builder.input_word(8);
        let q = builder.div_fixed(&a, &b, 4);
        let s = builder.shl_const(&q, 2);
        let c = builder.const_word(42, 8);
        let p = builder.mul_fixed(&s, &c, 4);
        builder.output_word(&p);
        let circuit = builder.build().unwrap();
        let kinds: Vec<_> = circuit.gadgets().iter().map(|e| e.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                GadgetKind::InputWord,
                GadgetKind::InputWord,
                GadgetKind::DivFixed(4),
                GadgetKind::ShlConst(2),
                GadgetKind::ConstWord(42),
                GadgetKind::MulFixed(4),
            ]
        );
    }

    #[test]
    fn mux_event_exposes_selector() {
        let mut builder = CircuitBuilder::new();
        let sel = builder.input();
        let a = builder.input_word(4);
        let b = builder.input_word(4);
        let out = builder.mux_word(sel, &a, &b);
        builder.output_word(&out);
        let circuit = builder.build().unwrap();
        let mux = circuit.gadgets().last().unwrap();
        assert_eq!(mux.mux_selector(), Some(sel));
    }

    #[test]
    fn or_gate_truth_table() {
        for (a, b, expect) in [
            (false, false, false),
            (true, false, true),
            (false, true, true),
            (true, true, true),
        ] {
            let mut builder = CircuitBuilder::new();
            let wa = builder.input();
            let wb = builder.input();
            let o = builder.or(wa, wb);
            builder.output(o);
            let c = builder.build().unwrap();
            assert_eq!(evaluate(&c, &[a, b]).unwrap()[0], expect);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_add_matches_native(a in 0u64..65536, b in 0u64..65536) {
            prop_assert_eq!(run_binop(|bld, x, y| bld.add(x, y), a, b), (a + b) & 0xFFFF);
        }

        #[test]
        fn prop_sub_matches_native(a in 0u64..65536, b in 0u64..65536) {
            prop_assert_eq!(run_binop(|bld, x, y| bld.sub(x, y), a, b), a.wrapping_sub(b) & 0xFFFF);
        }

        #[test]
        fn prop_mul_matches_native(a in 0u64..65536, b in 0u64..65536) {
            prop_assert_eq!(run_binop(|bld, x, y| bld.mul(x, y), a, b), (a * b) & 0xFFFF);
        }

        #[test]
        fn prop_lt_matches_native(a in 0u64..65536, b in 0u64..65536) {
            prop_assert_eq!(run_cmp(|bld, x, y| bld.lt_unsigned(x, y), a, b), a < b);
        }

        #[test]
        fn prop_div_matches_native(a in 0u64..256, b in 1u64..256) {
            // 8 integer bits + 8 fractional bits stays within the 16-bit word.
            let out = run_binop(|bld, x, y| bld.div_fixed(x, y, 8), a << 8, b << 8);
            let expected = ((a << 16) / (b << 8)) & 0xFFFF;
            prop_assert_eq!(out, expected);
        }
    }
}
